//! Synthetic workload generation: the traffic patterns of the
//! interconnection-network literature, reproducibly seeded.
//!
//! Pairs are *defined* chunk-wise: [`WorkloadSource`] derives an
//! independent RNG for every [`WorkloadSource::CHUNK`]-sized block of
//! workload indices, so any chunk can be (re)generated in isolation —
//! the streamed queueing engine decodes blocks as their injection
//! credit accrues instead of materializing ten-million-pair vectors up
//! front, and a sharded consumer gets byte-identical traffic at any
//! thread count. [`generate_workload`] is the thin adapter that
//! materializes the whole stream for small runs and tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{de::Error as _, Deserialize, Deserializer, Serialize, Value};
use std::sync::OnceLock;

/// Synthetic traffic patterns. The digit-structured patterns
/// (transpose, bit reversal) interpret node ids as length-`D` words
/// over `Z_d` — the same identification the de Bruijn fabric itself
/// uses — and therefore require `n = d^D` nodes. The one-to-many
/// patterns (broadcast, multicast, hotspot-rooted multicast) generate
/// [`MulticastGroup`]s through [`generate_multicast_workload`] instead
/// of `(src, dst)` pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficPattern {
    /// Independent uniform `(src, dst)` pairs, `dst ≠ src`.
    Uniform,
    /// A fixed random permutation `π`; packet `i` goes `i mod n → π(i mod n)`.
    Permutation,
    /// Digit transpose: the high and low halves of the digit string
    /// swap (the classic matrix-transpose stressor).
    Transpose,
    /// Digit reversal: `x_{D-1}…x_0 → x_0…x_{D-1}` (FFT butterfly
    /// traffic).
    BitReversal,
    /// One node is hot: a quarter of all packets target node `n/2`,
    /// the rest are uniform.
    Hotspot,
    /// Every ordered pair `(src, dst)`, `src ≠ dst`, visited round-robin.
    AllToAll,
    /// One-to-all: group `i` is rooted at node `i mod n` and delivers
    /// to every other node (the full-fabric broadcast tree).
    Broadcast,
    /// One-to-many: each group has a uniform random root and `fanout`
    /// distinct uniform destinations (clamped to `n - 1`).
    Multicast { fanout: u32 },
    /// Hotspot-rooted multicast: every group is rooted at the hot node
    /// `n/2` with `fanout` distinct uniform destinations — the
    /// one-to-many mirror of [`TrafficPattern::Hotspot`]'s in-tree
    /// saturation. At `fanout ≥ n - 1` this is broadcast from the
    /// hotspot root.
    HotspotMulticast { fanout: u32 },
}

impl TrafficPattern {
    pub const ALL: [TrafficPattern; 9] = [
        TrafficPattern::Uniform,
        TrafficPattern::Permutation,
        TrafficPattern::Transpose,
        TrafficPattern::BitReversal,
        TrafficPattern::Hotspot,
        TrafficPattern::AllToAll,
        TrafficPattern::Broadcast,
        TrafficPattern::Multicast { fanout: 8 },
        TrafficPattern::HotspotMulticast { fanout: 8 },
    ];

    /// True iff the pattern needs the `n = d^D` digit structure.
    pub fn needs_digit_structure(&self) -> bool {
        matches!(
            self,
            TrafficPattern::Transpose | TrafficPattern::BitReversal
        )
    }

    /// True iff the pattern generates one-to-many groups
    /// ([`generate_multicast_workload`]) rather than `(src, dst)`
    /// pairs.
    pub fn is_multicast(&self) -> bool {
        matches!(
            self,
            TrafficPattern::Broadcast
                | TrafficPattern::Multicast { .. }
                | TrafficPattern::HotspotMulticast { .. }
        )
    }

    /// The hot destination of this pattern on an `n`-node fabric:
    /// `Some(n/2)` for [`TrafficPattern::Hotspot`] (the node a quarter
    /// of all packets target), `None` for every pattern without one.
    /// Feed it to `QueueingEngine::run_classified` to split the
    /// queueing report into hot and background classes.
    pub fn hot_node(&self, n: u64) -> Option<u64> {
        match self {
            TrafficPattern::Hotspot => Some(n / 2),
            _ => None,
        }
    }

    /// The valid pattern names, `|`-separated — the single source the
    /// CLI and the parse error both quote. The multicast entries show
    /// a concrete fanout (`multicast:8`); any `multicast:<k>` /
    /// `hotcast:<k>` with `k ≥ 1` parses.
    pub fn valid_names() -> String {
        let names: Vec<String> = Self::ALL.iter().map(|p| p.to_string()).collect();
        names.join("|")
    }
}

impl std::fmt::Display for TrafficPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrafficPattern::Uniform => write!(f, "uniform"),
            TrafficPattern::Permutation => write!(f, "permutation"),
            TrafficPattern::Transpose => write!(f, "transpose"),
            TrafficPattern::BitReversal => write!(f, "bitrev"),
            TrafficPattern::Hotspot => write!(f, "hotspot"),
            TrafficPattern::AllToAll => write!(f, "alltoall"),
            TrafficPattern::Broadcast => write!(f, "broadcast"),
            TrafficPattern::Multicast { fanout } => write!(f, "multicast:{fanout}"),
            TrafficPattern::HotspotMulticast { fanout } => write!(f, "hotcast:{fanout}"),
        }
    }
}

impl std::str::FromStr for TrafficPattern {
    type Err = String;

    fn from_str(raw: &str) -> Result<Self, String> {
        let fanout_of = |spec: &str, name: &str| -> Result<u32, String> {
            let fanout: u32 = spec
                .parse()
                .map_err(|e| format!("bad {name} fanout {spec:?}: {e}"))?;
            if fanout == 0 {
                return Err(format!("{name} fanout must be at least 1"));
            }
            Ok(fanout)
        };
        if let Some(spec) = raw.strip_prefix("multicast:") {
            return Ok(TrafficPattern::Multicast {
                fanout: fanout_of(spec, "multicast")?,
            });
        }
        if let Some(spec) = raw.strip_prefix("hotcast:") {
            return Ok(TrafficPattern::HotspotMulticast {
                fanout: fanout_of(spec, "hotcast")?,
            });
        }
        match raw {
            "uniform" => Ok(TrafficPattern::Uniform),
            "permutation" | "perm" => Ok(TrafficPattern::Permutation),
            "transpose" => Ok(TrafficPattern::Transpose),
            "bitrev" | "bit-reversal" | "bitreversal" => Ok(TrafficPattern::BitReversal),
            "hotspot" => Ok(TrafficPattern::Hotspot),
            "alltoall" | "all-to-all" => Ok(TrafficPattern::AllToAll),
            "broadcast" => Ok(TrafficPattern::Broadcast),
            other => Err(format!(
                "unknown pattern {other:?} (valid patterns: {}; multicast:<k> and \
                 hotcast:<k> take any fanout ≥ 1)",
                TrafficPattern::valid_names()
            )),
        }
    }
}

// The vendored serde_derive shim cannot derive data-carrying enum
// variants, so the pattern serializes as its *display* name
// ("uniform", "multicast:8") and parses back through `FromStr`. This
// changes the wire format: the old unit-enum derive emitted variant
// identifiers ("Uniform", "BitReversal"), which no longer parse —
// nothing in this workspace ever persisted a pattern, so no stored
// data exists to migrate.
impl Serialize for TrafficPattern {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for TrafficPattern {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Str(raw) => raw.parse().map_err(D::Error::custom),
            other => Err(D::Error::custom(format!(
                "expected a pattern name string, found {other:?}"
            ))),
        }
    }
}

/// One one-to-many request: a root and its destination set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MulticastGroup {
    /// The sending node (tree root).
    pub root: u64,
    /// Requested destinations, distinct and ≠ `root` for generated
    /// workloads (engines tolerate duplicates and self-requests).
    pub dsts: Vec<u64>,
}

/// Reverse the base-`d` digits of `value` (`digits` of them).
pub(crate) fn digit_reverse(value: u64, d: u64, digits: u32) -> u64 {
    let mut v = value;
    let mut out = 0;
    for _ in 0..digits {
        out = out * d + v % d;
        v /= d;
    }
    out
}

/// Swap the high `⌈D/2⌉` and low `⌊D/2⌋` digit blocks of `value`.
pub(crate) fn digit_transpose(value: u64, d: u64, digits: u32) -> u64 {
    let low_len = digits / 2;
    let low_modulus = d.pow(low_len);
    let high = value / low_modulus;
    let low = value % low_modulus;
    let high_modulus = d.pow(digits - low_len);
    low * high_modulus + high
}

/// A chunked, seed-splittable unicast workload: the `i`-th pair of
/// pattern × seed, generatable one [`WorkloadSource::CHUNK`]-sized
/// block at a time.
///
/// Every chunk derives its own RNG from `(seed, chunk index)`, so the
/// pair sequence is a pure function of the workload index — chunk 7
/// can be decoded without touching chunks 0–6, decoded twice, or
/// decoded on another thread, always yielding the same pairs. This is
/// what lets the queueing engine stream ten-million-packet workloads
/// (one live chunk buffer instead of a 160 MB pair vector) while its
/// reports stay byte-identical to the materialized path at any thread
/// count. The only whole-workload state is the [`Permutation`]
/// pattern's image table, built lazily once from the base seed.
///
/// [`Permutation`]: TrafficPattern::Permutation
pub struct WorkloadSource {
    pattern: TrafficPattern,
    n: u64,
    d: u64,
    packets: usize,
    seed: u64,
    /// Digit count for the digit-structured patterns (0 otherwise).
    digits: u32,
    /// The permutation pattern's image table, built on first use.
    images: OnceLock<Vec<u64>>,
}

impl WorkloadSource {
    /// Workload indices per chunk — the granularity of independent
    /// regeneration (64Ki pairs ≈ 1 MiB materialized).
    pub const CHUNK: usize = 1 << 16;

    /// A `packets`-pair workload over `0..n` for a unicast pattern.
    /// `d` is the fabric's alphabet (used by the digit-structured
    /// patterns, which require `n = d^D`); `seed` makes the stream
    /// reproducible.
    pub fn new(pattern: TrafficPattern, n: u64, d: u64, packets: usize, seed: u64) -> Self {
        assert!(n >= 2, "need at least two nodes for traffic");
        assert!(
            !pattern.is_multicast(),
            "{pattern} is one-to-many; use generate_multicast_workload"
        );
        let digits = if pattern.needs_digit_structure() {
            assert!(
                d >= 2,
                "{pattern} traffic needs an alphabet of size ≥ 2, got d = {d}"
            );
            let mut digits = 0u32;
            let mut size = 1u64;
            while size < n {
                size *= d;
                digits += 1;
            }
            assert!(
                size == n,
                "{pattern} traffic needs n = d^D nodes, got n = {n}, d = {d}"
            );
            digits
        } else {
            0
        };
        WorkloadSource {
            pattern,
            n,
            d,
            packets,
            seed,
            digits,
            images: OnceLock::new(),
        }
    }

    /// Total pairs in the stream.
    pub fn len(&self) -> usize {
        self.packets
    }

    /// True iff the stream has no pairs.
    pub fn is_empty(&self) -> bool {
        self.packets == 0
    }

    /// The pattern this stream samples.
    pub fn pattern(&self) -> TrafficPattern {
        self.pattern
    }

    /// The node-id universe (`src` and generated `dst` are `< n`).
    pub fn node_count(&self) -> u64 {
        self.n
    }

    /// Number of chunks ([`Self::CHUNK`] indices each, last partial).
    pub fn chunk_count(&self) -> usize {
        self.packets.div_ceil(Self::CHUNK)
    }

    /// The workload-index range of `chunk`.
    pub fn chunk_bounds(&self, chunk: usize) -> std::ops::Range<usize> {
        let start = chunk * Self::CHUNK;
        let end = ((chunk + 1) * Self::CHUNK).min(self.packets);
        start..end.max(start)
    }

    /// The chunk's independent RNG: any injective map of
    /// `(seed, chunk)` works — SplitMix64 seeding scrambles it.
    fn chunk_rng(&self, chunk: usize) -> StdRng {
        let stride = (chunk as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        StdRng::seed_from_u64(self.seed.wrapping_add(stride))
    }

    fn permutation_images(&self) -> &[u64] {
        self.images.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(self.seed);
            let mut images: Vec<u64> = (0..self.n).collect();
            for i in (1..self.n as usize).rev() {
                let j = rng.gen_range(0..=i);
                images.swap(i, j);
            }
            images
        })
    }

    /// Decode `chunk` into `out` (cleared first): the pairs at
    /// workload indices [`Self::chunk_bounds`], in index order.
    pub fn fill_chunk(&self, chunk: usize, out: &mut Vec<(u64, u64)>) {
        out.clear();
        let range = self.chunk_bounds(chunk);
        if range.is_empty() {
            return;
        }
        out.reserve(range.len());
        let n = self.n;
        let draw_other = |rng: &mut StdRng, src: u64| loop {
            let dst = rng.gen_range(0..n);
            if dst != src {
                return dst;
            }
        };
        match self.pattern {
            TrafficPattern::Uniform => {
                let mut rng = self.chunk_rng(chunk);
                out.extend(range.map(|_| {
                    let src = rng.gen_range(0..n);
                    let dst = draw_other(&mut rng, src);
                    (src, dst)
                }));
            }
            TrafficPattern::Permutation => {
                let images = self.permutation_images();
                out.extend(range.map(|i| {
                    let src = i as u64 % n;
                    (src, images[src as usize])
                }));
            }
            TrafficPattern::Transpose => {
                out.extend(range.map(|i| {
                    let src = i as u64 % n;
                    (src, digit_transpose(src, self.d, self.digits))
                }));
            }
            TrafficPattern::BitReversal => {
                out.extend(range.map(|i| {
                    let src = i as u64 % n;
                    (src, digit_reverse(src, self.d, self.digits))
                }));
            }
            TrafficPattern::Hotspot => {
                let hot = n / 2;
                let mut rng = self.chunk_rng(chunk);
                out.extend(range.map(|i| {
                    if i % 4 == 0 {
                        let src = loop {
                            let candidate = rng.gen_range(0..n);
                            if candidate != hot {
                                break candidate;
                            }
                        };
                        (src, hot)
                    } else {
                        let src = rng.gen_range(0..n);
                        (src, draw_other(&mut rng, src))
                    }
                }));
            }
            TrafficPattern::AllToAll => {
                let pairs = n * (n - 1);
                out.extend(range.map(|i| {
                    let index = i as u64 % pairs;
                    let src = index / (n - 1);
                    let mut dst = index % (n - 1);
                    if dst >= src {
                        dst += 1; // skip the diagonal
                    }
                    (src, dst)
                }));
            }
            TrafficPattern::Broadcast
            | TrafficPattern::Multicast { .. }
            | TrafficPattern::HotspotMulticast { .. } => {
                unreachable!("multicast patterns rejected at construction")
            }
        }
    }

    /// Materialize the whole stream — the small-run/test adapter
    /// behind [`generate_workload`].
    pub fn materialize(&self) -> Vec<(u64, u64)> {
        let mut pairs = Vec::with_capacity(self.packets);
        let mut chunk_buf = Vec::new();
        for chunk in 0..self.chunk_count() {
            self.fill_chunk(chunk, &mut chunk_buf);
            pairs.extend_from_slice(&chunk_buf);
        }
        pairs
    }
}

/// Generate `packets` source/destination pairs over `0..n` for a
/// pattern. `d` is the fabric's alphabet (used by the digit-structured
/// patterns, which require `n = d^D`); `seed` makes workloads
/// reproducible. This materializes the chunk-defined stream of
/// [`WorkloadSource`] — large runs should hold the source and decode
/// chunks on demand instead.
pub fn generate_workload(
    pattern: TrafficPattern,
    n: u64,
    d: u64,
    packets: usize,
    seed: u64,
) -> Vec<(u64, u64)> {
    WorkloadSource::new(pattern, n, d, packets, seed).materialize()
}

/// Generate `groups` one-to-many requests over `0..n` for a multicast
/// pattern (destinations distinct, ≠ root); unicast patterns yield
/// their usual pairs as singleton groups, so every pattern flows
/// through the multicast engines. `seed` makes workloads
/// reproducible, same convention as [`generate_workload`].
pub fn generate_multicast_workload(
    pattern: TrafficPattern,
    n: u64,
    d: u64,
    groups: usize,
    seed: u64,
) -> Vec<MulticastGroup> {
    assert!(n >= 2, "need at least two nodes for traffic");
    let mut rng = StdRng::seed_from_u64(seed);
    // `fanout` distinct destinations ≠ root, by rejection — fine for
    // the sparse case and exact for the dense one (fanout near n).
    let draw_dsts = |rng: &mut StdRng, root: u64, fanout: u64| -> Vec<u64> {
        let fanout = fanout.min(n - 1);
        if fanout == n - 1 {
            return (0..n).filter(|&v| v != root).collect();
        }
        let mut dsts = Vec::with_capacity(fanout as usize);
        while (dsts.len() as u64) < fanout {
            let dst = rng.gen_range(0..n);
            if dst != root && !dsts.contains(&dst) {
                dsts.push(dst);
            }
        }
        dsts
    };
    match pattern {
        TrafficPattern::Broadcast => (0..groups)
            .map(|i| {
                let root = i as u64 % n;
                MulticastGroup {
                    root,
                    dsts: (0..n).filter(|&v| v != root).collect(),
                }
            })
            .collect(),
        TrafficPattern::Multicast { fanout } => (0..groups)
            .map(|_| {
                let root = rng.gen_range(0..n);
                let dsts = draw_dsts(&mut rng, root, fanout as u64);
                MulticastGroup { root, dsts }
            })
            .collect(),
        TrafficPattern::HotspotMulticast { fanout } => {
            let root = n / 2;
            (0..groups)
                .map(|_| MulticastGroup {
                    root,
                    dsts: draw_dsts(&mut rng, root, fanout as u64),
                })
                .collect()
        }
        unicast => generate_workload(unicast, n, d, groups, seed)
            .into_iter()
            .map(|(src, dst)| MulticastGroup {
                root: src,
                dsts: vec![dst],
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patterns_generate_valid_pairs() {
        for pattern in TrafficPattern::ALL {
            if pattern.is_multicast() {
                continue; // covered by multicast_patterns_generate_valid_groups
            }
            let workload = generate_workload(pattern, 16, 2, 500, 11);
            assert_eq!(workload.len(), 500, "{pattern}");
            for &(src, dst) in &workload {
                assert!(src < 16 && dst < 16, "{pattern}: ({src}, {dst})");
            }
            // The random patterns avoid self-traffic by construction;
            // permutation fixed points and digit-palindromes are
            // legitimate self-pairs.
            if matches!(
                pattern,
                TrafficPattern::Uniform | TrafficPattern::Hotspot | TrafficPattern::AllToAll
            ) {
                assert!(
                    workload.iter().all(|&(src, dst)| src != dst),
                    "{pattern} should avoid self-traffic"
                );
            }
        }
    }

    #[test]
    fn chunks_are_independently_regenerable() {
        // The chunked stream is the definition: each chunk decoded in
        // isolation (any order, repeatedly) equals its slice of the
        // materialized workload.
        let n = 64u64;
        let packets = 2 * WorkloadSource::CHUNK + 1234;
        for pattern in [
            TrafficPattern::Uniform,
            TrafficPattern::Permutation,
            TrafficPattern::Hotspot,
            TrafficPattern::AllToAll,
        ] {
            let source = WorkloadSource::new(pattern, n, 2, packets, 0xBEEF);
            assert_eq!(source.len(), packets);
            assert_eq!(source.chunk_count(), 3, "{pattern}");
            let whole = source.materialize();
            assert_eq!(whole.len(), packets, "{pattern}");
            let mut buf = Vec::new();
            for chunk in [2usize, 0, 1, 2, 0] {
                source.fill_chunk(chunk, &mut buf);
                let bounds = source.chunk_bounds(chunk);
                assert_eq!(buf.len(), bounds.len(), "{pattern} chunk {chunk}");
                assert_eq!(buf[..], whole[bounds], "{pattern} chunk {chunk}");
            }
            // A fresh source with the same seed decodes identically;
            // a different seed moves the random patterns.
            let again = WorkloadSource::new(pattern, n, 2, packets, 0xBEEF);
            assert_eq!(again.materialize(), whole, "{pattern}");
            if matches!(pattern, TrafficPattern::Uniform | TrafficPattern::Hotspot) {
                let other = WorkloadSource::new(pattern, n, 2, packets, 0xBEF0);
                assert_ne!(other.materialize(), whole, "{pattern}");
            }
        }
    }

    #[test]
    fn generate_workload_is_the_materialize_adapter() {
        let source = WorkloadSource::new(TrafficPattern::Uniform, 32, 2, 5000, 7);
        assert_eq!(
            source.materialize(),
            generate_workload(TrafficPattern::Uniform, 32, 2, 5000, 7)
        );
        // Degenerate stream: no pairs, no chunks.
        let empty = WorkloadSource::new(TrafficPattern::Uniform, 32, 2, 0, 7);
        assert!(empty.is_empty());
        assert_eq!(empty.chunk_count(), 0);
        assert_eq!(empty.materialize(), Vec::new());
    }

    #[test]
    fn transpose_and_bitrev_are_involutions() {
        for value in 0..256u64 {
            assert_eq!(digit_reverse(digit_reverse(value, 2, 8), 2, 8), value);
        }
        // Transpose swaps halves; applying it twice is the identity
        // when D is even.
        for value in 0..256u64 {
            assert_eq!(digit_transpose(digit_transpose(value, 2, 8), 2, 8), value);
        }
        for value in 0..27u64 {
            assert_eq!(digit_reverse(digit_reverse(value, 3, 3), 3, 3), value);
        }
    }

    #[test]
    fn hotspot_concentrates_on_hot_node() {
        let workload = generate_workload(TrafficPattern::Hotspot, 64, 2, 4000, 3);
        let hot = TrafficPattern::Hotspot
            .hot_node(64)
            .expect("hotspot is hot");
        assert_eq!(hot, 32);
        assert_eq!(TrafficPattern::Uniform.hot_node(64), None);
        let to_hot = workload.iter().filter(|&&(_, dst)| dst == hot).count();
        assert!(
            to_hot >= workload.len() / 4,
            "hotspot sends ≥ 25% to the hot node, got {to_hot}/4000"
        );
    }

    #[test]
    fn all_to_all_covers_every_pair() {
        let n = 8u64;
        let pairs = (n * (n - 1)) as usize;
        let workload = generate_workload(TrafficPattern::AllToAll, n, 2, pairs, 0);
        let mut seen = std::collections::HashSet::new();
        for &pair in &workload {
            assert!(
                seen.insert(pair),
                "duplicate pair {pair:?} within one sweep"
            );
        }
        assert_eq!(seen.len(), pairs);
    }

    #[test]
    #[should_panic(expected = "alphabet of size")]
    fn digit_pattern_rejects_degenerate_alphabet() {
        generate_workload(TrafficPattern::Transpose, 8, 1, 10, 0);
    }

    #[test]
    #[should_panic(expected = "one-to-many")]
    fn pair_generator_rejects_multicast_patterns() {
        generate_workload(TrafficPattern::Broadcast, 8, 2, 10, 0);
    }

    #[test]
    fn multicast_patterns_generate_valid_groups() {
        let n = 16u64;
        for pattern in [
            TrafficPattern::Broadcast,
            TrafficPattern::Multicast { fanout: 4 },
            TrafficPattern::HotspotMulticast { fanout: 4 },
            // Oversized fanout clamps to broadcast-sized groups.
            TrafficPattern::Multicast { fanout: 99 },
        ] {
            let groups = generate_multicast_workload(pattern, n, 2, 40, 11);
            assert_eq!(groups.len(), 40, "{pattern}");
            for group in &groups {
                assert!(group.root < n, "{pattern}");
                let expected = match pattern {
                    TrafficPattern::Broadcast => n - 1,
                    TrafficPattern::Multicast { fanout }
                    | TrafficPattern::HotspotMulticast { fanout } => (fanout as u64).min(n - 1),
                    _ => unreachable!(),
                };
                assert_eq!(group.dsts.len() as u64, expected, "{pattern}");
                let mut seen = std::collections::HashSet::new();
                for &dst in &group.dsts {
                    assert!(dst < n && dst != group.root, "{pattern}: {dst}");
                    assert!(seen.insert(dst), "{pattern}: duplicate dst {dst}");
                }
            }
        }
        // Hotspot-rooted groups all share the hot root.
        let hotcast = generate_multicast_workload(
            TrafficPattern::HotspotMulticast { fanout: 3 },
            n,
            2,
            10,
            5,
        );
        assert!(hotcast.iter().all(|g| g.root == n / 2));
        // Broadcast roots cycle round-robin.
        let broadcast = generate_multicast_workload(TrafficPattern::Broadcast, n, 2, 20, 5);
        assert!(broadcast
            .iter()
            .enumerate()
            .all(|(i, g)| g.root == i as u64 % n));
        // Unicast patterns flow through as singleton groups, matching
        // the pair generator exactly.
        let singles = generate_multicast_workload(TrafficPattern::Uniform, n, 2, 50, 9);
        let pairs = generate_workload(TrafficPattern::Uniform, n, 2, 50, 9);
        assert_eq!(singles.len(), pairs.len());
        for (group, &(src, dst)) in singles.iter().zip(&pairs) {
            assert_eq!((group.root, group.dsts.as_slice()), (src, &[dst][..]));
        }
    }

    #[test]
    fn multicast_patterns_parse_and_roundtrip() {
        assert_eq!(
            "broadcast".parse::<TrafficPattern>().unwrap(),
            TrafficPattern::Broadcast
        );
        assert_eq!(
            "multicast:8".parse::<TrafficPattern>().unwrap(),
            TrafficPattern::Multicast { fanout: 8 }
        );
        assert_eq!(
            "hotcast:255".parse::<TrafficPattern>().unwrap(),
            TrafficPattern::HotspotMulticast { fanout: 255 }
        );
        assert!("multicast:0".parse::<TrafficPattern>().is_err());
        assert!("multicast:".parse::<TrafficPattern>().is_err());
        assert!("hotcast:x".parse::<TrafficPattern>().is_err());
        // Display round-trips through FromStr for every pattern —
        // which is also the serde wire format.
        for pattern in TrafficPattern::ALL {
            assert_eq!(pattern.to_string().parse::<TrafficPattern>(), Ok(pattern));
            let json = serde_json::to_string(&pattern).unwrap();
            let back: TrafficPattern = serde_json::from_str(&json).unwrap();
            assert_eq!(back, pattern);
        }
    }

    #[test]
    fn parse_error_lists_valid_patterns() {
        let err = "zigzag".parse::<TrafficPattern>().unwrap_err();
        assert!(err.contains("unknown pattern"), "{err}");
        for pattern in TrafficPattern::ALL {
            assert!(err.contains(&pattern.to_string()), "{err}");
        }
    }
}
