//! The cycle loop: injection, sharded drain, apply — the engine's hot
//! path, rebuilt for scale.
//!
//! # Cycle anatomy
//!
//! 1. **Injection** (sequential): each source with accrued credit
//!    offers its queue head into its first-hop channel, rotating the
//!    starting source. Pushes commit immediately.
//! 2. **Drain** (sharded): every *node* with any occupied inbound
//!    channel drains its in-arcs — up to `wavelengths` packets per
//!    arc, round-robin over VC classes, both starting offsets rotating
//!    per cycle. Moves are staged; pops are batched. Workers own
//!    disjoint node ranges, and because every buffer a node's drain
//!    writes belongs to that node's *own* out-arcs, ownership is
//!    disjoint by construction — no locks, no CAS loops in the loop.
//! 3. **Apply** (sequential): batched pop counts commit, emptied nodes
//!    leave the worklist, staged arrivals join their FIFOs (per-channel
//!    arrival order is the source node's drain order, so it cannot
//!    depend on the worker layout), stats merge in worker order.
//!
//! # Boundary credits — the determinism contract
//!
//! A room check reads `len + staged_len`: the occupancy committed at
//! the last apply plus this cycle's staged arrivals. Pops made *this*
//! cycle are not visible, so a slot freed in cycle `t` is claimable in
//! cycle `t + 1`. The pre-arena engine let later-scanned links see
//! earlier pops, which made outcomes depend on scan order — harmless
//! sequentially, fatal for deterministic parallelism. With boundary
//! credits, a cycle's outcome is a pure function of its start state,
//! so the drain may be sharded any way at all: the report is
//! byte-identical at 1, 2, or 8 threads (pinned by proptest).
//! Deliveries, drops and relief moves never need room, so progress
//! (and deadlock detection) is unaffected. Two arbitration tie-breaks
//! are thereby *re-specified* relative to the reference engine: a
//! slot freed this cycle is claimable next cycle (not later in the
//! same scan), and same-cycle arrivals into one FIFO land in the
//! staging node's drain order (not the global scan order) — both
//! deterministic, neither observable except as ±1-cycle shifts in
//! individual waits under contention.
//!
//! # The worklist
//!
//! `active` is a dense bitset over nodes with `node_pending[v] > 0`
//! (packets sitting in v's inbound channels). Injection and apply set
//! bits as they push; a drain that empties a node queues it for a
//! clear at the next apply. An idle region of the fabric costs one
//! word load per 64 nodes per cycle — nothing — which is what makes
//! sparse and hotspot workloads cheap on `B(2,16)`'s 131072 links.
//!
//! # Stateless-router hop caching
//!
//! Under saturation most drain attempts re-ask the router the exact
//! question it answered last cycle (the head hasn't moved). When
//! [`Router::hops_are_stateless`] holds, the computed next arc is
//! cached in the packet and invalidated on movement, so a blocked head
//! costs a word load, not a routing query. Adaptive routers opt out
//! and are re-queried every attempt, reading congestion as of the last
//! phase boundary — stable within a cycle, hence still deterministic.

use super::arena::{ArenaAllocator, ChannelQueues, PacketArena, NONE};
use super::{arc_of, ContentionPolicy, QueueingEngine, TreeSet};
use crate::traffic::report::{percentile_u64, ClassBreakdown, ClassStats, QueueingReport};
use otis_core::{Dateline, Router};
use otis_digraph::Digraph;
use otis_util::DenseBitset;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering::Relaxed};
use std::sync::{Barrier, Mutex};

/// What a run simulates: unicast `(src, dst)` pairs, or multicast
/// delivery trees with in-fabric replication. The multicast variant
/// flips the meaning of the report's packet counters to **destination
/// leaves** (`injected_leaves = delivered + dropped + in_flight`),
/// while everything structural — buffers, VC classes, backpressure,
/// the deterministic sharded drain — is shared.
pub(super) enum Work<'a> {
    Unicast(&'a [(u64, u64)]),
    Multicast(&'a TreeSet),
}

/// A staged replication: one child copy to materialize at the apply
/// step (the arena allocator is owned by the sequential phases, so
/// drain workers stage spawns instead of claiming ids). Room was
/// already checked and `staged_len` bumped by the staging worker.
struct Spawn {
    chan: u32,
    tree_arc: u32,
    offered: u64,
    hops: u32,
    vc: u8,
}

/// Everything a drain worker may touch: immutable context plus shared
/// slabs whose writes are disjoint by node ownership (each channel's
/// pops belong to the worker owning the channel's *target* node; each
/// channel's `staged_len` to the worker owning its *source* node —
/// which is the same worker that stages into it).
struct SharedRun<'a> {
    g: &'a Digraph,
    router: &'a dyn Router,
    dateline: &'a Dateline,
    /// Reverse CSR: `in_arcs[in_offsets[v]..in_offsets[v + 1]]` are
    /// the arc ids targeting `v`, ascending.
    in_offsets: &'a [u32],
    in_arcs: &'a [u32],
    vcs: usize,
    buffers: u32,
    wavelengths: usize,
    policy: ContentionPolicy,
    hop_limit: u32,
    /// Router promised pure hops — enable the per-packet cache.
    /// Multicast runs are always stateless: copies follow prebuilt
    /// trees, never the live router.
    stateless: bool,
    /// The flattened delivery trees of a multicast run.
    trees: Option<&'a TreeSet>,
    hot_dst: Option<u64>,
    classified: bool,
    arena: &'a PacketArena,
    queues: &'a ChannelQueues,
    /// Inbound channels of `v` that are *ready*: nonempty and not
    /// parked. The worklist counts these, not raw packets — a parked
    /// channel costs nothing until its blocker commits a pop.
    node_ready: &'a [AtomicU32],
    /// The worklist: nodes with `node_ready > 0`.
    active: &'a DenseBitset,
    /// 1 iff the channel's head is blocked on a full downstream FIFO
    /// under a *stateless* router. Under boundary credits room can
    /// only reappear when the blocker commits a pop, so a parked
    /// channel is simply skipped until that pop wakes it — the
    /// event-driven half of the worklist. (Adaptive routers may pick
    /// a different candidate each cycle, so they never park.)
    parked: &'a [AtomicU32],
    /// Intrusive single-linked waiter lists: `waiter_head[c]` is the
    /// first channel parked on `c`'s room, threaded through
    /// `waiter_link`. Written only by the owner of `c`'s source node
    /// (every channel that can block on `c` drains at that same
    /// node); drained by the apply step on each committed pop.
    waiter_head: &'a [AtomicU32],
    waiter_link: &'a [AtomicU32],
    delivered_per_link: &'a [AtomicU64],
    /// The engine's occupancy scoreboard (what adaptive routers read);
    /// updated only at phase boundaries, hence cycle-stable.
    counts: &'a [AtomicU32],
    cycle: AtomicU64,
    done: AtomicBool,
}

/// Per-worker buffers, reused across cycles. Handed to the apply step
/// through a mutex that is only ever contended at phase boundaries.
struct WorkerScratch {
    /// Staged arrivals `(channel, packet)`, in drain order.
    staged: Vec<(u32, u32)>,
    /// Staged replications, in drain order. Per channel the apply
    /// lands moves before spawns; both sequences are the channel's
    /// source-node drain order, so arrival order stays independent of
    /// the worker layout.
    spawned: Vec<Spawn>,
    /// Batched pop counts `(channel, count)`.
    pops: Vec<(u32, u32)>,
    /// Departed packet ids (delivered or dropped), for recycling.
    freed: Vec<u32>,
    /// Nodes whose pending count hit zero.
    emptied: Vec<u32>,
    waits: Vec<u64>,
    class_waits: [Vec<u64>; 2],
    vc_blocked: Vec<bool>,
    vc_pops: Vec<u32>,
    stats: DrainStats,
}

impl WorkerScratch {
    fn new(vcs: usize) -> Self {
        WorkerScratch {
            staged: Vec::new(),
            spawned: Vec::new(),
            pops: Vec::new(),
            freed: Vec::new(),
            emptied: Vec::new(),
            waits: Vec::new(),
            class_waits: [Vec::new(), Vec::new()],
            vc_blocked: vec![false; vcs],
            vc_pops: vec![0; vcs],
            stats: DrainStats::default(),
        }
    }
}

/// One drain phase's counter deltas, merged (and reset) at apply.
#[derive(Default)]
struct DrainStats {
    activity: usize,
    delivered: usize,
    /// Leaf units that left the network (delivered + dropped). For
    /// unicast one packet is one leaf; for multicast a dropped copy
    /// departs with its whole subtree weight.
    departed: usize,
    /// Arena copies that left the network (`freed` entries).
    departed_copies: usize,
    /// Child copies staged at tree branches this phase.
    spawned_copies: usize,
    dropped_full: usize,
    dropped_unroutable: usize,
    dropped_ttl: usize,
    delivered_hops: u64,
    max_hops: u32,
    promotions: u64,
    relief: u64,
    class_delivered: [usize; 2],
    class_dropped: [usize; 2],
}

/// Main-thread run accumulators.
struct MainState {
    peak: Vec<u32>,
    sources: Vec<VecDeque<usize>>,
    source_ids: Vec<usize>,
    /// Stateless-router injection cache: the workload index each
    /// source's cached first-hop arc was computed for, and that arc.
    /// A backpressured source re-offers the same head every cycle it
    /// stalls; this makes the re-offer a compare, not a router query.
    inject_cached_for: Vec<usize>,
    inject_cached_arc: Vec<u32>,
    /// Stateless-router source parking: the cycle each source stalled
    /// and parked (`u64::MAX` = not parked). A parked source is
    /// skipped by the injection scan until its first-hop channel
    /// commits a pop; the skipped stall cycles are settled in bulk at
    /// wake (and at run end), so the counter reads exactly as if the
    /// source had been re-scanned every cycle.
    source_parked_at: Vec<u64>,
    /// Intrusive per-channel lists of parked sources, main-owned
    /// (sources park during injection and wake during apply — both
    /// sequential phases).
    source_waiter_head: Vec<u32>,
    source_waiter_link: Vec<u32>,
    pending: usize,
    /// Leaf units buffered in the fabric (unicast: packets).
    in_network: usize,
    /// Live arena copies (multicast replication makes this differ
    /// from `in_network`; unicast keeps them equal).
    in_copies: usize,
    /// Multicast groups that completed injection.
    groups_injected: usize,
    /// Child copies spawned at tree branches.
    replicated: u64,
    injected: usize,
    delivered: usize,
    dropped_full: usize,
    dropped_unroutable: usize,
    dropped_ttl: usize,
    delivered_hops: u64,
    max_hops: u32,
    waits: Vec<u64>,
    class_injected: [usize; 2],
    class_delivered: [usize; 2],
    class_dropped: [usize; 2],
    class_waits: [Vec<u64>; 2],
    dateline_promotions: u64,
    dateline_relief: u64,
    source_stall_cycles: u64,
    deadlocked: bool,
    cycle: u64,
}

/// How many drain workers a run uses: an explicit
/// `QueueConfig::drain_threads`, else 1 below 4096 nodes (sharding
/// overhead beats the win on small fabrics) and the hardware
/// parallelism, capped at 8, above.
pub(super) fn resolve_threads(drain_threads: usize, n: usize) -> usize {
    let threads = if drain_threads > 0 {
        drain_threads
    } else if n < 4096 {
        1
    } else {
        std::thread::available_parallelism()
            .map_or(1, |p| p.get())
            .min(8)
    };
    threads.clamp(1, n.max(1))
}

pub(super) fn execute(
    engine: &QueueingEngine,
    router: &dyn Router,
    work: Work<'_>,
    offered_per_cycle: f64,
    hot_dst: Option<u64>,
) -> QueueingReport {
    assert!(
        offered_per_cycle > 0.0,
        "offered load must be positive, got {offered_per_cycle}"
    );
    let g = engine.digraph();
    let n = g.node_count() as u64;
    assert_eq!(
        router.node_count(),
        n,
        "router covers {} nodes but the fabric has {n}",
        router.node_count()
    );
    let config = *engine.config();
    let arcs = g.arc_count();
    let vcs = config.vcs;
    let channels = arcs * vcs;
    let hop_limit = config.hop_limit.unwrap_or_else(|| (2 * n).max(64) as u32);
    let threads = resolve_threads(config.drain_threads, n as usize);

    let counts = engine.counts();
    for count in counts.iter() {
        count.store(0, Relaxed);
    }

    // Injection items (pairs or groups) and the arena bound: a unicast
    // run never holds more copies than packets; a multicast run never
    // holds more copies than tree arcs (each arc is crossed once).
    let (workload, trees) = match work {
        Work::Unicast(pairs) => (pairs, None),
        Work::Multicast(set) => {
            assert!(hot_dst.is_none(), "multicast runs are unclassified");
            (&[][..], Some(set))
        }
    };
    let (items, capacity) = match trees {
        Some(set) => (set.group_count(), set.arc_count()),
        None => (workload.len(), workload.len()),
    };

    let arena = PacketArena::with_capacity(capacity);
    let mut allocator = ArenaAllocator::new(capacity);
    let queues = ChannelQueues::new(channels);
    let node_ready: Vec<AtomicU32> = (0..n as usize).map(|_| AtomicU32::new(0)).collect();
    let active = DenseBitset::new(n as usize);
    let zeros = |len: usize| -> Vec<AtomicU32> { (0..len).map(|_| AtomicU32::new(0)).collect() };
    let parked = zeros(channels);
    let waiter_head: Vec<AtomicU32> = (0..channels).map(|_| AtomicU32::new(NONE)).collect();
    let waiter_link: Vec<AtomicU32> = (0..channels).map(|_| AtomicU32::new(NONE)).collect();
    let delivered_per_link: Vec<AtomicU64> = (0..arcs).map(|_| AtomicU64::new(0)).collect();

    let shared = SharedRun {
        g,
        router,
        dateline: engine.dateline_ref(),
        in_offsets: engine.in_offsets(),
        in_arcs: engine.in_arcs(),
        vcs,
        buffers: config.buffers as u32,
        wavelengths: config.wavelengths,
        policy: config.policy,
        hop_limit,
        stateless: trees.is_some() || router.hops_are_stateless(),
        trees,
        hot_dst,
        classified: hot_dst.is_some(),
        arena: &arena,
        queues: &queues,
        node_ready: &node_ready,
        active: &active,
        parked: &parked,
        waiter_head: &waiter_head,
        waiter_link: &waiter_link,
        delivered_per_link: &delivered_per_link,
        counts,
        cycle: AtomicU64::new(0),
        done: AtomicBool::new(false),
    };

    // Per-source injection queues, workload order within each source.
    let mut sources: Vec<VecDeque<usize>> = vec![VecDeque::new(); n as usize];
    match trees {
        Some(set) => {
            for group in 0..set.group_count() {
                let root = set.group_root(group);
                assert!(
                    root < n,
                    "group root {root} is not a fabric node (fabric has {n})"
                );
                sources[root as usize].push_back(group);
            }
        }
        None => {
            for (index, &(src, _)) in workload.iter().enumerate() {
                assert!(
                    src < n,
                    "workload source {src} is not a fabric node (fabric has {n})"
                );
                sources[src as usize].push_back(index);
            }
        }
    }
    let source_ids: Vec<usize> = (0..n as usize)
        .filter(|&src| !sources[src].is_empty())
        .collect();

    let mut main = MainState {
        peak: vec![0u32; channels],
        sources,
        source_ids,
        inject_cached_for: vec![usize::MAX; n as usize],
        inject_cached_arc: vec![0u32; n as usize],
        source_parked_at: vec![u64::MAX; n as usize],
        source_waiter_head: vec![NONE; channels],
        source_waiter_link: vec![NONE; n as usize],
        pending: items,
        in_network: 0,
        in_copies: 0,
        groups_injected: 0,
        replicated: 0,
        injected: 0,
        delivered: 0,
        dropped_full: 0,
        dropped_unroutable: 0,
        dropped_ttl: 0,
        delivered_hops: 0,
        max_hops: 0,
        waits: Vec::with_capacity(items),
        class_injected: [0; 2],
        class_delivered: [0; 2],
        class_dropped: [0; 2],
        class_waits: [Vec::new(), Vec::new()],
        dateline_promotions: 0,
        dateline_relief: 0,
        source_stall_cycles: 0,
        deadlocked: false,
        cycle: 0,
    };

    let scratches: Vec<Mutex<WorkerScratch>> = (0..threads)
        .map(|_| Mutex::new(WorkerScratch::new(vcs)))
        .collect();
    // Contiguous node shards: worker w owns [w·n/T, (w+1)·n/T).
    let shard = |w: usize| -> std::ops::Range<usize> {
        let lo = (n as usize * w) / threads;
        let hi = (n as usize * (w + 1)) / threads;
        lo..hi
    };
    let barrier = Barrier::new(threads);

    std::thread::scope(|scope| {
        for (w, scratch) in scratches.iter().enumerate().skip(1) {
            let shared = &shared;
            let barrier = &barrier;
            let range = shard(w);
            scope.spawn(move || loop {
                barrier.wait();
                if shared.done.load(Relaxed) {
                    break;
                }
                let cycle = shared.cycle.load(Relaxed);
                let mut ws = scratch.lock().expect("drain scratch");
                drain_range(shared, range.clone(), cycle, &mut ws);
                drop(ws);
                barrier.wait();
            });
        }
        loop {
            let horizon = main.cycle >= config.max_cycles;
            if (main.pending == 0 && main.in_network == 0) || horizon || main.deadlocked {
                shared.done.store(true, Relaxed);
                barrier.wait();
                break;
            }
            let mut activity = match shared.trees {
                Some(set) => {
                    inject_multicast(&shared, &mut main, &mut allocator, set, offered_per_cycle)
                }
                None => inject(
                    &shared,
                    &mut main,
                    &mut allocator,
                    workload,
                    offered_per_cycle,
                ),
            };
            shared.cycle.store(main.cycle, Relaxed);
            barrier.wait();
            {
                let mut ws = scratches[0].lock().expect("drain scratch");
                drain_range(&shared, shard(0), main.cycle, &mut ws);
            }
            barrier.wait();
            activity += apply(&shared, &mut main, &mut allocator, &scratches);
            main.cycle += 1;
            if activity == 0 && main.in_network > 0 {
                // Packets are buffered but nothing moved, injected or
                // dropped: every head waits on a full FIFO in a cycle
                // of full FIFOs. With boundary credits the queue state
                // is a pure function of itself, so no future cycle can
                // differ — a backpressure deadlock. (An idle network
                // with activity 0 is just injection pacing.)
                main.deadlocked = true;
            }
        }
    });

    // Arena conservation: every slot handed out is either recycled
    // (delivered/dropped) or still queued (in flight). Multicast
    // copies are audited in copy units — their leaf-unit total is the
    // report's `in_flight`.
    let live_copies = if shared.trees.is_some() {
        main.in_copies
    } else {
        main.in_network
    };
    assert_eq!(
        allocator.live(),
        live_copies,
        "arena leak: {} live slots vs {live_copies} in-flight copies",
        allocator.live(),
    );

    // Sources still parked at the end: the scan would have re-stalled
    // them in every executed cycle after they parked — settle the
    // counter so it reads identically to the unparked path.
    if main.cycle > 0 {
        for &parked_at in &main.source_parked_at {
            if parked_at != u64::MAX {
                main.source_stall_cycles += (main.cycle - 1) - parked_at;
            }
        }
    }

    finish(
        &mut main,
        &delivered_per_link,
        arcs,
        vcs,
        router,
        offered_per_cycle,
        hot_dst,
        trees,
    )
}

/// The injection phase of a multicast run: rotate over roots with
/// pending groups, injecting one copy per root-child tree arc. A
/// group injects all-or-nothing under backpressure (any full
/// root-child FIFO stalls the root, which parks on it); under
/// tail-drop the full children drop with their whole subtree weight
/// and the rest inject. Root self-requests deliver at the source and
/// unroutable leaves drop here, so a processed group always accounts
/// for every one of its leaves.
fn inject_multicast(
    shared: &SharedRun,
    main: &mut MainState,
    allocator: &mut ArenaAllocator,
    trees: &TreeSet,
    offered_per_cycle: f64,
) -> usize {
    let offer_cycle =
        |i: usize| (((i + 1) as f64 / offered_per_cycle).ceil() as u64).saturating_sub(1);
    let cycle = main.cycle;
    let mut activity = 0usize;
    let scan_count = if main.pending == 0 {
        0
    } else {
        main.source_ids.len()
    };
    let source_start = if main.source_ids.is_empty() {
        0
    } else {
        cycle as usize % main.source_ids.len()
    };
    for scan in 0..scan_count {
        let src = main.source_ids[(source_start + scan) % main.source_ids.len()];
        if main.source_parked_at[src] != u64::MAX {
            continue; // woken by the blocking channel's next pop
        }
        'groups: while let Some(&group) = main.sources[src].front() {
            if offer_cycle(group) > cycle {
                break;
            }
            let roots = trees.group_root_arcs(group);
            if shared.policy == ContentionPolicy::Backpressure {
                // All-or-nothing: probe every root child before
                // committing anything.
                for &t in roots {
                    let arc = trees.fabric_arc(t);
                    let vc0 = shared.dateline.next_class_arc(0, arc);
                    let chan = arc * shared.vcs + vc0 as usize;
                    if shared.queues.len[chan].load(Relaxed) >= shared.buffers {
                        main.source_stall_cycles += 1;
                        main.source_parked_at[src] = cycle;
                        main.source_waiter_link[src] = main.source_waiter_head[chan];
                        main.source_waiter_head[chan] = src as u32;
                        break 'groups;
                    }
                }
            }
            main.sources[src].pop_front();
            main.pending -= 1;
            main.groups_injected += 1;
            main.injected += trees.group_leaves(group) as usize;
            let self_requests = trees.group_self_requests(group) as usize;
            if self_requests > 0 {
                // Delivered without entering the network.
                main.delivered += self_requests;
                let wait = cycle - offer_cycle(group);
                for _ in 0..self_requests {
                    main.waits.push(wait);
                }
            }
            main.dropped_unroutable += trees.group_unroutable(group) as usize;
            for &t in roots {
                let arc = trees.fabric_arc(t);
                let vc0 = shared.dateline.next_class_arc(0, arc);
                let chan = arc * shared.vcs + vc0 as usize;
                if shared.queues.len[chan].load(Relaxed) < shared.buffers {
                    if vc0 > 0 {
                        main.dateline_promotions += 1;
                    }
                    let id = allocator.claim();
                    shared.arena.init(id, t, offer_cycle(group), vc0);
                    push_packet(shared, &mut main.peak, chan, id);
                    main.in_network += trees.weight(t) as usize;
                    main.in_copies += 1;
                } else {
                    // Only reachable under tail-drop — backpressure
                    // probed every child above.
                    debug_assert_eq!(shared.policy, ContentionPolicy::TailDrop);
                    main.dropped_full += trees.weight(t) as usize;
                }
            }
            activity += 1;
        }
    }
    activity
}

/// The injection phase: rotate over sources with pending traffic,
/// admitting each source's eligible queue head(s). Returns the phase's
/// activity count.
fn inject(
    shared: &SharedRun,
    main: &mut MainState,
    allocator: &mut ArenaAllocator,
    workload: &[(u64, u64)],
    offered_per_cycle: f64,
) -> usize {
    // Cycle the `i`-th packet's injection credit accrues: credits
    // issued through cycle `c` total `(c+1)·offered`, so packet `i` is
    // covered once that reaches `i+1`. Without stalls this is exactly
    // the injection cycle.
    let offer_cycle =
        |i: usize| (((i + 1) as f64 / offered_per_cycle).ceil() as u64).saturating_sub(1);
    let cycle = main.cycle;
    let mut activity = 0usize;
    let scan_count = if main.pending == 0 {
        0
    } else {
        main.source_ids.len()
    };
    let source_start = if main.source_ids.is_empty() {
        0
    } else {
        cycle as usize % main.source_ids.len()
    };
    for scan in 0..scan_count {
        let src = main.source_ids[(source_start + scan) % main.source_ids.len()];
        if main.source_parked_at[src] != u64::MAX {
            // Still blocked on a full first-hop FIFO; its wake-up is
            // event-driven (the blocker's next committed pop).
            continue;
        }
        while let Some(&index) = main.sources[src].front() {
            if offer_cycle(index) > cycle {
                // Not offered yet — and queues hold workload order, so
                // nothing behind it is either.
                break;
            }
            let (_, dst) = workload[index];
            let class = usize::from(shared.hot_dst == Some(dst));
            if src as u64 == dst {
                // Delivered without entering the network (any
                // source-stall time still counts as waiting).
                main.sources[src].pop_front();
                main.pending -= 1;
                main.injected += 1;
                main.delivered += 1;
                main.class_injected[class] += 1;
                main.class_delivered[class] += 1;
                let wait = cycle - offer_cycle(index);
                main.waits.push(wait);
                if shared.classified {
                    main.class_waits[class].push(wait);
                }
                activity += 1;
                continue;
            }
            // An off-fabric destination is unroutable by definition
            // — dropped here, before any router can be asked about a
            // node that does not exist (dense tables index out of
            // bounds, compressed ones would have to invent answers).
            let arc = if dst >= shared.g.node_count() as u64 {
                None
            } else if shared.stateless && main.inject_cached_for[src] == index {
                Some(main.inject_cached_arc[src] as usize)
            } else {
                let computed = shared
                    .router
                    .next_hop_on_vc(src as u64, dst, 0)
                    .and_then(|next| arc_of(shared.g, src as u64, next));
                if let (true, Some(found)) = (shared.stateless, computed) {
                    main.inject_cached_for[src] = index;
                    main.inject_cached_arc[src] = found as u32;
                }
                computed
            };
            let Some(arc) = arc else {
                // No route (or the router proposed a non-neighbor).
                main.sources[src].pop_front();
                main.pending -= 1;
                main.injected += 1;
                main.dropped_unroutable += 1;
                main.class_injected[class] += 1;
                main.class_dropped[class] += 1;
                activity += 1;
                continue;
            };
            // A packet starts at class 0 and, like any other hop, is
            // promoted if its very first arc crosses the dateline — so
            // the class it joins is exactly the one a dateline-aware
            // adaptive scorer charged for this hop.
            let vc0 = shared.dateline.next_class_arc(0, arc);
            let chan = arc * shared.vcs + vc0 as usize;
            if shared.queues.len[chan].load(Relaxed) < shared.buffers {
                main.sources[src].pop_front();
                main.pending -= 1;
                if vc0 > 0 {
                    main.dateline_promotions += 1;
                }
                let id = allocator.claim();
                shared.arena.init(id, dst as u32, offer_cycle(index), vc0);
                push_packet(shared, &mut main.peak, chan, id);
                main.in_network += 1;
                main.injected += 1;
                main.class_injected[class] += 1;
                activity += 1;
            } else {
                match shared.policy {
                    ContentionPolicy::TailDrop => {
                        main.sources[src].pop_front();
                        main.pending -= 1;
                        main.injected += 1;
                        main.dropped_full += 1;
                        main.class_injected[class] += 1;
                        main.class_dropped[class] += 1;
                        activity += 1;
                    }
                    ContentionPolicy::Backpressure => {
                        // This source stalls; the others go on. With a
                        // stateless router the blocking channel is
                        // fixed, so park the source until that channel
                        // commits a pop instead of re-scanning it
                        // every cycle (the skipped stalls are settled
                        // at wake time).
                        main.source_stall_cycles += 1;
                        if shared.stateless {
                            main.source_parked_at[src] = cycle;
                            main.source_waiter_link[src] = main.source_waiter_head[chan];
                            main.source_waiter_head[chan] = src as u32;
                        }
                        break;
                    }
                }
            }
        }
    }
    activity
}

/// Commit a push: thread the FIFO, bump committed occupancy, publish
/// to the congestion scoreboard, track the peak, and — when the
/// channel just became nonempty — activate the downstream node's
/// worklist bit. (A parked channel is never empty, so `len == 0`
/// implies unparked.) Sequential phases only.
fn push_packet(shared: &SharedRun, peak: &mut [u32], chan: usize, id: u32) {
    let len = shared.queues.push(chan, id, &shared.arena.link);
    if len > peak[chan] {
        peak[chan] = len;
    }
    shared.counts[chan].store(len, Relaxed);
    if len == 1 {
        activate(shared, chan);
    }
}

/// A channel became ready (first packet, or woken from parking):
/// count it toward its node and set the node's worklist bit.
fn activate(shared: &SharedRun, chan: usize) {
    let node = shared.g.arc_target(chan / shared.vcs) as usize;
    // Plain load+store: every node_ready word has exactly one writer
    // per phase (the node's drain owner during drain, the main thread
    // otherwise), so no lock-prefixed RMW is needed on the hot path.
    let ready = shared.node_ready[node].load(Relaxed);
    shared.node_ready[node].store(ready + 1, Relaxed);
    if ready == 0 {
        shared.active.insert(node);
    }
}

/// Drain every active node in `range` — one worker's shard.
fn drain_range(
    shared: &SharedRun,
    range: std::ops::Range<usize>,
    cycle: u64,
    ws: &mut WorkerScratch,
) {
    shared.active.for_each_in(range, |node| {
        if shared.node_ready[node].load(Relaxed) > 0 {
            drain_node(shared, node, cycle, ws);
        }
    });
}

/// Drain one node's inbound arcs, rotating the starting arc per cycle
/// so no in-arc persistently wins the node's downstream buffer space.
fn drain_node(shared: &SharedRun, node: usize, cycle: u64, ws: &mut WorkerScratch) {
    let lo = shared.in_offsets[node] as usize;
    let hi = shared.in_offsets[node + 1] as usize;
    let degree = hi - lo;
    debug_assert!(degree > 0, "ready channels imply inbound arcs");
    let rotation = cycle as usize % degree;
    // Branch once per node, not once per arc — the unicast hot path
    // must not pay for the multicast dispatch.
    match shared.trees {
        Some(trees) => {
            for step in 0..degree {
                let arc = shared.in_arcs[lo + (rotation + step) % degree] as usize;
                drain_arc_mc(shared, trees, arc, node as u64, cycle, ws);
                if shared.node_ready[node].load(Relaxed) == 0 {
                    break;
                }
            }
        }
        None => {
            for step in 0..degree {
                let arc = shared.in_arcs[lo + (rotation + step) % degree] as usize;
                drain_arc(shared, arc, node as u64, cycle, ws);
                if shared.node_ready[node].load(Relaxed) == 0 {
                    break;
                }
            }
        }
    }
    if shared.node_ready[node].load(Relaxed) == 0 {
        ws.emptied.push(node as u32);
    }
}

/// Drain one arc: up to `wavelengths` packets off its VC FIFO heads,
/// one per class per round (rotating the starting class) so no class
/// hogs the channels; a blocked head blocks only its own class.
fn drain_arc(shared: &SharedRun, arc: usize, node: u64, cycle: u64, ws: &mut WorkerScratch) {
    let vcs = shared.vcs;
    let vc_start = cycle as usize % vcs;
    let mut budget = shared.wavelengths;
    let mut parked_here = 0u32;
    ws.vc_blocked[..vcs].fill(false);
    ws.vc_pops[..vcs].fill(0);
    'link: loop {
        let mut progressed = false;
        for offset in 0..vcs {
            if budget == 0 {
                break 'link;
            }
            let vc = (vc_start + offset) % vcs;
            if ws.vc_blocked[vc] {
                continue;
            }
            let chan = arc * vcs + vc;
            if shared.parked[chan].load(Relaxed) != 0 {
                // Still waiting on its blocker's pop — costs this one
                // word load, nothing more.
                ws.vc_blocked[vc] = true;
                continue;
            }
            let head = shared.queues.head[chan].load(Relaxed);
            if head == NONE {
                ws.vc_blocked[vc] = true;
                continue;
            }
            let slot = head as usize;
            let dst = shared.arena.dst[slot].load(Relaxed);
            let hops_after = shared.arena.hops[slot].load(Relaxed) + 1;
            if dst as u64 == node {
                shared.queues.pop_head(chan, head, &shared.arena.link);
                ws.vc_pops[vc] += 1;
                ws.freed.push(head);
                let class = usize::from(shared.hot_dst == Some(dst as u64));
                ws.stats.delivered += 1;
                ws.stats.departed += 1;
                ws.stats.class_delivered[class] += 1;
                ws.stats.delivered_hops += hops_after as u64;
                if hops_after > ws.stats.max_hops {
                    ws.stats.max_hops = hops_after;
                }
                let delivered_here = shared.delivered_per_link[arc].load(Relaxed);
                shared.delivered_per_link[arc].store(delivered_here + 1, Relaxed);
                // Total time since offer minus one cycle per hop =
                // cycles spent waiting (source stall plus queueing).
                let offered = shared.arena.offered[slot].load(Relaxed);
                let wait = cycle + 1 - offered - hops_after as u64;
                ws.waits.push(wait);
                if shared.classified {
                    ws.class_waits[class].push(wait);
                }
                ws.stats.activity += 1;
                budget -= 1;
                progressed = true;
                continue;
            }
            if hops_after >= shared.hop_limit {
                shared.queues.pop_head(chan, head, &shared.arena.link);
                ws.vc_pops[vc] += 1;
                ws.freed.push(head);
                ws.stats.dropped_ttl += 1;
                ws.stats.departed += 1;
                ws.stats.class_dropped[usize::from(shared.hot_dst == Some(dst as u64))] += 1;
                ws.stats.activity += 1;
                budget -= 1;
                progressed = true;
                continue;
            }
            let packet_vc = shared.arena.vc[slot].load(Relaxed) as u8;
            // Stateless routers answer this identically every cycle
            // the head stays blocked — cache the arc in the packet.
            let next_arc = if shared.stateless {
                let cached = shared.arena.cached_next[slot].load(Relaxed);
                if cached != NONE {
                    Some(cached as usize)
                } else {
                    let computed = shared
                        .router
                        .next_hop_on_vc(node, dst as u64, packet_vc)
                        .and_then(|next| arc_of(shared.g, node, next));
                    if let Some(found) = computed {
                        shared.arena.cached_next[slot].store(found as u32, Relaxed);
                    }
                    computed
                }
            } else {
                shared
                    .router
                    .next_hop_on_vc(node, dst as u64, packet_vc)
                    .and_then(|next| arc_of(shared.g, node, next))
            };
            let Some(next_arc) = next_arc else {
                shared.queues.pop_head(chan, head, &shared.arena.link);
                ws.vc_pops[vc] += 1;
                ws.freed.push(head);
                ws.stats.dropped_unroutable += 1;
                ws.stats.departed += 1;
                ws.stats.class_dropped[usize::from(shared.hot_dst == Some(dst as u64))] += 1;
                ws.stats.activity += 1;
                budget -= 1;
                progressed = true;
                continue;
            };
            let next_vc = shared.dateline.next_class_arc(packet_vc, next_arc);
            let next_chan = next_arc * vcs + next_vc as usize;
            // Boundary credits: committed occupancy plus this cycle's
            // staged arrivals; same-cycle pops become room next cycle.
            let occupied = shared.queues.len[next_chan].load(Relaxed)
                + shared.queues.staged_len[next_chan].load(Relaxed);
            let has_room = occupied < shared.buffers;
            // The one move the class order cannot rank — a top-class
            // packet wrapping again — is never allowed to block (deep
            // dateline buffers): that waiver is what makes the
            // dependency graph acyclic outright, so `Backpressure`
            // with `vcs ≥ 2` provably cannot reach the all-blocked
            // state the deadlock detector looks for. Tail-drop never
            // blocks, so it neither needs nor gets the valve.
            let relief = !has_room
                && shared.policy == ContentionPolicy::Backpressure
                && shared.dateline.needs_relief(packet_vc, next_arc);
            if relief {
                ws.stats.relief += 1;
            }
            if has_room || relief {
                shared.queues.pop_head(chan, head, &shared.arena.link);
                ws.vc_pops[vc] += 1;
                shared.arena.hops[slot].store(hops_after, Relaxed);
                if next_vc > packet_vc {
                    ws.stats.promotions += 1;
                }
                shared.arena.vc[slot].store(next_vc as u32, Relaxed);
                shared.arena.cached_next[slot].store(NONE, Relaxed);
                let staged = shared.queues.staged_len[next_chan].load(Relaxed);
                shared.queues.staged_len[next_chan].store(staged + 1, Relaxed);
                ws.staged.push((next_chan as u32, head));
                ws.stats.activity += 1;
                budget -= 1;
                progressed = true;
            } else {
                match shared.policy {
                    ContentionPolicy::TailDrop => {
                        shared.queues.pop_head(chan, head, &shared.arena.link);
                        ws.vc_pops[vc] += 1;
                        ws.freed.push(head);
                        ws.stats.dropped_full += 1;
                        ws.stats.departed += 1;
                        ws.stats.class_dropped[usize::from(shared.hot_dst == Some(dst as u64))] +=
                            1;
                        ws.stats.activity += 1;
                        budget -= 1;
                        progressed = true;
                    }
                    // Head-of-line block — this class only. With a
                    // stateless router the blocker is fixed, and
                    // under boundary credits its room can only
                    // reappear through a committed pop — so park the
                    // channel on the blocker's waiter list and stop
                    // re-checking it every cycle. (Adaptive routers
                    // may pick a different candidate next cycle:
                    // they stay ready and are re-asked.)
                    ContentionPolicy::Backpressure => {
                        ws.vc_blocked[vc] = true;
                        if shared.stateless {
                            shared.parked[chan].store(1, Relaxed);
                            let first = shared.waiter_head[next_chan].load(Relaxed);
                            shared.waiter_link[chan].store(first, Relaxed);
                            shared.waiter_head[next_chan].store(chan as u32, Relaxed);
                            parked_here += 1;
                        }
                    }
                }
            }
        }
        if !progressed {
            break;
        }
    }
    // Batch this arc's pops (occupancy commits at apply) and settle
    // the node's ready count now — this worker owns it. A channel
    // leaves the ready set by emptying or by parking.
    let mut ready_loss = parked_here;
    for vc in 0..vcs {
        let popped = ws.vc_pops[vc];
        if popped > 0 {
            let chan = arc * vcs + vc;
            ws.pops.push((chan as u32, popped));
            if shared.parked[chan].load(Relaxed) == 0
                && shared.queues.head[chan].load(Relaxed) == NONE
            {
                ready_loss += 1;
            }
        }
    }
    if ready_loss > 0 {
        let ready = shared.node_ready[node as usize].load(Relaxed);
        shared.node_ready[node as usize].store(ready - ready_loss, Relaxed);
    }
}

/// Drain one arc of a multicast run: up to `wavelengths` copies off
/// its VC FIFO heads. A drained copy delivers to the requests at its
/// tree arc's head and **replicates** — one staged child copy per
/// child tree arc, each promoted per its own arc's dateline crossing.
/// Under backpressure the branch is all-or-nothing: it blocks (and
/// parks — trees are static, so the blocker is fixed) until every
/// non-relief child FIFO has room; under tail-drop a full child
/// drops with its entire subtree weight while its siblings proceed.
fn drain_arc_mc(
    shared: &SharedRun,
    trees: &TreeSet,
    arc: usize,
    node: u64,
    cycle: u64,
    ws: &mut WorkerScratch,
) {
    let vcs = shared.vcs;
    let vc_start = cycle as usize % vcs;
    let mut budget = shared.wavelengths;
    let mut parked_here = 0u32;
    ws.vc_blocked[..vcs].fill(false);
    ws.vc_pops[..vcs].fill(0);
    'link: loop {
        let mut progressed = false;
        for offset in 0..vcs {
            if budget == 0 {
                break 'link;
            }
            let vc = (vc_start + offset) % vcs;
            if ws.vc_blocked[vc] {
                continue;
            }
            let chan = arc * vcs + vc;
            if shared.parked[chan].load(Relaxed) != 0 {
                ws.vc_blocked[vc] = true;
                continue;
            }
            let head = shared.queues.head[chan].load(Relaxed);
            if head == NONE {
                ws.vc_blocked[vc] = true;
                continue;
            }
            let slot = head as usize;
            let t = shared.arena.dst[slot].load(Relaxed);
            let hops_after = shared.arena.hops[slot].load(Relaxed) + 1;
            debug_assert_eq!(trees.fabric_arc(t), arc, "copy rode the wrong link");
            if hops_after >= shared.hop_limit {
                // Unreachable for honest trees (depth ≤ diameter), but
                // the budget stays authoritative: the whole subtree
                // retires.
                shared.queues.pop_head(chan, head, &shared.arena.link);
                ws.vc_pops[vc] += 1;
                ws.freed.push(head);
                ws.stats.dropped_ttl += trees.weight(t) as usize;
                ws.stats.departed += trees.weight(t) as usize;
                ws.stats.departed_copies += 1;
                ws.stats.activity += 1;
                budget -= 1;
                progressed = true;
                continue;
            }
            let packet_vc = shared.arena.vc[slot].load(Relaxed) as u8;
            let children = trees.children(t);
            if shared.policy == ContentionPolicy::Backpressure {
                // All-or-nothing branch: find the first child whose
                // FIFO is full and not relief-exempt.
                let blocker = children.iter().find_map(|&child| {
                    let child_arc = trees.fabric_arc(child);
                    let child_vc = shared.dateline.next_class_arc(packet_vc, child_arc);
                    let child_chan = child_arc * vcs + child_vc as usize;
                    let occupied = shared.queues.len[child_chan].load(Relaxed)
                        + shared.queues.staged_len[child_chan].load(Relaxed);
                    (occupied >= shared.buffers
                        && !shared.dateline.needs_relief(packet_vc, child_arc))
                    .then_some(child_chan)
                });
                if let Some(blocking_chan) = blocker {
                    // Head-of-line block, this class only; the tree is
                    // static, so park on the blocker until it pops.
                    ws.vc_blocked[vc] = true;
                    shared.parked[chan].store(1, Relaxed);
                    let first = shared.waiter_head[blocking_chan].load(Relaxed);
                    shared.waiter_link[chan].store(first, Relaxed);
                    shared.waiter_head[blocking_chan].store(chan as u32, Relaxed);
                    parked_here += 1;
                    continue;
                }
            }
            // Commit: the copy leaves this FIFO, delivers its
            // requests, and replicates into its children.
            shared.queues.pop_head(chan, head, &shared.arena.link);
            ws.vc_pops[vc] += 1;
            let offered = shared.arena.offered[slot].load(Relaxed);
            let deliveries = trees.deliveries(t) as usize;
            if deliveries > 0 {
                ws.stats.delivered += deliveries;
                ws.stats.departed += deliveries;
                ws.stats.delivered_hops += deliveries as u64 * hops_after as u64;
                if hops_after > ws.stats.max_hops {
                    ws.stats.max_hops = hops_after;
                }
                let delivered_here = shared.delivered_per_link[arc].load(Relaxed);
                shared.delivered_per_link[arc].store(delivered_here + deliveries as u64, Relaxed);
                let wait = cycle + 1 - offered - hops_after as u64;
                for _ in 0..deliveries {
                    ws.waits.push(wait);
                }
            }
            for &child in children {
                let child_arc = trees.fabric_arc(child);
                let child_vc = shared.dateline.next_class_arc(packet_vc, child_arc);
                let child_chan = child_arc * vcs + child_vc as usize;
                let staged = shared.queues.staged_len[child_chan].load(Relaxed);
                let occupied = shared.queues.len[child_chan].load(Relaxed) + staged;
                if occupied >= shared.buffers {
                    match shared.policy {
                        ContentionPolicy::TailDrop => {
                            // The full child's whole subtree drops;
                            // its siblings still replicate.
                            ws.stats.dropped_full += trees.weight(child) as usize;
                            ws.stats.departed += trees.weight(child) as usize;
                            continue;
                        }
                        // Backpressure screened above: a full child
                        // here is the relief move, admitted past the
                        // cap (deep dateline buffers).
                        ContentionPolicy::Backpressure => ws.stats.relief += 1,
                    }
                }
                if child_vc > packet_vc {
                    ws.stats.promotions += 1;
                }
                shared.queues.staged_len[child_chan].store(staged + 1, Relaxed);
                ws.spawned.push(Spawn {
                    chan: child_chan as u32,
                    tree_arc: child,
                    offered,
                    hops: hops_after,
                    vc: child_vc,
                });
                ws.stats.spawned_copies += 1;
            }
            ws.freed.push(head);
            ws.stats.departed_copies += 1;
            ws.stats.activity += 1;
            budget -= 1;
            progressed = true;
        }
        if !progressed {
            break;
        }
    }
    // Batch pops and settle the node's ready count — same contract as
    // the unicast drain.
    let mut ready_loss = parked_here;
    for vc in 0..vcs {
        let popped = ws.vc_pops[vc];
        if popped > 0 {
            let chan = arc * vcs + vc;
            ws.pops.push((chan as u32, popped));
            if shared.parked[chan].load(Relaxed) == 0
                && shared.queues.head[chan].load(Relaxed) == NONE
            {
                ready_loss += 1;
            }
        }
    }
    if ready_loss > 0 {
        let ready = shared.node_ready[node as usize].load(Relaxed);
        shared.node_ready[node as usize].store(ready - ready_loss, Relaxed);
    }
}

/// The apply step: commit pops, retire emptied nodes from the
/// worklist, merge stats, recycle departures, then land staged
/// arrivals. Per-channel arrival order is the staging worker's drain
/// order (every channel has exactly one staging node), so the outcome
/// is independent of the worker layout.
fn apply(
    shared: &SharedRun,
    main: &mut MainState,
    allocator: &mut ArenaAllocator,
    scratches: &[Mutex<WorkerScratch>],
) -> usize {
    let mut activity = 0usize;
    for cell in scratches {
        let mut ws = cell.lock().expect("apply scratch");
        for &(chan, count) in &ws.pops {
            let chan = chan as usize;
            let len = shared.queues.len[chan].load(Relaxed) - count;
            shared.queues.len[chan].store(len, Relaxed);
            shared.counts[chan].store(len, Relaxed);
            // A committed pop is the one event that can give this
            // channel's upstream blockers room: wake every channel —
            // and every injection source — parked on it. (A waiter
            // that finds the FIFO full again, refilled by this
            // cycle's staged arrivals, simply re-parks on its next
            // attempt.)
            let mut waiter = shared.waiter_head[chan].load(Relaxed);
            shared.waiter_head[chan].store(NONE, Relaxed);
            while waiter != NONE {
                let next = shared.waiter_link[waiter as usize].load(Relaxed);
                shared.parked[waiter as usize].store(0, Relaxed);
                activate(shared, waiter as usize);
                waiter = next;
            }
            let mut source = main.source_waiter_head[chan];
            main.source_waiter_head[chan] = NONE;
            while source != NONE {
                let slot = source as usize;
                // The cycles the scan skipped would each have counted
                // one stall: settle them now.
                main.source_stall_cycles += main.cycle - main.source_parked_at[slot];
                main.source_parked_at[slot] = u64::MAX;
                source = std::mem::replace(&mut main.source_waiter_link[slot], NONE);
            }
        }
        ws.pops.clear();
        for &node in &ws.emptied {
            // Guarded: a wake processed earlier in this same apply may
            // have re-readied the node.
            if shared.node_ready[node as usize].load(Relaxed) == 0 {
                shared.active.remove(node as usize);
            }
        }
        ws.emptied.clear();
        let stats = std::mem::take(&mut ws.stats);
        activity += stats.activity;
        main.delivered += stats.delivered;
        main.in_network -= stats.departed;
        main.in_copies += stats.spawned_copies;
        main.in_copies -= stats.departed_copies;
        main.replicated += stats.spawned_copies as u64;
        main.dropped_full += stats.dropped_full;
        main.dropped_unroutable += stats.dropped_unroutable;
        main.dropped_ttl += stats.dropped_ttl;
        main.delivered_hops += stats.delivered_hops;
        main.max_hops = main.max_hops.max(stats.max_hops);
        main.dateline_promotions += stats.promotions;
        main.dateline_relief += stats.relief;
        for class in 0..2 {
            main.class_delivered[class] += stats.class_delivered[class];
            main.class_dropped[class] += stats.class_dropped[class];
        }
        main.waits.append(&mut ws.waits);
        for class in 0..2 {
            main.class_waits[class].append(&mut ws.class_waits[class]);
        }
        allocator.release_all(ws.freed.drain(..));
    }
    for cell in scratches {
        let mut ws = cell.lock().expect("apply scratch");
        for &(chan, id) in &ws.staged {
            shared.queues.staged_len[chan as usize].store(0, Relaxed);
            push_packet(shared, &mut main.peak, chan as usize, id);
        }
        ws.staged.clear();
        // Replications land after moves: per channel both sequences
        // are the source node's drain order, so the arrival order is a
        // pure function of the cycle state, not the worker layout.
        for spawn in ws.spawned.drain(..) {
            shared.queues.staged_len[spawn.chan as usize].store(0, Relaxed);
            let id = allocator.claim();
            shared
                .arena
                .init(id, spawn.tree_arc, spawn.offered, spawn.vc);
            shared.arena.hops[id as usize].store(spawn.hops, Relaxed);
            push_packet(shared, &mut main.peak, spawn.chan as usize, id);
        }
    }
    activity
}

/// Fold the accumulators into the report.
#[allow(clippy::too_many_arguments)]
fn finish(
    main: &mut MainState,
    delivered_per_link: &[AtomicU64],
    arcs: usize,
    vcs: usize,
    router: &dyn Router,
    offered_per_cycle: f64,
    hot_dst: Option<u64>,
    trees: Option<&TreeSet>,
) -> QueueingReport {
    main.waits.sort_unstable();
    let wait_mean = |waits: &[u64]| {
        if waits.is_empty() {
            0.0
        } else {
            waits.iter().sum::<u64>() as f64 / waits.len() as f64
        }
    };
    let wait_mean_cycles = wait_mean(&main.waits);

    let class_stats = hot_dst.map(|_| {
        let mut build = |class: usize| {
            main.class_waits[class].sort_unstable();
            let waits = &main.class_waits[class];
            ClassStats {
                injected: main.class_injected[class],
                delivered: main.class_delivered[class],
                dropped: main.class_dropped[class],
                wait_mean_cycles: wait_mean(waits),
                wait_p50_cycles: percentile_u64(waits, 0.50),
                wait_p99_cycles: percentile_u64(waits, 0.99),
                wait_max_cycles: waits.last().copied().unwrap_or(0),
            }
        };
        ClassBreakdown {
            hot: build(1),
            background: build(0),
        }
    });

    // Collapse per-channel peaks into the two views the report
    // carries: deepest FIFO per link, deepest FIFO per class.
    let peak = &main.peak;
    let peak_occupancy: Vec<u32> = (0..arcs)
        .map(|arc| (0..vcs).map(|vc| peak[arc * vcs + vc]).max().unwrap_or(0))
        .collect();
    let vc_peak_occupancy: Vec<u32> = (0..vcs)
        .map(|vc| (0..arcs).map(|arc| peak[arc * vcs + vc]).max().unwrap_or(0))
        .collect();

    QueueingReport {
        router: router.name(),
        offered_per_cycle,
        cycles: main.cycle,
        injected: main.injected,
        delivered: main.delivered,
        dropped_full: main.dropped_full,
        dropped_unroutable: main.dropped_unroutable,
        dropped_ttl: main.dropped_ttl,
        in_flight: main.in_network,
        deadlocked: main.deadlocked,
        vcs,
        dateline_promotions: main.dateline_promotions,
        dateline_relief: main.dateline_relief,
        source_stall_cycles: main.source_stall_cycles,
        delivered_hops: main.delivered_hops,
        max_hops: main.max_hops,
        wait_mean_cycles,
        wait_p50_cycles: percentile_u64(&main.waits, 0.50),
        wait_p99_cycles: percentile_u64(&main.waits, 0.99),
        wait_max_cycles: main.waits.last().copied().unwrap_or(0),
        max_peak_occupancy: peak_occupancy.iter().copied().max().unwrap_or(0),
        peak_occupancy,
        vc_peak_occupancy,
        delivered_per_link: delivered_per_link
            .iter()
            .map(|count| count.load(Relaxed))
            .collect(),
        multicast_groups: main.groups_injected,
        replicated_copies: main.replicated,
        multicast_forwarding_index: trees.map_or(0, TreeSet::forwarding_index),
        class_stats,
    }
}
