//! The cycle loop: streamed decode, sharded injection, sharded drain,
//! apply — the engine's hot path, rebuilt for million-node fabrics.
//!
//! # Cycle anatomy
//!
//! 1. **Decode** (sequential): the offer clock admits this cycle's
//!    slice of the workload. Pairs are pulled from the stream in index
//!    order — regenerated chunk-by-chunk for a [`WorkloadSource`],
//!    read in place for a slice — and appended to per-source pending
//!    FIFOs in the entry slab. A source going nonempty is listed with
//!    its owning inject worker.
//! 2. **Inject** (sharded by *source* ownership): each worker walks
//!    its listed sources, admitting every pending head it can. A
//!    source's injection touches only its own out-arc channels (the
//!    first hop originates at the source, and the room check reads
//!    only that channel's committed `len`, which only this source's
//!    pushes change within the phase), so the decisions are
//!    per-source independent and the shard layout is unobservable.
//!    Packet ids come from per-worker pools refilled in batches from
//!    the shared allocator — ids are never observable in a report, so
//!    their interleaving doesn't matter. The one cross-shard touch is
//!    the downstream node's ready count, which is why [`activate`]
//!    uses `fetch_add`. Adaptive (non-stateless) routers read the
//!    congestion scoreboard at injection, so *their* scan order is
//!    observable: those runs list every source with worker 0 and the
//!    main thread injects them alone, in listing order — sequential,
//!    hence still independent of the thread count. Multicast roots
//!    also inject sequentially (during the decode slot), preserving
//!    the rotating-scan semantics the frozen reference engine pins.
//! 3. **Drain** (sharded by *downstream-node* ownership): every node
//!    with any ready inbound channel drains its in-arcs — up to
//!    `wavelengths` packets per arc, round-robin over VC classes,
//!    both starting offsets rotating per cycle. Moves are staged;
//!    pops are batched. Every buffer a node's drain writes belongs to
//!    that node's *own* out-arcs, so ownership is disjoint by
//!    construction — no locks, no CAS loops in the loop. Shard
//!    boundaries are rounded to 64-node multiples so workers never
//!    share a worklist bitset word, and contiguous node ranges keep
//!    the de Bruijn arc structure (node `v` feeds `dv + c mod n`)
//!    cache-local per worker.
//! 4. **Apply** (sequential): batched pop counts commit, parked
//!    channels and sources wake, emptied nodes leave the worklist,
//!    staged arrivals join their FIFOs (per-channel arrival order is
//!    the source node's drain order, so it cannot depend on the
//!    worker layout), stats merge in worker order, and waits fold
//!    into dense histograms (order-free by construction).
//!
//! # Boundary credits — the determinism contract
//!
//! A room check reads `len + staged_len`: the occupancy committed at
//! the last apply plus this cycle's staged arrivals. Pops made *this*
//! cycle are not visible, so a slot freed in cycle `t` is claimable in
//! cycle `t + 1`. The pre-arena engine let later-scanned links see
//! earlier pops, which made outcomes depend on scan order — harmless
//! sequentially, fatal for deterministic parallelism. With boundary
//! credits, a cycle's outcome is a pure function of its start state,
//! so both sharded phases may be split any way at all: the report is
//! byte-identical at 1, 2, or 8 threads (pinned by proptest).
//! Deliveries, drops and relief moves never need room, so progress
//! (and deadlock detection) is unaffected.
//!
//! # Memory model
//!
//! Nothing here is sized by the offered load. The workload streams
//! (one regenerated chunk resident at a time), pending entries and
//! packet state live in lazily-chunked slabs sized by their live
//! watermark, waits fold into histograms, and packet ids recycle
//! LIFO. A ten-million-packet run on `B(2,20)` is resident-bounded by
//! its congestion peak — the fixed per-channel and per-node arrays —
//! not by the 160 MB the old materialize-then-slab path would take.
//!
//! # The worklist
//!
//! `active` is a dense bitset over nodes with `node_ready[v] > 0`
//! (ready channels into `v`). Injection and apply set bits as they
//! push; a drain that empties a node queues it for a clear at the
//! next apply. An idle region of the fabric costs one word load per
//! 64 nodes per cycle — which is what makes sparse and hotspot
//! workloads cheap on `B(2,20)`'s two million links.
//!
//! # Stateless-router hop caching
//!
//! Under saturation most drain attempts re-ask the router the exact
//! question it answered last cycle (the head hasn't moved). When
//! [`Router::hops_are_stateless`] holds, the computed next arc is
//! cached in the packet and invalidated on movement, so a blocked head
//! costs a word load, not a routing query. Injection keeps the same
//! cache keyed by the pending *entry* id (invalidated when the head is
//! consumed — entry ids recycle). Adaptive routers opt out and are
//! re-queried every attempt, reading congestion as of the last phase
//! boundary — stable within a cycle, hence still deterministic.

use super::arena::{ArenaAllocator, ChannelQueues, EntryArena, PacketArena, NONE};
use super::dynamics::{Crossing, StrandedPolicy, Timeline};
use super::{arc_of, ContentionPolicy, QueueingEngine, TreeSet};
use crate::traffic::report::{ClassBreakdown, ClassStats, QueueingReport, WaitHistogram};
use crate::traffic::workload::WorkloadSource;
use otis_core::{Dateline, RouteRepair, RouteSnapshot, Router};
use otis_digraph::Digraph;
use otis_util::DenseBitset;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering::Relaxed};
use std::sync::{Barrier, Mutex};

/// Ids a worker pulls from the shared allocator per refill: one lock
/// acquisition per `ID_BATCH` injections, not per packet.
const ID_BATCH: usize = 128;

/// Fade penalty published for a dead beam: large enough that an
/// adaptive router's congestion-plus-stretch score never prefers it
/// over any live candidate, small enough that saturating arithmetic
/// keeps ordering among multiple dead options.
const DEAD_LINK_PENALTY: u32 = 1 << 20;

/// One link death's time-to-reroute watch: the cycle traffic first
/// committed onto an *alternative* out-link of the node whose beam
/// died. Pre-built from the compiled timeline (one per scheduled
/// death), armed implicitly by `cycle >= at_cycle`.
struct Watch {
    /// The node whose out-link died.
    node: u32,
    /// The dead arc — pushes onto it never resolve the watch.
    arc: u32,
    /// The death's event cycle.
    at_cycle: u64,
    /// First resolving cycle; `u64::MAX` until a packet commits onto
    /// another out-arc of `node` at or after `at_cycle`.
    resolved: AtomicU64,
    /// 1 iff some packet demonstrably wanted the dead beam: queued
    /// FIFO content stranded at the death, or a dead-target requery
    /// that hit this arc afterwards. Splits an unresolved watch into
    /// `reroute_unresolved` (demand existed, no alternative committed)
    /// vs `reroute_no_demand` (nothing ever asked for the link).
    demand: AtomicU32,
}

/// What a run simulates: unicast `(src, dst)` pairs — materialized or
/// streamed — or multicast delivery trees with in-fabric replication.
/// The multicast variant flips the meaning of the report's packet
/// counters to **destination leaves** (`injected_leaves = delivered +
/// dropped + in_flight`), while everything structural — buffers, VC
/// classes, backpressure, the deterministic sharded phases — is
/// shared. `Streamed` and `Unicast` are *the same run* fed two ways:
/// the decode step is the only consumer of either, so the reports are
/// byte-identical (pinned by the differential battery).
pub(super) enum Work<'a> {
    Unicast(&'a [(u64, u64)]),
    Streamed(&'a WorkloadSource),
    Multicast(&'a TreeSet),
}

/// Where decode reads pairs: a materialized slice, or a chunked
/// stream regenerating one `WorkloadSource::CHUNK` at a time. Decode
/// consumes indices in ascending order, so the streamed feed holds
/// exactly one resident chunk and never regenerates one twice.
enum PairFeed<'a> {
    Slice(&'a [(u64, u64)]),
    Chunks {
        source: &'a WorkloadSource,
        buf: Vec<(u64, u64)>,
        resident: usize,
    },
}

impl PairFeed<'_> {
    fn pair(&mut self, index: usize) -> (u64, u64) {
        match self {
            PairFeed::Slice(pairs) => pairs[index],
            PairFeed::Chunks {
                source,
                buf,
                resident,
            } => {
                let chunk = index / WorkloadSource::CHUNK;
                if *resident != chunk {
                    source.fill_chunk(chunk, buf);
                    *resident = chunk;
                }
                buf[index - chunk * WorkloadSource::CHUNK]
            }
        }
    }
}

/// The decode step's state: the pair feed, the offer-clock cursor,
/// the pending-entry id supply, and the per-worker staging lists for
/// sources that just went nonempty.
struct Decoder<'a> {
    feed: PairFeed<'a>,
    total: usize,
    next: usize,
    entry_ids: ArenaAllocator,
    newly_listed: Vec<Vec<u32>>,
}

/// A staged replication: one child copy to materialize at the apply
/// step (multicast spawns claim ids from the sequential phases'
/// allocator access, so drain workers stage spawns instead of
/// claiming). Room was already checked and `staged_len` bumped by the
/// staging worker.
struct Spawn {
    chan: u32,
    tree_arc: u32,
    offered: u64,
    hops: u32,
    vc: u8,
}

/// Everything a worker may touch: immutable context plus shared slabs
/// whose writes are disjoint by ownership (injection state by the
/// *source* node's inject owner, drain state by the *downstream*
/// node's drain owner, both resolved per phase).
struct SharedRun<'a> {
    g: &'a Digraph,
    router: &'a dyn Router,
    dateline: &'a Dateline,
    /// Reverse CSR: `in_arcs[in_offsets[v]..in_offsets[v + 1]]` are
    /// the arc ids targeting `v`, ascending.
    in_offsets: &'a [u32],
    in_arcs: &'a [u32],
    vcs: usize,
    buffers: u32,
    wavelengths: usize,
    policy: ContentionPolicy,
    hop_limit: u32,
    /// Router promised pure hops — enable the per-packet cache.
    /// Multicast runs are always stateless: copies follow prebuilt
    /// trees, never the live router.
    stateless: bool,
    /// The flattened delivery trees of a multicast run.
    trees: Option<&'a TreeSet>,
    hot_dst: Option<u64>,
    classified: bool,
    arena: &'a PacketArena,
    /// The packet id supply. Workers touch it once per [`ID_BATCH`]
    /// refill; the sequential phases lock it for the phase.
    allocator: &'a Mutex<ArenaAllocator>,
    /// Pending (decoded, not yet injected) workload entries.
    entries: &'a EntryArena,
    queues: &'a ChannelQueues,
    /// Head/tail of each source's pending-entry FIFO. Written by the
    /// decode step (main) and the source's inject owner — phases that
    /// never overlap.
    src_head: &'a [AtomicU32],
    src_tail: &'a [AtomicU32],
    /// 1 iff the source sits on some worker's inject list — the
    /// listing invariant that keeps a source from being scanned twice.
    src_listed: &'a [AtomicU32],
    /// Stateless-router injection cache: the pending entry each
    /// source's cached first-hop arc was computed for, and that arc.
    /// A backpressured source re-offers the same head every cycle it
    /// stalls; this makes the re-offer a compare, not a router query.
    /// Keyed by entry id and invalidated on every head consume
    /// (entry ids recycle, so a stale key could alias).
    inject_cached_entry: &'a [AtomicU32],
    inject_cached_arc: &'a [AtomicU32],
    /// Stateless-router source parking: the cycle each source stalled
    /// and parked (`u64::MAX` = not parked). A parked source is
    /// delisted until its first-hop channel commits a pop; the
    /// skipped stall cycles are settled in bulk at wake (and at run
    /// end), so the counter reads exactly as if the source had been
    /// re-scanned every cycle.
    source_parked_at: &'a [AtomicU64],
    /// Intrusive per-channel lists of parked sources. Only a
    /// channel's own source can park on it, so each list has one
    /// writer per phase; the apply step drains them on committed
    /// pops.
    source_waiter_head: &'a [AtomicU32],
    source_waiter_link: &'a [AtomicU32],
    /// Per-channel occupancy peaks. Each channel has one writer per
    /// phase (its source's inject owner, or the main thread).
    peak: &'a [AtomicU32],
    /// Inject-shard boundaries over sources, `threads + 1` entries;
    /// worker `w` owns sources `[shard_bounds[w], shard_bounds[w+1])`.
    shard_bounds: &'a [usize],
    /// Sharded injection is on: unicast work under a stateless
    /// router. Adaptive routers and multicast roots inject
    /// sequentially (see the module docs), listing with worker 0.
    parallel_inject: bool,
    /// Inbound channels of `v` that are *ready*: nonempty and not
    /// parked. The worklist counts these, not raw packets — a parked
    /// channel costs nothing until its blocker commits a pop.
    node_ready: &'a [AtomicU32],
    /// The worklist: nodes with `node_ready > 0`.
    active: &'a DenseBitset,
    /// 1 iff the channel's head is blocked on a full downstream FIFO
    /// under a *stateless* router. Under boundary credits room can
    /// only reappear when the blocker commits a pop, so a parked
    /// channel is simply skipped until that pop wakes it — the
    /// event-driven half of the worklist. (Adaptive routers may pick
    /// a different candidate each cycle, so they never park.)
    parked: &'a [AtomicU32],
    /// Intrusive single-linked waiter lists: `waiter_head[c]` is the
    /// first channel parked on `c`'s room, threaded through
    /// `waiter_link`. Written only by the owner of `c`'s source node
    /// (every channel that can block on `c` drains at that same
    /// node); drained by the apply step on each committed pop.
    waiter_head: &'a [AtomicU32],
    waiter_link: &'a [AtomicU32],
    delivered_per_link: &'a [AtomicU64],
    /// The engine's occupancy scoreboard (what adaptive routers read);
    /// updated only at phase boundaries — and, during sharded
    /// injection, by each channel's single owner while no one reads
    /// it — hence cycle-stable.
    counts: &'a [AtomicU32],
    /// Per-arc drain capacity under a dynamics timeline (`None` on a
    /// static fabric: every arc drains `wavelengths`). Written only on
    /// the sequential slot when events fire; the phase barrier
    /// publishes the stores.
    capacity: Option<&'a [AtomicU32]>,
    /// Per-arc fade penalty published to the adaptive congestion view
    /// (the engine owns the slab so [`super::LinkOccupancy`] can read
    /// it); written on the sequential slot alongside `capacity`.
    fade_penalty: &'a [AtomicU32],
    /// Time-to-reroute watches, one per scheduled link death in
    /// timeline order. Empty on static runs.
    watches: &'a [Watch],
    /// What happens to packets a link death catches mid-queue.
    stranded_policy: StrandedPolicy,
    /// The repairing router behind the epoch-snapshot fast path, when
    /// legal: snapshot reads enabled on the engine, stateless hops
    /// (adaptive scoring reads congestion, not the table), unicast
    /// work, and a published snapshot to read. `None` sends every
    /// next-hop query through the router's own (locked) path.
    repair: Option<&'a dyn RouteRepair>,
    cycle: AtomicU64,
    done: AtomicBool,
}

impl SharedRun<'_> {
    /// The inject worker that owns `src`'s listing.
    fn list_owner(&self, src: usize) -> usize {
        if !self.parallel_inject {
            return 0;
        }
        self.shard_bounds.partition_point(|&bound| bound <= src) - 1
    }

    /// How many packets `arc` may drain this cycle.
    fn arc_budget(&self, arc: usize) -> usize {
        match self.capacity {
            // ORDERING: Relaxed — capacity moves only on the
            // sequential slot; phase reads see a cycle-stable value
            // through the barrier.
            Some(caps) => caps[arc].load(Relaxed) as usize,
            None => self.wavelengths,
        }
    }

    /// Whether `arc` has faded to zero capacity (a dead beam).
    fn arc_dead(&self, arc: usize) -> bool {
        // ORDERING: Relaxed — capacity moves only on the sequential
        // slot; phase reads see a cycle-stable value through the
        // barrier.
        matches!(self.capacity, Some(caps) if caps[arc].load(Relaxed) == 0)
    }

    /// One next-hop query on the phase hot path: through the worker's
    /// cached epoch snapshot when the run routes snapshot reads
    /// (lock-free, byte-identical to the router's table — repairs
    /// republish only on the sequential slot), else the router itself.
    #[inline]
    fn route_query(
        &self,
        snap: &Option<RouteSnapshot>,
        current: u64,
        dst: u64,
        vc: u8,
    ) -> Option<u64> {
        match snap {
            Some(snapshot) => snapshot.next_hop(current, dst),
            None => self.router.next_hop_on_vc(current, dst, vc),
        }
    }
}

/// Per-worker buffers, reused across cycles. Handed to the apply step
/// through a mutex that is only ever contended at phase boundaries.
struct WorkerScratch {
    /// Listed sources this worker injects for, in listing order.
    sources: Vec<u32>,
    /// This worker's packet id pool, refilled from the shared
    /// allocator in [`ID_BATCH`]es.
    ids: Vec<u32>,
    /// Pending entries consumed this cycle, for recycling at apply.
    freed_entries: Vec<u32>,
    /// Staged arrivals `(channel, packet)`, in drain order.
    staged: Vec<(u32, u32)>,
    /// Staged replications, in drain order. Per channel the apply
    /// lands moves before spawns; both sequences are the channel's
    /// source-node drain order, so arrival order stays independent of
    /// the worker layout.
    spawned: Vec<Spawn>,
    /// Batched pop counts `(channel, count)`.
    pops: Vec<(u32, u32)>,
    /// Departed packet ids (delivered or dropped), for recycling.
    freed: Vec<u32>,
    /// Nodes whose pending count hit zero.
    emptied: Vec<u32>,
    waits: Vec<u64>,
    class_waits: [Vec<u64>; 2],
    /// Packets `(channel, packet)` whose router answer pinned them to
    /// a dead beam, in drain order; the apply step resolves them per
    /// the stranded policy.
    stranded: Vec<(u32, u32)>,
    vc_blocked: Vec<bool>,
    vc_pops: Vec<u32>,
    /// The route snapshot this worker's inject and drain queries ride
    /// (see [`SharedRun::route_query`]), re-fetched at the top of each
    /// inject phase when the published epoch moved. `None` when the
    /// run does not route snapshot reads.
    snapshot: Option<RouteSnapshot>,
    /// Epoch of the cached snapshot (0 = nothing fetched yet).
    snapshot_epoch_seen: u64,
    stats: DrainStats,
}

impl WorkerScratch {
    fn new(vcs: usize) -> Self {
        WorkerScratch {
            sources: Vec::new(),
            ids: Vec::new(),
            freed_entries: Vec::new(),
            staged: Vec::new(),
            spawned: Vec::new(),
            pops: Vec::new(),
            freed: Vec::new(),
            emptied: Vec::new(),
            waits: Vec::new(),
            class_waits: [Vec::new(), Vec::new()],
            stranded: Vec::new(),
            vc_blocked: vec![false; vcs],
            vc_pops: vec![0; vcs],
            snapshot: None,
            snapshot_epoch_seen: 0,
            stats: DrainStats::default(),
        }
    }
}

/// One cycle's counter deltas from a worker's inject and drain
/// phases, merged (and reset) at apply.
#[derive(Default)]
struct DrainStats {
    activity: usize,
    /// Workload entries consumed at injection (admitted, delivered at
    /// the source, or dropped there) — the unicast pending decrement.
    injected: usize,
    /// Packets that physically entered the network this cycle.
    entered: usize,
    delivered: usize,
    /// Leaf units that left the network (delivered + dropped). For
    /// unicast one packet is one leaf; for multicast a dropped copy
    /// departs with its whole subtree weight.
    departed: usize,
    /// Arena copies that left the network (`freed` entries).
    departed_copies: usize,
    /// Child copies staged at tree branches this phase.
    spawned_copies: usize,
    dropped_full: usize,
    dropped_unroutable: usize,
    dropped_ttl: usize,
    delivered_hops: u64,
    max_hops: u32,
    promotions: u64,
    relief: u64,
    source_stalls: u64,
    class_injected: [usize; 2],
    class_delivered: [usize; 2],
    class_dropped: [usize; 2],
}

/// Main-thread run accumulators.
struct MainState {
    /// Multicast only: per-root group queues and the rotating-scan
    /// id list. Unicast sources live in the shared entry slab.
    sources: Vec<VecDeque<usize>>,
    source_ids: Vec<usize>,
    pending: usize,
    /// Leaf units buffered in the fabric (unicast: packets).
    in_network: usize,
    /// Live arena copies (multicast replication makes this differ
    /// from `in_network`; unicast keeps them equal).
    in_copies: usize,
    /// Multicast groups that completed injection.
    groups_injected: usize,
    /// Child copies spawned at tree branches.
    replicated: u64,
    injected: usize,
    delivered: usize,
    dropped_full: usize,
    dropped_unroutable: usize,
    dropped_ttl: usize,
    delivered_hops: u64,
    max_hops: u32,
    waits: WaitHistogram,
    class_injected: [usize; 2],
    class_delivered: [usize; 2],
    class_dropped: [usize; 2],
    class_waits: [WaitHistogram; 2],
    dateline_promotions: u64,
    dateline_relief: u64,
    source_stall_cycles: u64,
    /// Sources woken by this apply's pops, to relist with their
    /// inject owners.
    woken: Vec<u32>,
    /// Stranded packets `(packet, node)` awaiting re-placement under
    /// [`StrandedPolicy::Reinject`], FIFO.
    backlog: VecDeque<(u32, u32)>,
    dropped_stranded: usize,
    stranded_reinjected: u64,
    link_down_events: u64,
    link_up_events: u64,
    capacity_events: u64,
    repair_runs_patched: Vec<u64>,
    repair_rows_patched: u64,
    /// The last snapshot epoch the run observed from the repairing
    /// router, seeded before cycle 0. Movement after a repair hook
    /// call means the router republished its snapshot.
    last_snapshot_epoch: u64,
    /// Snapshots the router published during this run (counted by
    /// epoch movement — a no-op event patches nothing and republishes
    /// nothing).
    snapshot_publications: u64,
    /// Total compressed-table runs across those publications: the
    /// itemized cost of rebuilding the immutable CSR view.
    snapshot_runs_published: u64,
    deadlocked: bool,
    cycle: u64,
}

/// How many workers a run uses: an explicit
/// `QueueConfig::drain_threads`, else 1 below 4096 nodes (sharding
/// overhead beats the win on small fabrics) and the hardware
/// parallelism above — capped at 8 through `B(2,17)`, 16 from 2^18
/// nodes up, where the shards are wide enough to feed more cores.
pub(super) fn resolve_threads(drain_threads: usize, n: usize) -> usize {
    let threads = if drain_threads > 0 {
        drain_threads
    } else if n < 4096 {
        1
    } else {
        let cap = if n >= (1 << 18) { 16 } else { 8 };
        std::thread::available_parallelism()
            .map_or(1, |p| p.get())
            .min(cap)
    };
    threads.clamp(1, n.max(1))
}

/// Contiguous node shards, `threads + 1` boundaries. Interior
/// boundaries round up to 64-node multiples so no two workers share a
/// worklist bitset word (or the cache line under it), and each shard
/// is a contiguous run of the de Bruijn node space — node `v`'s
/// out-arcs target the contiguous window `d·v .. d·v + d (mod n)`, so
/// a contiguous shard's working set is a few contiguous windows.
fn shard_bounds(n: usize, threads: usize) -> Vec<usize> {
    (0..=threads)
        .map(|w| {
            if w == threads {
                n
            } else {
                ((n * w / threads + 63) & !63).min(n)
            }
        })
        .collect()
}

pub(super) fn execute(
    engine: &QueueingEngine,
    router: &dyn Router,
    work: Work<'_>,
    offered_per_cycle: f64,
    hot_dst: Option<u64>,
) -> QueueingReport {
    assert!(
        offered_per_cycle > 0.0,
        "offered load must be positive, got {offered_per_cycle}"
    );
    let g = engine.digraph();
    let n = g.node_count() as u64;
    assert_eq!(
        router.node_count(),
        n,
        "router covers {} nodes but the fabric has {n}",
        router.node_count()
    );
    let config = *engine.config();
    let arcs = g.arc_count();
    let vcs = config.vcs;
    let channels = arcs * vcs;
    let hop_limit = config.hop_limit.unwrap_or_else(|| (2 * n).max(64) as u32);
    let threads = resolve_threads(config.drain_threads, n as usize);

    // ORDERING: the whole run loop is Relaxed by design. Ordering
    // between phases (decode → inject → drain → apply) comes from
    // `Barrier::wait()`, whose synchronizes-with edge sequences every
    // write of one phase before every read of the next; within a
    // phase, each atomic word has a single writer (sharded by source
    // node for inject, by downstream node for drain, the main thread
    // for decode/apply), so no intra-phase read races a write it could
    // order against. The individual sites below carry notes only where
    // the argument is not this standard one. The scoreboard reset here
    // happens before any thread is spawned.
    let counts = engine.counts();
    for count in counts.iter() {
        count.store(0, Relaxed);
    }

    // Injection items (pairs or groups) and the arena bound: a unicast
    // run never holds more copies than packets; a multicast run never
    // holds more copies than tree arcs (each arc is crossed once).
    let (feed, trees) = match work {
        Work::Unicast(pairs) => (PairFeed::Slice(pairs), None),
        Work::Streamed(source) => (
            PairFeed::Chunks {
                source,
                buf: Vec::new(),
                resident: usize::MAX,
            },
            None,
        ),
        Work::Multicast(set) => {
            assert!(hot_dst.is_none(), "multicast runs are unclassified");
            (PairFeed::Slice(&[]), Some(set))
        }
    };
    let (items, copy_bound) = match (&feed, trees) {
        (_, Some(set)) => (set.group_count(), set.arc_count()),
        (PairFeed::Slice(pairs), None) => (pairs.len(), pairs.len()),
        (PairFeed::Chunks { source, .. }, None) => (source.len(), source.len()),
    };
    // Headroom for ids parked in worker pools: live packets never
    // exceed `copy_bound`, but up to `threads · ID_BATCH` claimed ids
    // may sit idle in pools — those must not trip the overflow assert.
    let capacity = copy_bound + threads * ID_BATCH;

    let arena = PacketArena::with_capacity(capacity);
    let allocator = Mutex::new(ArenaAllocator::new(capacity));
    let entries = EntryArena::with_capacity(if trees.is_some() { 0 } else { items });
    let queues = ChannelQueues::new(channels);
    let node_ready: Vec<AtomicU32> = (0..n as usize).map(|_| AtomicU32::new(0)).collect();
    let active = DenseBitset::new(n as usize);
    let zeros = |len: usize| -> Vec<AtomicU32> { (0..len).map(|_| AtomicU32::new(0)).collect() };
    let nones = |len: usize| -> Vec<AtomicU32> { (0..len).map(|_| AtomicU32::new(NONE)).collect() };
    let parked = zeros(channels);
    let waiter_head = nones(channels);
    let waiter_link = nones(channels);
    let src_head = nones(n as usize);
    let src_tail = nones(n as usize);
    let src_listed = zeros(n as usize);
    let inject_cached_entry = nones(n as usize);
    let inject_cached_arc = zeros(n as usize);
    let source_parked_at: Vec<AtomicU64> =
        (0..n as usize).map(|_| AtomicU64::new(u64::MAX)).collect();
    let source_waiter_head = nones(channels);
    let source_waiter_link = nones(n as usize);
    let peak = zeros(channels);
    let delivered_per_link: Vec<AtomicU64> = (0..arcs).map(|_| AtomicU64::new(0)).collect();
    let bounds = shard_bounds(n as usize, threads);
    let stateless = trees.is_some() || router.hops_are_stateless();

    // The epoch-snapshot fast path: drain/inject next-hop queries ride
    // an immutable snapshot the repairing router publishes (refreshed
    // per worker per cycle, only when the epoch moved) instead of
    // taking the router's read lock on every query. Legal only for
    // stateless hops over unicast work — adaptive routers score
    // congestion, not the raw table, and multicast never queries the
    // router mid-run — and only when the router actually publishes.
    let repair: Option<&dyn RouteRepair> =
        (engine.snapshot_reads() && stateless && trees.is_none())
            .then(|| router.as_repair())
            .flatten()
            .filter(|repair| repair.published_snapshot().is_some());

    // Link dynamics: the timeline was compiled once at `set_dynamics`;
    // seed every arc's capacity at full and open one time-to-reroute
    // watch per scheduled death. A run without dynamics keeps
    // `capacity: None` and zero watches, so none of the per-packet
    // gates below ever fire and the static byte-for-byte behaviour is
    // untouched.
    let timeline: Option<&Timeline> = engine.dynamics().map(|(_, timeline)| timeline);
    let full_cap = u32::try_from(config.wavelengths).unwrap_or(u32::MAX);
    let capacity: Option<Vec<AtomicU32>> =
        timeline.map(|_| (0..arcs).map(|_| AtomicU32::new(full_cap)).collect());
    let watches: Vec<Watch> = timeline.map_or_else(Vec::new, |timeline| {
        timeline
            .transitions
            .iter()
            .filter(|tr| tr.crossing == Crossing::Death)
            .map(|tr| Watch {
                node: g.arc_source(tr.arc as usize),
                arc: tr.arc,
                at_cycle: tr.cycle,
                resolved: AtomicU64::new(u64::MAX),
                demand: AtomicU32::new(0),
            })
            .collect()
    });
    let fade_penalty = engine.fade_penalty();
    for penalty in fade_penalty.iter() {
        penalty.store(0, Relaxed);
    }

    let shared = SharedRun {
        g,
        router,
        dateline: engine.dateline_ref(),
        in_offsets: engine.in_offsets(),
        in_arcs: engine.in_arcs(),
        vcs,
        buffers: config.buffers as u32,
        wavelengths: config.wavelengths,
        policy: config.policy,
        hop_limit,
        stateless,
        trees,
        hot_dst,
        classified: hot_dst.is_some(),
        arena: &arena,
        allocator: &allocator,
        entries: &entries,
        queues: &queues,
        src_head: &src_head,
        src_tail: &src_tail,
        src_listed: &src_listed,
        inject_cached_entry: &inject_cached_entry,
        inject_cached_arc: &inject_cached_arc,
        source_parked_at: &source_parked_at,
        source_waiter_head: &source_waiter_head,
        source_waiter_link: &source_waiter_link,
        peak: &peak,
        shard_bounds: &bounds,
        parallel_inject: trees.is_none() && stateless,
        node_ready: &node_ready,
        active: &active,
        parked: &parked,
        waiter_head: &waiter_head,
        waiter_link: &waiter_link,
        delivered_per_link: &delivered_per_link,
        counts,
        capacity: capacity.as_deref(),
        fade_penalty,
        watches: &watches,
        stranded_policy: engine.stranded_policy(),
        repair,
        cycle: AtomicU64::new(0),
        done: AtomicBool::new(false),
    };

    // Multicast group queues, root order within each root. Unicast
    // work needs no up-front distribution: the decode step streams
    // pairs into the entry slab as their offer cycles arrive.
    let mut sources: Vec<VecDeque<usize>> = Vec::new();
    if let Some(set) = trees {
        sources = vec![VecDeque::new(); n as usize];
        for group in 0..set.group_count() {
            let root = set.group_root(group);
            assert!(
                root < n,
                "group root {root} is not a fabric node (fabric has {n})"
            );
            sources[root as usize].push_back(group);
        }
    }
    let source_ids: Vec<usize> = (0..sources.len())
        .filter(|&src| !sources[src].is_empty())
        .collect();

    let mut main = MainState {
        sources,
        source_ids,
        pending: items,
        in_network: 0,
        in_copies: 0,
        groups_injected: 0,
        replicated: 0,
        injected: 0,
        delivered: 0,
        dropped_full: 0,
        dropped_unroutable: 0,
        dropped_ttl: 0,
        delivered_hops: 0,
        max_hops: 0,
        waits: WaitHistogram::default(),
        class_injected: [0; 2],
        class_delivered: [0; 2],
        class_dropped: [0; 2],
        class_waits: [WaitHistogram::default(), WaitHistogram::default()],
        dateline_promotions: 0,
        dateline_relief: 0,
        source_stall_cycles: 0,
        woken: Vec::new(),
        backlog: VecDeque::new(),
        dropped_stranded: 0,
        stranded_reinjected: 0,
        link_down_events: 0,
        link_up_events: 0,
        capacity_events: 0,
        repair_runs_patched: Vec::new(),
        repair_rows_patched: 0,
        // Publication accounting reads the router directly (not the
        // gated `repair`), so the oracle mode — snapshot reads off —
        // reports byte-identically to the fast path.
        last_snapshot_epoch: router.as_repair().map_or(0, |r| r.snapshot_epoch()),
        snapshot_publications: 0,
        snapshot_runs_published: 0,
        deadlocked: false,
        cycle: 0,
    };

    let mut dec = Decoder {
        feed,
        total: if trees.is_some() { 0 } else { items },
        next: 0,
        entry_ids: ArenaAllocator::new(if trees.is_some() { 0 } else { items }),
        newly_listed: vec![Vec::new(); threads],
    };

    let scratches: Vec<Mutex<WorkerScratch>> = (0..threads)
        .map(|_| Mutex::new(WorkerScratch::new(vcs)))
        .collect();
    let barrier = Barrier::new(threads);

    std::thread::scope(|scope| {
        for (w, scratch) in scratches.iter().enumerate().skip(1) {
            let shared = &shared;
            let barrier = &barrier;
            let range = bounds[w]..bounds[w + 1];
            scope.spawn(move || loop {
                // ORDERING: the sequential→inject phase barrier —
                // pairs with the main thread's wait after its cycle
                // store; the synchronizes-with edge publishes `cycle`,
                // `done`, and every sequential-slot write (dynamics
                // capacity stores, stranding, backlog placement).
                barrier.wait();
                if shared.done.load(Relaxed) {
                    break;
                }
                let cycle = shared.cycle.load(Relaxed);
                {
                    let mut ws = scratch.lock().expect("inject scratch");
                    inject_list(shared, &mut ws, cycle);
                }
                // ORDERING: the inject→drain phase barrier — publishes
                // every staged push so drain's room reads
                // (`len + staged_len`) are exact boundary credits.
                barrier.wait();
                {
                    let mut ws = scratch.lock().expect("drain scratch");
                    drain_range(shared, range.clone(), cycle, &mut ws);
                }
                // ORDERING: the drain→apply phase barrier — publishes
                // committed pops and stores to the main thread's
                // sequential apply slot.
                barrier.wait();
            });
        }
        let mut event_cursor = 0usize;
        loop {
            let horizon = main.cycle >= config.max_cycles;
            if (main.pending == 0 && main.in_network == 0) || horizon || main.deadlocked {
                // ORDERING: the shutdown barrier, an audited
                // relaxed-handoff (see crates/lint/allow/atomics.txt).
                // The store is
                // sequenced before this thread's `barrier.wait()`, and
                // each worker's matching wait is sequenced before its
                // `done.load`; the barrier's synchronizes-with edge
                // therefore publishes the flag — Relaxed suffices, the
                // flag itself guards no other data.
                shared.done.store(true, Relaxed);
                barrier.wait();
                break;
            }
            let mut activity = match shared.trees {
                Some(set) => {
                    let mut allocator = shared.allocator.lock().expect("arena allocator");
                    inject_multicast(&shared, &mut main, &mut allocator, set, offered_per_cycle)
                }
                None => {
                    decode(&shared, &main, &mut dec, &scratches, offered_per_cycle);
                    0
                }
            };
            // Link dynamics fire on the sequential slot: capacity
            // stores, stranding, repair, and wakes all happen while
            // the workers idle at the barrier, so every gate the
            // phases read is cycle-stable.
            if let Some(timeline) = timeline {
                activity +=
                    apply_dynamics(&shared, &mut main, timeline, &mut event_cursor, &scratches);
            }
            if !main.backlog.is_empty() {
                activity += place_stranded(&shared, &mut main);
            }
            shared.cycle.store(main.cycle, Relaxed);
            // ORDERING: the sequential→inject phase barrier (main
            // side) — releases the workers with the cycle number and
            // the sequential slot's writes published.
            barrier.wait();
            {
                let mut ws = scratches[0].lock().expect("inject scratch");
                inject_list(&shared, &mut ws, main.cycle);
            }
            // ORDERING: the inject→drain phase barrier (main side) —
            // staged pushes visible before any drain room read.
            barrier.wait();
            {
                let mut ws = scratches[0].lock().expect("drain scratch");
                drain_range(&shared, bounds[0]..bounds[1], main.cycle, &mut ws);
            }
            // ORDERING: the drain→apply phase barrier (main side) —
            // every worker's cycle work visible to the apply slot.
            barrier.wait();
            activity += apply(&shared, &mut main, &mut dec, &scratches);
            main.cycle += 1;
            let events_pending = timeline.is_some_and(|t| event_cursor < t.transitions.len());
            if activity == 0 && main.in_network > 0 && !events_pending {
                // Packets are buffered but nothing moved, injected or
                // dropped: every head waits on a full FIFO in a cycle
                // of full FIFOs. With boundary credits the queue state
                // is a pure function of itself, so no future cycle can
                // differ — a backpressure deadlock. (An idle network
                // with activity 0 is just injection pacing — and with
                // timeline events still ahead the state is *not* a
                // pure function of itself: a revival or failure may
                // yet unblock or retire the heads, so keep cycling.)
                main.deadlocked = true;
            }
        }
    });

    // Arena conservation: every slot handed out is either recycled
    // (delivered/dropped), pooled by a worker, or still queued (in
    // flight). Return the pools, then audit. Multicast copies are
    // audited in copy units — their leaf-unit total is the report's
    // `in_flight`.
    let live_copies = if shared.trees.is_some() {
        main.in_copies
    } else {
        main.in_network
    };
    {
        let mut allocator = shared.allocator.lock().expect("arena allocator");
        for cell in &scratches {
            let mut ws = cell.lock().expect("pool return");
            allocator.release_all(ws.ids.drain(..));
        }
        assert_eq!(
            allocator.live(),
            live_copies,
            "arena leak: {} live slots vs {live_copies} in-flight copies",
            allocator.live(),
        );
    }
    // Entry conservation: decoded minus consumed must equal the live
    // pending backlog (consumes and `injected` move in lockstep).
    if shared.trees.is_none() {
        assert_eq!(
            dec.entry_ids.live(),
            dec.next - main.injected,
            "entry leak: {} live entries vs {} decoded − {} consumed",
            dec.entry_ids.live(),
            dec.next,
            main.injected,
        );
    }

    // Sources still parked at the end: the scan would have re-stalled
    // them in every executed cycle after they parked — settle the
    // counter so it reads identically to the unparked path.
    if main.cycle > 0 {
        for parked_at in source_parked_at.iter() {
            let at = parked_at.load(Relaxed);
            if at != u64::MAX {
                main.source_stall_cycles += (main.cycle - 1) - at;
            }
        }
    }

    finish(
        &mut main,
        &peak,
        &delivered_per_link,
        &watches,
        arcs,
        vcs,
        router,
        offered_per_cycle,
        hot_dst,
        trees,
    )
}

/// The decode step of a unicast run: pull every pair whose offer
/// cycle has arrived, append it to its source's pending FIFO, and
/// stage newly nonempty sources for listing with their inject owner
/// (one scratch lock per worker per cycle, while the workers idle at
/// the cycle barrier).
fn decode(
    shared: &SharedRun,
    main: &MainState,
    dec: &mut Decoder,
    scratches: &[Mutex<WorkerScratch>],
    offered_per_cycle: f64,
) {
    // Cycle the `i`-th packet's injection credit accrues: credits
    // issued through cycle `c` total `(c+1)·offered`, so packet `i` is
    // covered once that reaches `i+1`. Without stalls this is exactly
    // the injection cycle.
    let offer_cycle =
        |i: usize| (((i + 1) as f64 / offered_per_cycle).ceil() as u64).saturating_sub(1);
    // ORDERING: Relaxed — decode runs on the main thread while every
    // worker idles at the cycle barrier, so the pending-FIFO threading
    // (src_head/src_tail/entry links) and the listed flags have no
    // concurrent reader; the barrier the workers pass next is the
    // synchronizes-with edge that hands the writes to the inject
    // phase, and the scratch mutex hands over `newly_listed`.
    let cycle = main.cycle;
    let n = shared.g.node_count() as u64;
    while dec.next < dec.total && offer_cycle(dec.next) <= cycle {
        let (src, dst) = dec.feed.pair(dec.next);
        assert!(
            src < n,
            "workload source {src} is not a fabric node (fabric has {n})"
        );
        let entry = dec.entry_ids.claim();
        shared.entries.init(entry, dst, offer_cycle(dec.next));
        let s = src as usize;
        let tail = shared.src_tail[s].load(Relaxed);
        if tail == NONE {
            shared.src_head[s].store(entry, Relaxed);
        } else {
            shared.entries.link(tail).store(entry, Relaxed);
        }
        shared.src_tail[s].store(entry, Relaxed);
        if shared.src_listed[s].load(Relaxed) == 0 {
            shared.src_listed[s].store(1, Relaxed);
            dec.newly_listed[shared.list_owner(s)].push(src as u32);
        }
        dec.next += 1;
    }
    for (w, list) in dec.newly_listed.iter_mut().enumerate() {
        if !list.is_empty() {
            scratches[w]
                .lock()
                .expect("decode scratch")
                .sources
                .append(list);
        }
    }
}

/// The injection phase of a multicast run (sequential, in the decode
/// slot): rotate over roots with pending groups, injecting one copy
/// per root-child tree arc. A group injects all-or-nothing under
/// backpressure (any full root-child FIFO stalls the root, which
/// parks on it); under tail-drop the full children drop with their
/// whole subtree weight and the rest inject. Root self-requests
/// deliver at the source and unroutable leaves drop here, so a
/// processed group always accounts for every one of its leaves.
fn inject_multicast(
    shared: &SharedRun,
    main: &mut MainState,
    allocator: &mut ArenaAllocator,
    trees: &TreeSet,
    offered_per_cycle: f64,
) -> usize {
    let offer_cycle =
        |i: usize| (((i + 1) as f64 / offered_per_cycle).ceil() as u64).saturating_sub(1);
    // ORDERING: Relaxed — multicast injection is sequential (main
    // thread, workers parked at the barrier), so the queue-length
    // probes, parking flags, and waiter-list threading here are
    // data-race-free by construction; the phase barrier publishes
    // them to the drain workers.
    let cycle = main.cycle;
    let mut activity = 0usize;
    let scan_count = if main.pending == 0 {
        0
    } else {
        main.source_ids.len()
    };
    let source_start = if main.source_ids.is_empty() {
        0
    } else {
        cycle as usize % main.source_ids.len()
    };
    for scan in 0..scan_count {
        let src = main.source_ids[(source_start + scan) % main.source_ids.len()];
        if shared.source_parked_at[src].load(Relaxed) != u64::MAX {
            continue; // woken by the blocking channel's next pop
        }
        'groups: while let Some(&group) = main.sources[src].front() {
            if offer_cycle(group) > cycle {
                break;
            }
            let roots = trees.group_root_arcs(group);
            if shared.policy == ContentionPolicy::Backpressure {
                // All-or-nothing: probe every root child before
                // committing anything.
                for &t in roots {
                    let arc = trees.fabric_arc(t);
                    let vc0 = shared.dateline.next_class_arc(0, arc);
                    let chan = arc * shared.vcs + vc0 as usize;
                    if shared.queues.len[chan].load(Relaxed) >= shared.buffers {
                        main.source_stall_cycles += 1;
                        shared.source_parked_at[src].store(cycle, Relaxed);
                        let first = shared.source_waiter_head[chan].load(Relaxed);
                        shared.source_waiter_link[src].store(first, Relaxed);
                        shared.source_waiter_head[chan].store(src as u32, Relaxed);
                        break 'groups;
                    }
                }
            }
            main.sources[src].pop_front();
            main.pending -= 1;
            main.groups_injected += 1;
            main.injected += trees.group_leaves(group) as usize;
            let self_requests = trees.group_self_requests(group) as usize;
            if self_requests > 0 {
                // Delivered without entering the network.
                main.delivered += self_requests;
                let wait = cycle - offer_cycle(group);
                main.waits.record_n(wait, self_requests as u64);
            }
            main.dropped_unroutable += trees.group_unroutable(group) as usize;
            for &t in roots {
                let arc = trees.fabric_arc(t);
                let vc0 = shared.dateline.next_class_arc(0, arc);
                let chan = arc * shared.vcs + vc0 as usize;
                if shared.queues.len[chan].load(Relaxed) < shared.buffers {
                    if vc0 > 0 {
                        main.dateline_promotions += 1;
                    }
                    let id = allocator.claim();
                    shared.arena.init(id, t, offer_cycle(group), vc0);
                    push_packet(shared, chan, id, cycle);
                    main.in_network += trees.weight(t) as usize;
                    main.in_copies += 1;
                } else {
                    // Only reachable under tail-drop — backpressure
                    // probed every child above.
                    debug_assert_eq!(shared.policy, ContentionPolicy::TailDrop);
                    main.dropped_full += trees.weight(t) as usize;
                }
            }
            activity += 1;
        }
    }
    activity
}

/// The injection phase over one worker's listed sources: admit every
/// pending head each source can place, compacting the list as sources
/// drain empty or park. Listing invariant: a source is on exactly one
/// list iff its `src_listed` flag is set; delisting clears the flag,
/// and decode / the apply-step wake relist under it.
fn inject_list(shared: &SharedRun, ws: &mut WorkerScratch, cycle: u64) {
    // ORDERING: Relaxed — each source is listed with exactly one
    // worker (list_owner shards by source node), so its `src_listed`
    // flag and everything `inject_source` touches on its behalf are
    // single-writer during the inject phase.
    //
    // Refresh before the empty-list return: the drain phase that
    // follows routes by the same cached snapshot, whether or not this
    // worker has sources to inject.
    refresh_snapshot(shared, ws);
    if ws.sources.is_empty() {
        return;
    }
    let mut list = std::mem::take(&mut ws.sources);
    if !shared.parallel_inject {
        // Sequential (adaptive-router) injection: stalled sources
        // stay listed and retry every cycle, so rotate the scan start
        // or the first-listed would persistently win the buffer room
        // the later ones starve for. (Sharded injection doesn't need
        // this: its stalled sources park, and admission there is
        // order-free.)
        let rotation = cycle as usize % list.len();
        list.rotate_left(rotation);
    }
    let mut kept = 0;
    for i in 0..list.len() {
        let src = list[i];
        if inject_source(shared, ws, src as usize, cycle) {
            list[kept] = src;
            kept += 1;
        } else {
            shared.src_listed[src as usize].store(0, Relaxed);
        }
    }
    list.truncate(kept);
    ws.sources = list;
}

/// Re-fetch the worker's cached route snapshot when the published
/// epoch moved. Repairs republish only on the sequential slot, so one
/// check per worker per cycle — here, at the top of its inject phase,
/// the first phase after that slot — keeps every phase query on the
/// current table. An event that patched nothing leaves the epoch (and
/// this cache) untouched.
fn refresh_snapshot(shared: &SharedRun, ws: &mut WorkerScratch) {
    let Some(repair) = shared.repair else {
        return;
    };
    let epoch = repair.snapshot_epoch();
    if epoch != ws.snapshot_epoch_seen {
        ws.snapshot = repair.published_snapshot();
        debug_assert!(
            ws.snapshot.is_some(),
            "gating requires a published snapshot"
        );
        ws.snapshot_epoch_seen = epoch;
    }
}

/// Inject one source's eligible pending heads (every decoded entry is
/// already offered). Returns whether the source stays listed: `false`
/// when its queue drained or it parked (both wakes are event-driven),
/// `true` when an adaptive-router stall leaves it retrying next
/// cycle.
fn inject_source(shared: &SharedRun, ws: &mut WorkerScratch, src: usize, cycle: u64) -> bool {
    // ORDERING: Relaxed — everything here is owned by this worker for
    // the phase: the source's pending FIFO and injection cache are
    // sharded by source node; the queue-length probe reads occupancy
    // that only moves at phase boundaries (drain pops commit in
    // apply); the channels pushed are this source's own out-arcs; and
    // a source parks only on its own out-arc channel, so the waiter
    // list has one writer. The inject/drain barrier publishes all of
    // it.
    if shared.source_parked_at[src].load(Relaxed) != u64::MAX {
        // Still blocked on a full first-hop FIFO; its wake-up is
        // event-driven (the blocker's next committed pop).
        return false;
    }
    loop {
        let entry = shared.src_head[src].load(Relaxed);
        if entry == NONE {
            return false;
        }
        let dst = shared.entries.dst(entry).load(Relaxed);
        let offered = shared.entries.offered(entry).load(Relaxed);
        let class = usize::from(shared.hot_dst == Some(dst));
        if src as u64 == dst {
            // Delivered without entering the network (any
            // source-stall time still counts as waiting).
            consume_entry(shared, ws, src, entry);
            ws.stats.injected += 1;
            ws.stats.delivered += 1;
            ws.stats.class_injected[class] += 1;
            ws.stats.class_delivered[class] += 1;
            let wait = cycle - offered;
            ws.waits.push(wait);
            if shared.classified {
                ws.class_waits[class].push(wait);
            }
            ws.stats.activity += 1;
            continue;
        }
        // An off-fabric destination is unroutable by definition
        // — dropped here, before any router can be asked about a
        // node that does not exist (dense tables index out of
        // bounds, compressed ones would have to invent answers).
        let arc = if dst >= shared.g.node_count() as u64 {
            None
        } else if shared.stateless && shared.inject_cached_entry[src].load(Relaxed) == entry {
            Some(shared.inject_cached_arc[src].load(Relaxed) as usize)
        } else {
            let computed = shared
                .route_query(&ws.snapshot, src as u64, dst, 0)
                .and_then(|next| arc_of(shared.g, src as u64, next));
            if let (true, Some(found)) = (shared.stateless, computed) {
                shared.inject_cached_entry[src].store(entry, Relaxed);
                shared.inject_cached_arc[src].store(found as u32, Relaxed);
            }
            computed
        };
        // Dead-target requery at the injection port: a cached (or
        // fresh) first hop onto a beam that has since faded to zero
        // is re-asked against the repaired routing; a router still
        // answering the dead beam makes the packet unroutable here —
        // it never entered the fabric, so there is nothing to strand.
        let arc = match arc {
            Some(found) if shared.arc_dead(found) => {
                note_dead_demand(shared, found as u32, cycle);
                shared.inject_cached_entry[src].store(NONE, Relaxed);
                let fresh = shared
                    .route_query(&ws.snapshot, src as u64, dst, 0)
                    .and_then(|next| arc_of(shared.g, src as u64, next))
                    .filter(|&fresh| !shared.arc_dead(fresh));
                if let (true, Some(found)) = (shared.stateless, fresh) {
                    shared.inject_cached_entry[src].store(entry, Relaxed);
                    shared.inject_cached_arc[src].store(found as u32, Relaxed);
                }
                fresh
            }
            other => other,
        };
        let Some(arc) = arc else {
            // No route (or the router proposed a non-neighbor).
            consume_entry(shared, ws, src, entry);
            ws.stats.injected += 1;
            ws.stats.dropped_unroutable += 1;
            ws.stats.class_injected[class] += 1;
            ws.stats.class_dropped[class] += 1;
            ws.stats.activity += 1;
            continue;
        };
        // A packet starts at class 0 and, like any other hop, is
        // promoted if its very first arc crosses the dateline — so
        // the class it joins is exactly the one a dateline-aware
        // adaptive scorer charged for this hop.
        let vc0 = shared.dateline.next_class_arc(0, arc);
        let chan = arc * shared.vcs + vc0 as usize;
        if shared.queues.len[chan].load(Relaxed) < shared.buffers {
            consume_entry(shared, ws, src, entry);
            if vc0 > 0 {
                ws.stats.promotions += 1;
            }
            let id = claim_id(shared, ws);
            shared.arena.init(id, dst as u32, offered, vc0);
            push_packet(shared, chan, id, cycle);
            ws.stats.injected += 1;
            ws.stats.entered += 1;
            ws.stats.class_injected[class] += 1;
            ws.stats.activity += 1;
        } else {
            match shared.policy {
                ContentionPolicy::TailDrop => {
                    consume_entry(shared, ws, src, entry);
                    ws.stats.injected += 1;
                    ws.stats.dropped_full += 1;
                    ws.stats.class_injected[class] += 1;
                    ws.stats.class_dropped[class] += 1;
                    ws.stats.activity += 1;
                }
                ContentionPolicy::Backpressure => {
                    // This source stalls; the others go on. With a
                    // stateless router the blocking channel is
                    // fixed, so park the source until that channel
                    // commits a pop instead of re-scanning it
                    // every cycle (the skipped stalls are settled
                    // at wake time). Only this source can park on
                    // its own out-arc channel, so the waiter list
                    // has one writer.
                    ws.stats.source_stalls += 1;
                    if shared.stateless {
                        shared.source_parked_at[src].store(cycle, Relaxed);
                        let first = shared.source_waiter_head[chan].load(Relaxed);
                        shared.source_waiter_link[src].store(first, Relaxed);
                        shared.source_waiter_head[chan].store(src as u32, Relaxed);
                        return false;
                    }
                    return true;
                }
            }
        }
    }
}

/// Unlink a source's pending head, recycle it at the next apply, and
/// invalidate the injection cache (entry ids recycle — a stale key
/// could alias a future entry).
fn consume_entry(shared: &SharedRun, ws: &mut WorkerScratch, src: usize, entry: u32) {
    // ORDERING: Relaxed — the source's pending FIFO words are owned
    // by the calling inject worker (sources shard by node); decode's
    // writes to them were published by the preceding phase barrier.
    let next = shared.entries.link(entry).load(Relaxed);
    shared.src_head[src].store(next, Relaxed);
    if next == NONE {
        shared.src_tail[src].store(NONE, Relaxed);
    }
    shared.inject_cached_entry[src].store(NONE, Relaxed);
    ws.freed_entries.push(entry);
}

/// A packet id from the worker's pool, refilled in batches — one
/// allocator lock per [`ID_BATCH`] claims. The pool headroom in the
/// allocator's capacity guarantees a refill never comes back empty
/// while the workload bound holds.
fn claim_id(shared: &SharedRun, ws: &mut WorkerScratch) -> u32 {
    if let Some(id) = ws.ids.pop() {
        return id;
    }
    shared
        .allocator
        .lock()
        .expect("arena allocator")
        .claim_batch(&mut ws.ids, ID_BATCH);
    ws.ids.pop().expect("arena overflow: id supply exhausted")
}

/// Commit a push: thread the FIFO, bump committed occupancy, publish
/// to the congestion scoreboard, track the peak, and — when the
/// channel just became nonempty — activate the downstream node's
/// worklist bit. (A parked channel is never empty, so `len == 0`
/// implies unparked.) Every channel has exactly one pushing owner per
/// phase: its source's inject worker, or the main thread.
fn push_packet(shared: &SharedRun, chan: usize, id: u32, cycle: u64) {
    // ORDERING: Relaxed — the caller owns `chan` for the phase (its
    // source's inject worker, or the main thread in apply), so the
    // peak load+store and the scoreboard publish are single-writer
    // plain updates; adaptive routers read `counts` only in phases
    // where injection is sequential, behind a barrier.
    let len = shared.queues.push(chan, id, shared.arena);
    if len > shared.peak[chan].load(Relaxed) {
        shared.peak[chan].store(len, Relaxed);
    }
    shared.counts[chan].store(len, Relaxed);
    if len == 1 {
        activate(shared, chan);
    }
    if !shared.watches.is_empty() {
        note_reroute(shared, chan, cycle);
    }
}

/// Resolve time-to-reroute watches: a packet just committed onto
/// `chan`, so any open watch at the channel's source node whose dead
/// beam is a *different* out-link has found its reroute. Reported as
/// `resolved − at_cycle + 1`, counting the event cycle itself — a
/// same-cycle re-placement took one cycle, not zero.
#[cold]
fn note_reroute(shared: &SharedRun, chan: usize, cycle: u64) {
    let arc = (chan / shared.vcs) as u32;
    let node = shared.g.arc_source(arc as usize);
    for watch in shared.watches {
        // ORDERING: Relaxed load+store, not an RMW — several pushers
        // can race this within one phase, but every competing store
        // writes the same `cycle` (phases are barrier-separated, so
        // all same-phase pushes carry one cycle value), and once the
        // slot leaves `u64::MAX` the guard skips it: the first
        // resolving cycle wins deterministically at any thread count.
        if watch.node == node
            && watch.arc != arc
            && cycle >= watch.at_cycle
            && watch.resolved.load(Relaxed) == u64::MAX
        {
            watch.resolved.store(cycle, Relaxed);
        }
    }
}

/// A packet's chosen hop rode a beam that is dead this cycle: record
/// demand against the most recent open watch on that arc, so an
/// unresolved watch reports as `reroute_unresolved` (demand existed)
/// rather than `reroute_no_demand`. Cold: only dead-target requeries
/// reach it.
#[cold]
fn note_dead_demand(shared: &SharedRun, arc: u32, cycle: u64) {
    let mut hit = None;
    for watch in shared.watches {
        if watch.arc == arc && cycle >= watch.at_cycle {
            hit = Some(watch);
        }
    }
    if let Some(watch) = hit {
        // ORDERING: Relaxed — several workers can race this within a
        // phase, but every store writes 1; idempotent.
        watch.demand.store(1, Relaxed);
    }
}

/// A channel became ready (first packet, or woken from parking):
/// count it toward its node and set the node's worklist bit.
fn activate(shared: &SharedRun, chan: usize) {
    let node = shared.g.arc_target(chan / shared.vcs) as usize;
    // ORDERING: `fetch_add`, not load+store — the sharded injection
    // phase can ready channels into the same downstream node from
    // several workers at once; the RMW's atomicity (Relaxed is all it
    // needs) guarantees exactly one caller sees the 0→1 edge and sets
    // the worklist bit (the bitset insert is itself an atomic
    // fetch_or, so a lost wakeup is impossible).
    if shared.node_ready[node].fetch_add(1, Relaxed) == 0 {
        shared.active.insert(node);
    }
}

/// Drain every active node in `range` — one worker's shard.
fn drain_range(
    shared: &SharedRun,
    range: std::ops::Range<usize>,
    cycle: u64,
    ws: &mut WorkerScratch,
) {
    // ORDERING: Relaxed — `node_ready` counters in this worker's
    // shard are written during drain only by this worker (nodes shard
    // by range); the inject phase's increments were published by the
    // barrier this worker just passed.
    shared.active.for_each_in(range, |node| {
        if shared.node_ready[node].load(Relaxed) > 0 {
            drain_node(shared, node, cycle, ws);
        }
    });
}

/// Drain one node's inbound arcs, rotating the starting arc per cycle
/// so no in-arc persistently wins the node's downstream buffer space.
fn drain_node(shared: &SharedRun, node: usize, cycle: u64, ws: &mut WorkerScratch) {
    // ORDERING: Relaxed — this worker owns `node` (and so every word
    // its inbound arcs' drains touch) for the whole drain phase; see
    // the note in `drain_range`.
    let lo = shared.in_offsets[node] as usize;
    let hi = shared.in_offsets[node + 1] as usize;
    let degree = hi - lo;
    debug_assert!(degree > 0, "ready channels imply inbound arcs");
    let rotation = cycle as usize % degree;
    // Branch once per node, not once per arc — the unicast hot path
    // must not pay for the multicast dispatch.
    match shared.trees {
        Some(trees) => {
            for step in 0..degree {
                let arc = shared.in_arcs[lo + (rotation + step) % degree] as usize;
                drain_arc_mc(shared, trees, arc, node as u64, cycle, ws);
                if shared.node_ready[node].load(Relaxed) == 0 {
                    break;
                }
            }
        }
        None => {
            for step in 0..degree {
                let arc = shared.in_arcs[lo + (rotation + step) % degree] as usize;
                drain_arc(shared, arc, node as u64, cycle, ws);
                if shared.node_ready[node].load(Relaxed) == 0 {
                    break;
                }
            }
        }
    }
    if shared.node_ready[node].load(Relaxed) == 0 {
        ws.emptied.push(node as u32);
    }
}

/// Drain one arc: up to `wavelengths` packets off its VC FIFO heads,
/// one per class per round (rotating the starting class) so no class
/// hogs the channels; a blocked head blocks only its own class.
fn drain_arc(shared: &SharedRun, arc: usize, node: u64, cycle: u64, ws: &mut WorkerScratch) {
    // ORDERING: Relaxed — every atomic this drain touches is owned by
    // this worker during the phase: the arc's FIFO heads and parking
    // words belong to its target node's shard; staged arrivals bump
    // `staged_len` of downstream channels whose *source* node is this
    // node, so this worker is their sole stager;
    // delivered_per_link[arc] is bumped only by the arc target's
    // owner; and room checks read phase-stable committed occupancy
    // (pops batch to apply). Cross-phase visibility is the barrier's.
    let vcs = shared.vcs;
    let vc_start = cycle as usize % vcs;
    // A faded link drains at its surviving wavelength count; a dead
    // one never has queued packets (its FIFOs were stranded at the
    // event), so a zero budget here only caps, never wedges.
    let mut budget = shared.arc_budget(arc);
    let mut parked_here = 0u32;
    ws.vc_blocked[..vcs].fill(false);
    ws.vc_pops[..vcs].fill(0);
    'link: loop {
        let mut progressed = false;
        for offset in 0..vcs {
            if budget == 0 {
                break 'link;
            }
            let vc = (vc_start + offset) % vcs;
            if ws.vc_blocked[vc] {
                continue;
            }
            let chan = arc * vcs + vc;
            if shared.parked[chan].load(Relaxed) != 0 {
                // Still waiting on its blocker's pop — costs this one
                // word load, nothing more.
                ws.vc_blocked[vc] = true;
                continue;
            }
            let head = shared.queues.head[chan].load(Relaxed);
            if head == NONE {
                ws.vc_blocked[vc] = true;
                continue;
            }
            let dst = shared.arena.dst(head).load(Relaxed);
            let hops_after = shared.arena.hops(head).load(Relaxed) + 1;
            if dst as u64 == node {
                shared.queues.pop_head(chan, head, shared.arena);
                ws.vc_pops[vc] += 1;
                ws.freed.push(head);
                let class = usize::from(shared.hot_dst == Some(dst as u64));
                ws.stats.delivered += 1;
                ws.stats.departed += 1;
                ws.stats.departed_copies += 1;
                ws.stats.class_delivered[class] += 1;
                ws.stats.delivered_hops += hops_after as u64;
                if hops_after > ws.stats.max_hops {
                    ws.stats.max_hops = hops_after;
                }
                let delivered_here = shared.delivered_per_link[arc].load(Relaxed);
                shared.delivered_per_link[arc].store(delivered_here + 1, Relaxed);
                // Total time since offer minus one cycle per hop =
                // cycles spent waiting (source stall plus queueing).
                let offered = shared.arena.offered(head).load(Relaxed);
                let wait = cycle + 1 - offered - hops_after as u64;
                ws.waits.push(wait);
                if shared.classified {
                    ws.class_waits[class].push(wait);
                }
                ws.stats.activity += 1;
                budget -= 1;
                progressed = true;
                continue;
            }
            if hops_after >= shared.hop_limit {
                shared.queues.pop_head(chan, head, shared.arena);
                ws.vc_pops[vc] += 1;
                ws.freed.push(head);
                ws.stats.dropped_ttl += 1;
                ws.stats.departed += 1;
                ws.stats.departed_copies += 1;
                ws.stats.class_dropped[usize::from(shared.hot_dst == Some(dst as u64))] += 1;
                ws.stats.activity += 1;
                budget -= 1;
                progressed = true;
                continue;
            }
            let packet_vc = shared.arena.vc(head).load(Relaxed) as u8;
            // Stateless routers answer this identically every cycle
            // the head stays blocked — cache the arc in the packet.
            let next_arc = if shared.stateless {
                let cached = shared.arena.cached_next(head).load(Relaxed);
                if cached != NONE {
                    Some(cached as usize)
                } else {
                    let computed = shared
                        .route_query(&ws.snapshot, node, dst as u64, packet_vc)
                        .and_then(|next| arc_of(shared.g, node, next));
                    if let Some(found) = computed {
                        shared.arena.cached_next(head).store(found as u32, Relaxed);
                    }
                    computed
                }
            } else {
                shared
                    .router
                    .next_hop_on_vc(node, dst as u64, packet_vc)
                    .and_then(|next| arc_of(shared.g, node, next))
            };
            // Dead-target requery: a cached (or freshly proposed) hop
            // onto a beam that has since faded to zero is re-asked
            // once against the now-repaired routing. A router that
            // still insists on the dead beam strands the head — it is
            // pulled out of the fabric and resolved per the stranded
            // policy at apply, instead of wedging the class forever
            // behind a link that may never come back.
            let next_arc = match next_arc {
                Some(found) if shared.arc_dead(found) => {
                    note_dead_demand(shared, found as u32, cycle);
                    shared.arena.cached_next(head).store(NONE, Relaxed);
                    let fresh = shared
                        .route_query(&ws.snapshot, node, dst as u64, packet_vc)
                        .and_then(|next| arc_of(shared.g, node, next))
                        .filter(|&fresh| !shared.arc_dead(fresh));
                    match fresh {
                        Some(fresh) => {
                            if shared.stateless {
                                shared.arena.cached_next(head).store(fresh as u32, Relaxed);
                            }
                            Some(fresh)
                        }
                        None => {
                            shared.queues.pop_head(chan, head, shared.arena);
                            ws.vc_pops[vc] += 1;
                            shared.arena.hops(head).store(hops_after, Relaxed);
                            ws.stranded.push((chan as u32, head));
                            ws.stats.activity += 1;
                            budget -= 1;
                            progressed = true;
                            continue;
                        }
                    }
                }
                other => other,
            };
            let Some(next_arc) = next_arc else {
                shared.queues.pop_head(chan, head, shared.arena);
                ws.vc_pops[vc] += 1;
                ws.freed.push(head);
                ws.stats.dropped_unroutable += 1;
                ws.stats.departed += 1;
                ws.stats.departed_copies += 1;
                ws.stats.class_dropped[usize::from(shared.hot_dst == Some(dst as u64))] += 1;
                ws.stats.activity += 1;
                budget -= 1;
                progressed = true;
                continue;
            };
            let next_vc = shared.dateline.next_class_arc(packet_vc, next_arc);
            let next_chan = next_arc * vcs + next_vc as usize;
            // Boundary credits: committed occupancy plus this cycle's
            // staged arrivals; same-cycle pops become room next cycle.
            let occupied = shared.queues.len[next_chan].load(Relaxed)
                + shared.queues.staged_len[next_chan].load(Relaxed);
            let has_room = occupied < shared.buffers;
            // The one move the class order cannot rank — a top-class
            // packet wrapping again — is never allowed to block (deep
            // dateline buffers): that waiver is what makes the
            // dependency graph acyclic outright, so `Backpressure`
            // with `vcs ≥ 2` provably cannot reach the all-blocked
            // state the deadlock detector looks for. Tail-drop never
            // blocks, so it neither needs nor gets the valve.
            let relief = !has_room
                && shared.policy == ContentionPolicy::Backpressure
                && shared.dateline.needs_relief(packet_vc, next_arc);
            if relief {
                ws.stats.relief += 1;
            }
            if has_room || relief {
                shared.queues.pop_head(chan, head, shared.arena);
                ws.vc_pops[vc] += 1;
                shared.arena.hops(head).store(hops_after, Relaxed);
                if next_vc > packet_vc {
                    ws.stats.promotions += 1;
                }
                shared.arena.vc(head).store(next_vc as u32, Relaxed);
                shared.arena.cached_next(head).store(NONE, Relaxed);
                let staged = shared.queues.staged_len[next_chan].load(Relaxed);
                shared.queues.staged_len[next_chan].store(staged + 1, Relaxed);
                ws.staged.push((next_chan as u32, head));
                ws.stats.activity += 1;
                budget -= 1;
                progressed = true;
            } else {
                match shared.policy {
                    ContentionPolicy::TailDrop => {
                        shared.queues.pop_head(chan, head, shared.arena);
                        ws.vc_pops[vc] += 1;
                        ws.freed.push(head);
                        ws.stats.dropped_full += 1;
                        ws.stats.departed += 1;
                        ws.stats.departed_copies += 1;
                        ws.stats.class_dropped[usize::from(shared.hot_dst == Some(dst as u64))] +=
                            1;
                        ws.stats.activity += 1;
                        budget -= 1;
                        progressed = true;
                    }
                    // Head-of-line block — this class only. With a
                    // stateless router the blocker is fixed, and
                    // under boundary credits its room can only
                    // reappear through a committed pop — so park the
                    // channel on the blocker's waiter list and stop
                    // re-checking it every cycle. (Adaptive routers
                    // may pick a different candidate next cycle:
                    // they stay ready and are re-asked.)
                    ContentionPolicy::Backpressure => {
                        ws.vc_blocked[vc] = true;
                        if shared.stateless {
                            shared.parked[chan].store(1, Relaxed);
                            let first = shared.waiter_head[next_chan].load(Relaxed);
                            shared.waiter_link[chan].store(first, Relaxed);
                            shared.waiter_head[next_chan].store(chan as u32, Relaxed);
                            parked_here += 1;
                        }
                    }
                }
            }
        }
        if !progressed {
            break;
        }
    }
    // Batch this arc's pops (occupancy commits at apply) and settle
    // the node's ready count now — this worker owns it. A channel
    // leaves the ready set by emptying or by parking.
    let mut ready_loss = parked_here;
    for vc in 0..vcs {
        let popped = ws.vc_pops[vc];
        if popped > 0 {
            let chan = arc * vcs + vc;
            ws.pops.push((chan as u32, popped));
            if shared.parked[chan].load(Relaxed) == 0
                && shared.queues.head[chan].load(Relaxed) == NONE
            {
                ready_loss += 1;
            }
        }
    }
    if ready_loss > 0 {
        let ready = shared.node_ready[node as usize].load(Relaxed);
        shared.node_ready[node as usize].store(ready - ready_loss, Relaxed);
    }
}

/// Drain one arc of a multicast run: up to `wavelengths` copies off
/// its VC FIFO heads. A drained copy delivers to the requests at its
/// tree arc's head and **replicates** — one staged child copy per
/// child tree arc, each promoted per its own arc's dateline crossing.
/// Under backpressure the branch is all-or-nothing: it blocks (and
/// parks — trees are static, so the blocker is fixed) until every
/// non-relief child FIFO has room; under tail-drop a full child
/// drops with its entire subtree weight while its siblings proceed.
fn drain_arc_mc(
    shared: &SharedRun,
    trees: &TreeSet,
    arc: usize,
    node: u64,
    cycle: u64,
    ws: &mut WorkerScratch,
) {
    // ORDERING: Relaxed — same ownership discipline as `drain_arc`:
    // this worker owns the arc's target node, so the FIFO heads,
    // parking words, and per-arc delivery counter are single-writer
    // here, staged child copies bump channels whose source node is
    // this node, and all cross-phase visibility rides the barrier.
    let vcs = shared.vcs;
    let vc_start = cycle as usize % vcs;
    let mut budget = shared.wavelengths;
    let mut parked_here = 0u32;
    ws.vc_blocked[..vcs].fill(false);
    ws.vc_pops[..vcs].fill(0);
    'link: loop {
        let mut progressed = false;
        for offset in 0..vcs {
            if budget == 0 {
                break 'link;
            }
            let vc = (vc_start + offset) % vcs;
            if ws.vc_blocked[vc] {
                continue;
            }
            let chan = arc * vcs + vc;
            if shared.parked[chan].load(Relaxed) != 0 {
                ws.vc_blocked[vc] = true;
                continue;
            }
            let head = shared.queues.head[chan].load(Relaxed);
            if head == NONE {
                ws.vc_blocked[vc] = true;
                continue;
            }
            let t = shared.arena.dst(head).load(Relaxed);
            let hops_after = shared.arena.hops(head).load(Relaxed) + 1;
            debug_assert_eq!(trees.fabric_arc(t), arc, "copy rode the wrong link");
            if hops_after >= shared.hop_limit {
                // Unreachable for honest trees (depth ≤ diameter), but
                // the budget stays authoritative: the whole subtree
                // retires.
                shared.queues.pop_head(chan, head, shared.arena);
                ws.vc_pops[vc] += 1;
                ws.freed.push(head);
                ws.stats.dropped_ttl += trees.weight(t) as usize;
                ws.stats.departed += trees.weight(t) as usize;
                ws.stats.departed_copies += 1;
                ws.stats.activity += 1;
                budget -= 1;
                progressed = true;
                continue;
            }
            let packet_vc = shared.arena.vc(head).load(Relaxed) as u8;
            let children = trees.children(t);
            if shared.policy == ContentionPolicy::Backpressure {
                // All-or-nothing branch: find the first child whose
                // FIFO is full and not relief-exempt.
                let blocker = children.iter().find_map(|&child| {
                    let child_arc = trees.fabric_arc(child);
                    let child_vc = shared.dateline.next_class_arc(packet_vc, child_arc);
                    let child_chan = child_arc * vcs + child_vc as usize;
                    let occupied = shared.queues.len[child_chan].load(Relaxed)
                        + shared.queues.staged_len[child_chan].load(Relaxed);
                    (occupied >= shared.buffers
                        && !shared.dateline.needs_relief(packet_vc, child_arc))
                    .then_some(child_chan)
                });
                if let Some(blocking_chan) = blocker {
                    // Head-of-line block, this class only; the tree is
                    // static, so park on the blocker until it pops.
                    ws.vc_blocked[vc] = true;
                    shared.parked[chan].store(1, Relaxed);
                    let first = shared.waiter_head[blocking_chan].load(Relaxed);
                    shared.waiter_link[chan].store(first, Relaxed);
                    shared.waiter_head[blocking_chan].store(chan as u32, Relaxed);
                    parked_here += 1;
                    continue;
                }
            }
            // Commit: the copy leaves this FIFO, delivers its
            // requests, and replicates into its children.
            shared.queues.pop_head(chan, head, shared.arena);
            ws.vc_pops[vc] += 1;
            let offered = shared.arena.offered(head).load(Relaxed);
            let deliveries = trees.deliveries(t) as usize;
            if deliveries > 0 {
                ws.stats.delivered += deliveries;
                ws.stats.departed += deliveries;
                ws.stats.delivered_hops += deliveries as u64 * hops_after as u64;
                if hops_after > ws.stats.max_hops {
                    ws.stats.max_hops = hops_after;
                }
                let delivered_here = shared.delivered_per_link[arc].load(Relaxed);
                shared.delivered_per_link[arc].store(delivered_here + deliveries as u64, Relaxed);
                let wait = cycle + 1 - offered - hops_after as u64;
                for _ in 0..deliveries {
                    ws.waits.push(wait);
                }
            }
            for &child in children {
                let child_arc = trees.fabric_arc(child);
                let child_vc = shared.dateline.next_class_arc(packet_vc, child_arc);
                let child_chan = child_arc * vcs + child_vc as usize;
                let staged = shared.queues.staged_len[child_chan].load(Relaxed);
                let occupied = shared.queues.len[child_chan].load(Relaxed) + staged;
                if occupied >= shared.buffers {
                    match shared.policy {
                        ContentionPolicy::TailDrop => {
                            // The full child's whole subtree drops;
                            // its siblings still replicate.
                            ws.stats.dropped_full += trees.weight(child) as usize;
                            ws.stats.departed += trees.weight(child) as usize;
                            continue;
                        }
                        // Backpressure screened above: a full child
                        // here is the relief move, admitted past the
                        // cap (deep dateline buffers).
                        ContentionPolicy::Backpressure => ws.stats.relief += 1,
                    }
                }
                if child_vc > packet_vc {
                    ws.stats.promotions += 1;
                }
                shared.queues.staged_len[child_chan].store(staged + 1, Relaxed);
                ws.spawned.push(Spawn {
                    chan: child_chan as u32,
                    tree_arc: child,
                    offered,
                    hops: hops_after,
                    vc: child_vc,
                });
                ws.stats.spawned_copies += 1;
            }
            ws.freed.push(head);
            ws.stats.departed_copies += 1;
            ws.stats.activity += 1;
            budget -= 1;
            progressed = true;
        }
        if !progressed {
            break;
        }
    }
    // Batch pops and settle the node's ready count — same contract as
    // the unicast drain.
    let mut ready_loss = parked_here;
    for vc in 0..vcs {
        let popped = ws.vc_pops[vc];
        if popped > 0 {
            let chan = arc * vcs + vc;
            ws.pops.push((chan as u32, popped));
            if shared.parked[chan].load(Relaxed) == 0
                && shared.queues.head[chan].load(Relaxed) == NONE
            {
                ready_loss += 1;
            }
        }
    }
    if ready_loss > 0 {
        let ready = shared.node_ready[node as usize].load(Relaxed);
        shared.node_ready[node as usize].store(ready - ready_loss, Relaxed);
    }
}

/// Fire every timeline transition due at this cycle: store the new
/// per-arc capacity, publish the fade penalty to the adaptive
/// congestion view, strand the FIFOs of beams that died, feed each
/// zero-crossing to the router's online repair — and, once per batch
/// with any crossing, wake the world. Runs on the sequential slot
/// (workers idle at the cycle barrier), so every gate the phases read
/// is cycle-stable.
fn apply_dynamics(
    shared: &SharedRun,
    main: &mut MainState,
    timeline: &Timeline,
    cursor: &mut usize,
    scratches: &[Mutex<WorkerScratch>],
) -> usize {
    // ORDERING: Relaxed — main thread only, workers parked at the
    // barrier; the barrier publishes the capacity/penalty stores and
    // all the stranding surgery to the next phase.
    let mut activity = 0usize;
    let mut crossed = false;
    while *cursor < timeline.transitions.len() && timeline.transitions[*cursor].cycle <= main.cycle
    {
        let tr = timeline.transitions[*cursor];
        *cursor += 1;
        let arc = tr.arc as usize;
        let caps = shared.capacity.expect("a timeline implies capacities");
        caps[arc].store(tr.capacity, Relaxed);
        main.capacity_events += 1;
        activity += 1;
        // A dead beam reads as unusably congested to adaptive
        // routers; a partial fade as proportionally loaded — the
        // missing wavelengths' share of the arc's total buffer space.
        let penalty = if tr.capacity == 0 {
            DEAD_LINK_PENALTY
        } else {
            let missing = shared.wavelengths.saturating_sub(tr.capacity as usize);
            ((missing * shared.buffers as usize * shared.vcs) / shared.wavelengths) as u32
        };
        shared.fade_penalty[arc].store(penalty, Relaxed);
        match tr.crossing {
            Crossing::Death => {
                main.link_down_events += 1;
                crossed = true;
                // Deaths apply in timeline order, so this death's
                // watch is the latest one opened.
                let watch = &shared.watches[main.link_down_events as usize - 1];
                debug_assert_eq!(watch.arc, tr.arc, "watch order tracks death order");
                if strand_channels(shared, main, arc) {
                    // Queued FIFO content at the event is demand for
                    // the beam by definition.
                    watch.demand.store(1, Relaxed);
                }
                repair_link(shared, main, arc, false);
            }
            Crossing::Revival => {
                main.link_up_events += 1;
                crossed = true;
                repair_link(shared, main, arc, true);
            }
            Crossing::None => {}
        }
    }
    if crossed {
        // One snapshot publication covers the whole batch: a 16-beam
        // storm crossing zero on the same cycle pays one table copy,
        // not sixteen. Workers are still parked, so no query can run
        // between the per-event repairs above and this publication.
        if let Some(repair) = shared.router.as_repair() {
            repair.publish_deferred();
            // A patching batch republishes the epoch snapshot; an
            // all-no-op batch leaves the epoch alone. Counted off the
            // router itself (not the gated fast path), so oracle-mode
            // reports stay byte-identical.
            let epoch = repair.snapshot_epoch();
            if epoch != main.last_snapshot_epoch {
                main.last_snapshot_epoch = epoch;
                main.snapshot_publications += 1;
                main.snapshot_runs_published += repair.repair_table_runs() as u64;
            }
        }
        activity += wake_all(shared, main, scratches);
    }
    activity
}

/// Feed a zero-crossing to the router's online repair, if it carries
/// one, and record the per-event patch cost. Publication is deferred
/// to the end of the event batch (`apply_dynamics` above).
fn repair_link(shared: &SharedRun, main: &mut MainState, arc: usize, alive: bool) {
    let Some(repair) = shared.router.as_repair() else {
        return;
    };
    let from = u64::from(shared.g.arc_source(arc));
    let to = u64::from(shared.g.arc_target(arc));
    let stats = repair.apply_link_event_deferred(from, to, alive);
    main.repair_runs_patched.push(stats.runs_patched as u64);
    main.repair_rows_patched += stats.rows_patched as u64;
}

/// A beam died: pull every packet out of its VC FIFOs — into the
/// re-placement backlog or the drop counters, per policy — and settle
/// the ready/parked bookkeeping so the worklist stays exact. (The
/// channels' upstream waiters are handled by the batch's `wake_all`.)
/// Returns whether any packet was actually queued on the beam —
/// demand for the dead link.
fn strand_channels(shared: &SharedRun, main: &mut MainState, arc: usize) -> bool {
    // ORDERING: Relaxed — sequential slot; see `apply_dynamics`.
    let target = shared.g.arc_target(arc) as usize;
    let mut allocator = None;
    let mut stranded_any = false;
    for vc in 0..shared.vcs {
        let chan = arc * shared.vcs + vc;
        let mut head = shared.queues.head[chan].load(Relaxed);
        if head == NONE {
            debug_assert_eq!(shared.queues.len[chan].load(Relaxed), 0);
            continue;
        }
        stranded_any = true;
        // The nonempty channel leaves the ready set: it was counted
        // there unless parked (a parked channel is nonempty but
        // already uncounted — just clear the flag; its stale waiter
        // list entry dies in `wake_all`).
        if shared.parked[chan].load(Relaxed) == 0 {
            let ready = shared.node_ready[target].load(Relaxed);
            shared.node_ready[target].store(ready - 1, Relaxed);
            if ready == 1 {
                shared.active.remove(target);
            }
        } else {
            shared.parked[chan].store(0, Relaxed);
        }
        while head != NONE {
            let next = shared.arena.link(head).load(Relaxed);
            match shared.stranded_policy {
                StrandedPolicy::Reinject => {
                    shared.arena.cached_next(head).store(NONE, Relaxed);
                    main.backlog.push_back((head, shared.g.arc_source(arc)));
                }
                StrandedPolicy::Drop => {
                    let allocator = allocator
                        .get_or_insert_with(|| shared.allocator.lock().expect("arena allocator"));
                    drop_stranded(shared, main, allocator, head);
                }
            }
            head = next;
        }
        shared.queues.head[chan].store(NONE, Relaxed);
        shared.queues.tail[chan].store(NONE, Relaxed);
        shared.queues.len[chan].store(0, Relaxed);
        shared.counts[chan].store(0, Relaxed);
    }
    stranded_any
}

/// Account one stranded packet out of the network under
/// [`StrandedPolicy::Drop`].
fn drop_stranded(
    shared: &SharedRun,
    main: &mut MainState,
    allocator: &mut ArenaAllocator,
    id: u32,
) {
    // ORDERING: Relaxed — dst is written once at injection and the
    // sequential slot reads it with every worker parked at the
    // barrier.
    let dst = u64::from(shared.arena.dst(id).load(Relaxed));
    main.dropped_stranded += 1;
    main.in_network -= 1;
    main.in_copies -= 1;
    main.class_dropped[usize::from(shared.hot_dst == Some(dst))] += 1;
    allocator.release_all(std::iter::once(id));
}

/// A beam crossed zero capacity (died or revived): wake the world.
/// The event-driven waits (parked channels and sources) are keyed to
/// one specific blocker's pop, but a capacity crossing can unblock —
/// or invalidate — *any* parked decision once routing repairs around
/// it. Rare (once per event batch with a crossing), O(channels +
/// nodes), and deterministic: it runs on the sequential slot, and
/// whatever should stay blocked simply re-parks from scratch next
/// phase.
fn wake_all(shared: &SharedRun, main: &mut MainState, scratches: &[Mutex<WorkerScratch>]) -> usize {
    // ORDERING: Relaxed — sequential slot; see `apply_dynamics`.
    let mut woken = 0usize;
    // Clear every waiter list first: once a parked flag is cleared
    // and the channel re-activated, a stale list entry surviving to a
    // future pop would activate it a second time and corrupt the
    // ready counts.
    let channels = shared.queues.head.len();
    for chan in 0..channels {
        shared.waiter_head[chan].store(NONE, Relaxed);
        shared.source_waiter_head[chan].store(NONE, Relaxed);
    }
    for chan in 0..channels {
        if shared.parked[chan].load(Relaxed) != 0 {
            shared.parked[chan].store(0, Relaxed);
            shared.waiter_link[chan].store(NONE, Relaxed);
            activate(shared, chan);
            woken += 1;
        }
    }
    for src in 0..shared.g.node_count() {
        let parked_at = shared.source_parked_at[src].load(Relaxed);
        if parked_at == u64::MAX {
            continue;
        }
        // The cycles the scan skipped would each have counted one
        // stall — same settlement as the pop-driven wake.
        main.source_stall_cycles += main.cycle - parked_at;
        shared.source_parked_at[src].store(u64::MAX, Relaxed);
        shared.source_waiter_link[src].store(NONE, Relaxed);
        if shared.src_listed[src].load(Relaxed) == 0 && shared.src_head[src].load(Relaxed) != NONE {
            shared.src_listed[src].store(1, Relaxed);
            scratches[shared.list_owner(src)]
                .lock()
                .expect("wake scratch")
                .sources
                .push(src as u32);
        }
        woken += 1;
    }
    woken
}

/// Re-place the stranded backlog (the `Reinject` policy): each packet
/// is offered to the now-repaired routing at the node the death
/// caught it; the best-ranked live out-beam with room takes it, class
/// promoted per that arc's dateline crossing. A packet whose every
/// route died drops; one that found routes but no room stays
/// backlogged for next cycle. Sequential slot, FIFO over the backlog,
/// same committed-occupancy room rule as injection.
fn place_stranded(shared: &SharedRun, main: &mut MainState) -> usize {
    // ORDERING: Relaxed — sequential slot; see `apply_dynamics`.
    let mut activity = 0usize;
    let mut allocator = None;
    let mut retry = VecDeque::new();
    while let Some((id, node)) = main.backlog.pop_front() {
        let dst = u64::from(shared.arena.dst(id).load(Relaxed));
        debug_assert_ne!(
            dst,
            u64::from(node),
            "a packet at home was delivered, not stranded"
        );
        let candidates = shared.router.ranked_candidates(u64::from(node), dst);
        let vc = shared.arena.vc(id).load(Relaxed) as u8;
        let mut placed = false;
        let mut routable = false;
        for &(_, next) in candidates.as_slice() {
            let Some(arc) = arc_of(shared.g, u64::from(node), next) else {
                continue;
            };
            if shared.arc_dead(arc) {
                continue;
            }
            routable = true;
            let next_vc = shared.dateline.next_class_arc(vc, arc);
            let chan = arc * shared.vcs + next_vc as usize;
            if shared.queues.len[chan].load(Relaxed) < shared.buffers {
                if next_vc > vc {
                    main.dateline_promotions += 1;
                }
                shared.arena.vc(id).store(u32::from(next_vc), Relaxed);
                push_packet(shared, chan, id, main.cycle);
                main.stranded_reinjected += 1;
                placed = true;
                break;
            }
        }
        if placed {
            activity += 1;
        } else if routable {
            retry.push_back((id, node));
        } else {
            // Every route from here is dead: drop now rather than
            // hold the packet hostage to a revival that may never
            // come. (A `fade:DUR` revival simply re-routes the rest.)
            let allocator =
                allocator.get_or_insert_with(|| shared.allocator.lock().expect("arena allocator"));
            drop_stranded(shared, main, allocator, id);
            activity += 1;
        }
    }
    main.backlog = retry;
    activity
}

/// The apply step: commit pops, wake parked channels and sources,
/// retire emptied nodes from the worklist, merge stats, recycle
/// departures and consumed entries, land staged arrivals, then relist
/// woken sources with their inject owners. Per-channel arrival order
/// is the staging worker's drain order (every channel has exactly one
/// staging node), so the outcome is independent of the worker layout;
/// waits fold into histograms, so merge order is unobservable too.
fn apply(
    shared: &SharedRun,
    main: &mut MainState,
    dec: &mut Decoder,
    scratches: &[Mutex<WorkerScratch>],
) -> usize {
    // ORDERING: Relaxed — apply runs on the main thread alone (the
    // workers idle at the cycle barrier), so pop commits, waiter-list
    // wakes, staged-arrival pushes, and relists are sequential; the
    // drain phase's writes they consume arrived through the barrier
    // the main thread just passed, and the next cycle's barrier
    // publishes everything done here.
    let mut allocator = shared.allocator.lock().expect("arena allocator");
    let mut activity = 0usize;
    // Entered/departed are netted across ALL worker cells before they
    // touch the in-flight gauges: a packet injected by one worker and
    // delivered by another in the same cycle puts its `entered` and
    // `departed` in different cells, and folding cell-by-cell would
    // underflow `in_network`/`in_copies` when the departing cell
    // merges first.
    let mut entered = 0usize;
    let mut departed = 0usize;
    let mut spawned_copies = 0usize;
    let mut departed_copies = 0usize;
    for cell in scratches {
        let mut ws = cell.lock().expect("apply scratch");
        for &(chan, count) in &ws.pops {
            let chan = chan as usize;
            let len = shared.queues.len[chan].load(Relaxed) - count;
            shared.queues.len[chan].store(len, Relaxed);
            shared.counts[chan].store(len, Relaxed);
            // A committed pop is the one event that can give this
            // channel's upstream blockers room: wake every channel —
            // and every injection source — parked on it. (A waiter
            // that finds the FIFO full again, refilled by this
            // cycle's staged arrivals, simply re-parks on its next
            // attempt.)
            let mut waiter = shared.waiter_head[chan].load(Relaxed);
            shared.waiter_head[chan].store(NONE, Relaxed);
            while waiter != NONE {
                let next = shared.waiter_link[waiter as usize].load(Relaxed);
                shared.parked[waiter as usize].store(0, Relaxed);
                activate(shared, waiter as usize);
                waiter = next;
            }
            let mut source = shared.source_waiter_head[chan].load(Relaxed);
            shared.source_waiter_head[chan].store(NONE, Relaxed);
            while source != NONE {
                let slot = source as usize;
                // The cycles the scan skipped would each have counted
                // one stall: settle them now.
                let parked_at = shared.source_parked_at[slot].load(Relaxed);
                main.source_stall_cycles += main.cycle - parked_at;
                shared.source_parked_at[slot].store(u64::MAX, Relaxed);
                main.woken.push(source);
                let next = shared.source_waiter_link[slot].load(Relaxed);
                shared.source_waiter_link[slot].store(NONE, Relaxed);
                source = next;
            }
        }
        ws.pops.clear();
        for &node in &ws.emptied {
            // Guarded: a wake processed earlier in this same apply may
            // have re-readied the node.
            if shared.node_ready[node as usize].load(Relaxed) == 0 {
                shared.active.remove(node as usize);
            }
        }
        ws.emptied.clear();
        let stats = std::mem::take(&mut ws.stats);
        activity += stats.activity;
        main.injected += stats.injected;
        main.pending -= stats.injected;
        main.delivered += stats.delivered;
        entered += stats.entered;
        departed += stats.departed;
        spawned_copies += stats.spawned_copies;
        departed_copies += stats.departed_copies;
        main.replicated += stats.spawned_copies as u64;
        main.dropped_full += stats.dropped_full;
        main.dropped_unroutable += stats.dropped_unroutable;
        main.dropped_ttl += stats.dropped_ttl;
        main.delivered_hops += stats.delivered_hops;
        main.max_hops = main.max_hops.max(stats.max_hops);
        main.dateline_promotions += stats.promotions;
        main.dateline_relief += stats.relief;
        main.source_stall_cycles += stats.source_stalls;
        for class in 0..2 {
            main.class_injected[class] += stats.class_injected[class];
            main.class_delivered[class] += stats.class_delivered[class];
            main.class_dropped[class] += stats.class_dropped[class];
        }
        for &wait in &ws.waits {
            main.waits.record(wait);
        }
        ws.waits.clear();
        for class in 0..2 {
            for &wait in &ws.class_waits[class] {
                main.class_waits[class].record(wait);
            }
            ws.class_waits[class].clear();
        }
        allocator.release_all(ws.freed.drain(..));
        dec.entry_ids.release_all(ws.freed_entries.drain(..));
    }
    main.in_network += entered;
    main.in_network -= departed;
    main.in_copies += entered + spawned_copies;
    main.in_copies -= departed_copies;
    // Dead-target strands from the drain resolve here. Cross-worker
    // order is normalized by channel id: each channel has exactly one
    // draining worker, so per-channel order is drain order and the
    // stable sort makes the merged sequence a pure function of the
    // cycle state, not the worker layout.
    let mut stranded: Vec<(u32, u32)> = Vec::new();
    for cell in scratches {
        let mut ws = cell.lock().expect("apply scratch");
        stranded.append(&mut ws.stranded);
    }
    if !stranded.is_empty() {
        stranded.sort_by_key(|&(chan, _)| chan);
        for (chan, id) in stranded {
            let node = shared.g.arc_target(chan as usize / shared.vcs);
            match shared.stranded_policy {
                StrandedPolicy::Reinject => {
                    shared.arena.cached_next(id).store(NONE, Relaxed);
                    main.backlog.push_back((id, node));
                }
                StrandedPolicy::Drop => {
                    drop_stranded(shared, main, &mut allocator, id);
                }
            }
        }
    }
    for cell in scratches {
        let mut ws = cell.lock().expect("apply scratch");
        for &(chan, id) in &ws.staged {
            shared.queues.staged_len[chan as usize].store(0, Relaxed);
            push_packet(shared, chan as usize, id, main.cycle);
        }
        ws.staged.clear();
        // Replications land after moves: per channel both sequences
        // are the source node's drain order, so the arrival order is a
        // pure function of the cycle state, not the worker layout.
        for spawn in ws.spawned.drain(..) {
            shared.queues.staged_len[spawn.chan as usize].store(0, Relaxed);
            let id = allocator.claim();
            shared
                .arena
                .init(id, spawn.tree_arc, spawn.offered, spawn.vc);
            shared.arena.hops(id).store(spawn.hops, Relaxed);
            push_packet(shared, spawn.chan as usize, id, main.cycle);
        }
    }
    // Woken unicast sources rejoin their owner's inject list (the
    // multicast scan needs no list; its sources have no entry queue,
    // so the head check skips them).
    for woken in main.woken.drain(..) {
        let src = woken as usize;
        if shared.src_listed[src].load(Relaxed) == 0 && shared.src_head[src].load(Relaxed) != NONE {
            shared.src_listed[src].store(1, Relaxed);
            scratches[shared.list_owner(src)]
                .lock()
                .expect("relist scratch")
                .sources
                .push(woken);
        }
    }
    activity
}

/// Fold the accumulators into the report.
#[allow(clippy::too_many_arguments)]
fn finish(
    main: &mut MainState,
    peak: &[AtomicU32],
    delivered_per_link: &[AtomicU64],
    watches: &[Watch],
    arcs: usize,
    vcs: usize,
    router: &dyn Router,
    offered_per_cycle: f64,
    hot_dst: Option<u64>,
    trees: Option<&TreeSet>,
) -> QueueingReport {
    // ORDERING: Relaxed — the worker scope has joined; these are
    // post-run folds on this thread, with visibility from the join.
    let class_stats = hot_dst.map(|_| {
        let build = |class: usize| {
            let waits = &main.class_waits[class];
            ClassStats {
                injected: main.class_injected[class],
                delivered: main.class_delivered[class],
                dropped: main.class_dropped[class],
                wait_mean_cycles: waits.mean(),
                wait_p50_cycles: waits.percentile(0.50),
                wait_p99_cycles: waits.percentile(0.99),
                wait_max_cycles: waits.max(),
            }
        };
        ClassBreakdown {
            hot: build(1),
            background: build(0),
        }
    });

    // Collapse per-channel peaks into the two views the report
    // carries: deepest FIFO per link, deepest FIFO per class.
    let peak_of = |chan: usize| peak[chan].load(Relaxed);
    let peak_occupancy: Vec<u32> = (0..arcs)
        .map(|arc| {
            (0..vcs)
                .map(|vc| peak_of(arc * vcs + vc))
                .max()
                .unwrap_or(0)
        })
        .collect();
    let vc_peak_occupancy: Vec<u32> = (0..vcs)
        .map(|vc| {
            (0..arcs)
                .map(|arc| peak_of(arc * vcs + vc))
                .max()
                .unwrap_or(0)
        })
        .collect();

    // Time-to-reroute: settle only the watches whose death actually
    // fired before the run ended. Deaths apply in timeline order, so
    // the applied ones are exactly the first `link_down_events`
    // watches; a scheduled death past the horizon is neither a
    // reroute nor a failure to reroute. An unresolved watch splits on
    // demand: packets wanted the beam and never rerouted
    // (`reroute_unresolved`) vs nothing ever asked for it
    // (`reroute_no_demand`).
    let mut time_to_reroute_cycles = Vec::new();
    let mut reroute_unresolved = 0u64;
    let mut reroute_no_demand = 0u64;
    for watch in &watches[..main.link_down_events as usize] {
        let resolved = watch.resolved.load(Relaxed);
        if resolved != u64::MAX {
            time_to_reroute_cycles.push(resolved - watch.at_cycle + 1);
        } else if watch.demand.load(Relaxed) != 0 {
            reroute_unresolved += 1;
        } else {
            reroute_no_demand += 1;
        }
    }
    let table_runs_total = router
        .as_repair()
        .map_or(0, |repair| repair.repair_table_runs() as u64);

    QueueingReport {
        router: router.name(),
        offered_per_cycle,
        cycles: main.cycle,
        injected: main.injected,
        delivered: main.delivered,
        dropped_full: main.dropped_full,
        dropped_unroutable: main.dropped_unroutable,
        dropped_ttl: main.dropped_ttl,
        in_flight: main.in_network,
        deadlocked: main.deadlocked,
        vcs,
        dateline_promotions: main.dateline_promotions,
        dateline_relief: main.dateline_relief,
        source_stall_cycles: main.source_stall_cycles,
        delivered_hops: main.delivered_hops,
        max_hops: main.max_hops,
        wait_mean_cycles: main.waits.mean(),
        wait_p50_cycles: main.waits.percentile(0.50),
        wait_p99_cycles: main.waits.percentile(0.99),
        wait_max_cycles: main.waits.max(),
        max_peak_occupancy: peak_occupancy.iter().copied().max().unwrap_or(0),
        peak_occupancy,
        vc_peak_occupancy,
        delivered_per_link: delivered_per_link
            .iter()
            .map(|count| count.load(Relaxed))
            .collect(),
        multicast_groups: main.groups_injected,
        replicated_copies: main.replicated,
        multicast_forwarding_index: trees.map_or(0, TreeSet::forwarding_index),
        class_stats,
        link_down_events: main.link_down_events,
        link_up_events: main.link_up_events,
        capacity_events: main.capacity_events,
        dropped_stranded: main.dropped_stranded,
        stranded_reinjected: main.stranded_reinjected,
        time_to_reroute_cycles,
        reroute_unresolved,
        reroute_no_demand,
        repair_runs_patched: std::mem::take(&mut main.repair_runs_patched),
        repair_rows_patched: main.repair_rows_patched,
        table_runs_total,
        snapshot_publications: main.snapshot_publications,
        snapshot_runs_published: main.snapshot_runs_published,
    }
}
