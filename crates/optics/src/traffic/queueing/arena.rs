//! The packet arena and intrusive channel queues — the queueing
//! engine's storage layer.
//!
//! The pre-arena engine kept one `VecDeque<Packet>` per (link, VC)
//! channel: hundreds of thousands of independently allocated ring
//! buffers whose blocks scatter packets across the heap, so every
//! drain touched allocator metadata and cold cache lines. Here all
//! packet state lives in one structure-of-arrays slab, indexed by a
//! `u32` packet id:
//!
//! * ids are recycled through a free list, so a steady-state run's
//!   working set is its *in-flight* packets, not its packet count —
//!   a million-packet run with 10k in flight touches 10k slots;
//! * each channel's FIFO is an intrusive singly linked list threaded
//!   through the `link` slab (`head`/`tail` per channel), so push/pop
//!   are two or three word writes and the queue nodes are the packets
//!   themselves — no per-channel allocation, ever;
//! * slab fields are atomics (`Relaxed`) because the drain phase
//!   shards channels across workers: every slot has exactly one
//!   writer per phase (the worker owning the packet's current
//!   downstream node), and the phase barriers order everything else.
//!   On x86 a relaxed atomic is an ordinary `mov`. The *free list*
//!   lives apart in [`ArenaAllocator`], touched only by the
//!   single-threaded phases, so the shared slabs stay `&self` all the
//!   way down.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering::Relaxed};

/// The null packet id / null cache / null queue link.
pub(super) const NONE: u32 = u32::MAX;

/// Structure-of-arrays packet slabs, `u32`-indexed. Capacity is fixed
/// at construction (a run can never hold more live packets than its
/// workload has entries); all access is `&self`.
pub(super) struct PacketArena {
    /// Destination node.
    pub dst: Vec<AtomicU32>,
    /// Cycle the packet's injection credit accrued (offer clock).
    pub offered: Vec<AtomicU64>,
    /// Hops taken so far.
    pub hops: Vec<AtomicU32>,
    /// Current dateline VC class (low 8 bits used).
    pub vc: Vec<AtomicU32>,
    /// Cached next-hop arc at the packet's current node, for stateless
    /// routers: [`NONE`] = not computed; invalidated on every move.
    /// This is what makes a blocked head cost a word load per cycle
    /// instead of a router query.
    pub cached_next: Vec<AtomicU32>,
    /// Intrusive FIFO link: the next packet in this packet's channel.
    pub link: Vec<AtomicU32>,
}

impl PacketArena {
    /// Slabs for at most `capacity` simultaneously live packets.
    pub fn with_capacity(capacity: usize) -> Self {
        let slab = |cap: usize| (0..cap).map(|_| AtomicU32::new(0)).collect();
        PacketArena {
            dst: slab(capacity),
            offered: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            hops: slab(capacity),
            vc: slab(capacity),
            cached_next: slab(capacity),
            link: slab(capacity),
        }
    }

    /// Initialize a freshly claimed slot.
    pub fn init(&self, id: u32, dst: u32, offered: u64, vc: u8) {
        let slot = id as usize;
        self.dst[slot].store(dst, Relaxed);
        self.offered[slot].store(offered, Relaxed);
        self.hops[slot].store(0, Relaxed);
        self.vc[slot].store(vc as u32, Relaxed);
        self.cached_next[slot].store(NONE, Relaxed);
        self.link[slot].store(NONE, Relaxed);
    }
}

/// The arena's id supply: fresh slots up to capacity, recycled slots
/// LIFO (hot slots stay cache-hot). Owned by the engine's sequential
/// phases; drain workers hand departures back in per-worker batches.
pub(super) struct ArenaAllocator {
    free: Vec<u32>,
    allocated: u32,
    capacity: u32,
}

impl ArenaAllocator {
    pub fn new(capacity: usize) -> Self {
        ArenaAllocator {
            free: Vec::new(),
            allocated: 0,
            capacity: capacity as u32,
        }
    }

    /// Claim an id, recycling first.
    pub fn claim(&mut self) -> u32 {
        match self.free.pop() {
            Some(id) => id,
            None => {
                assert!(
                    self.allocated < self.capacity,
                    "arena overflow: {} live packets exceed capacity {}",
                    self.allocated,
                    self.capacity
                );
                let id = self.allocated;
                self.allocated += 1;
                id
            }
        }
    }

    /// Return a batch of slots (a drain phase's departures).
    pub fn release_all(&mut self, ids: impl IntoIterator<Item = u32>) {
        self.free.extend(ids);
    }

    /// Live packets = handed out minus recycled. The conservation
    /// invariant: after a run this must equal the report's
    /// `in_flight`.
    pub fn live(&self) -> usize {
        self.allocated as usize - self.free.len()
    }
}

/// Per-channel FIFO heads/tails plus the occupancy words the drain
/// phase's room checks read. One entry per (arc, VC) channel,
/// arc-major — same indexing as the engine's occupancy scoreboard.
pub(super) struct ChannelQueues {
    /// First packet of the FIFO ([`NONE`] = empty).
    pub head: Vec<AtomicU32>,
    /// Last packet of the FIFO ([`NONE`] = empty).
    pub tail: Vec<AtomicU32>,
    /// Committed occupancy. Stable during a drain phase (pops are
    /// batched to the phase boundary), which is what makes room
    /// checks order- and thread-count-independent: a slot freed this
    /// cycle becomes claimable next cycle.
    pub len: Vec<AtomicU32>,
    /// Arrivals staged *this* cycle, counted toward room checks so a
    /// channel is never oversubscribed within the cycle. Written only
    /// by the worker owning the channel's source node.
    pub staged_len: Vec<AtomicU32>,
}

impl ChannelQueues {
    pub fn new(channels: usize) -> Self {
        let zeros = |cap: usize| (0..cap).map(|_| AtomicU32::new(0)).collect();
        ChannelQueues {
            head: (0..channels).map(|_| AtomicU32::new(NONE)).collect(),
            tail: (0..channels).map(|_| AtomicU32::new(NONE)).collect(),
            len: zeros(channels),
            staged_len: zeros(channels),
        }
    }

    /// Append `id` to `chan`'s FIFO, threading the intrusive link.
    /// Returns the new committed length. Sequential phases only
    /// (injection and staged-apply).
    pub fn push(&self, chan: usize, id: u32, links: &[AtomicU32]) -> u32 {
        links[id as usize].store(NONE, Relaxed);
        let tail = self.tail[chan].load(Relaxed);
        if tail == NONE {
            self.head[chan].store(id, Relaxed);
        } else {
            links[tail as usize].store(id, Relaxed);
        }
        self.tail[chan].store(id, Relaxed);
        let len = self.len[chan].load(Relaxed) + 1;
        self.len[chan].store(len, Relaxed);
        len
    }

    /// Unlink `chan`'s current head `id`. Does **not** touch `len` —
    /// the drain phase batches its pop counts to the apply step so
    /// occupancy stays phase-stable. Caller owns the channel's
    /// downstream node.
    pub fn pop_head(&self, chan: usize, id: u32, links: &[AtomicU32]) {
        debug_assert_eq!(self.head[chan].load(Relaxed), id);
        let next = links[id as usize].load(Relaxed);
        self.head[chan].store(next, Relaxed);
        if next == NONE {
            self.tail[chan].store(NONE, Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocator_recycles_slots() {
        let arena = PacketArena::with_capacity(3);
        let mut ids = ArenaAllocator::new(3);
        let a = ids.claim();
        let b = ids.claim();
        arena.init(a, 7, 1, 0);
        arena.init(b, 8, 2, 1);
        assert_eq!((a, b), (0, 1));
        assert_eq!(ids.live(), 2);
        ids.release_all([a]);
        assert_eq!(ids.live(), 1);
        // The freed slot is reused before fresh slots, fully
        // reinitialized.
        let c = ids.claim();
        assert_eq!(c, a);
        arena.init(c, 9, 3, 2);
        assert_eq!(arena.dst[c as usize].load(Relaxed), 9);
        assert_eq!(arena.hops[c as usize].load(Relaxed), 0);
        assert_eq!(arena.cached_next[c as usize].load(Relaxed), NONE);
        assert_eq!(ids.live(), 2);
        ids.release_all([b, c]);
        assert_eq!(ids.live(), 0);
    }

    #[test]
    #[should_panic(expected = "arena overflow")]
    fn arena_overflow_is_loud() {
        let mut ids = ArenaAllocator::new(1);
        ids.claim();
        ids.claim();
    }

    #[test]
    fn channel_fifo_order() {
        let arena = PacketArena::with_capacity(4);
        let mut ids = ArenaAllocator::new(4);
        let queues = ChannelQueues::new(2);
        let handles: Vec<u32> = (0..4)
            .map(|i| {
                let id = ids.claim();
                arena.init(id, i, 0, 0);
                id
            })
            .collect();
        for &id in &handles[..3] {
            queues.push(0, id, &arena.link);
        }
        queues.push(1, handles[3], &arena.link);
        assert_eq!(queues.len[0].load(Relaxed), 3);
        assert_eq!(queues.len[1].load(Relaxed), 1);
        // FIFO: pop order equals push order, per channel.
        let mut order = Vec::new();
        while queues.head[0].load(Relaxed) != NONE {
            let id = queues.head[0].load(Relaxed);
            queues.pop_head(0, id, &arena.link);
            order.push(id);
        }
        assert_eq!(order, &handles[..3]);
        assert_eq!(queues.tail[0].load(Relaxed), NONE);
        assert_eq!(queues.head[1].load(Relaxed), handles[3]);
    }
}
