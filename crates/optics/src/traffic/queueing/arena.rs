//! The packet arena and intrusive channel queues — the queueing
//! engine's storage layer.
//!
//! The pre-arena engine kept one `VecDeque<Packet>` per (link, VC)
//! channel: hundreds of thousands of independently allocated ring
//! buffers whose blocks scatter packets across the heap, so every
//! drain touched allocator metadata and cold cache lines. Here all
//! packet state lives in structure-of-arrays slabs, indexed by a
//! `u32` packet id:
//!
//! * ids are recycled through a free list, so a steady-state run's
//!   working set is its *in-flight* packets, not its packet count —
//!   a million-packet run with 10k in flight touches 10k slots;
//! * the slabs are **chunked** and lazily grown: a fixed-size chunk of
//!   every field materializes the first time an id in its range is
//!   touched, so resident memory tracks the run's live-packet
//!   watermark, not the offered load. A ten-million-packet stream
//!   whose watermark is 2M packets allocates 2M slots' worth of
//!   chunks (~28 bytes each), never the 280 MB a full-length slab
//!   would cost — and the free list's LIFO recycling keeps the
//!   watermark (and the chunk count) at the congestion peak;
//! * each channel's FIFO is an intrusive singly linked list threaded
//!   through the `link` slab (`head`/`tail` per channel), so push/pop
//!   are two or three word writes and the queue nodes are the packets
//!   themselves — no per-channel allocation, ever;
//! * slab fields are atomics (`Relaxed`) because the inject and drain
//!   phases shard packets across workers: every slot has exactly one
//!   writer per phase, and the phase barriers order everything else.
//!   On x86 a relaxed atomic is an ordinary `mov`. The *free list*
//!   lives apart in [`ArenaAllocator`] behind a mutex the parallel
//!   injection phase only touches to refill per-worker id batches, so
//!   the shared slabs stay `&self` all the way down.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering::Relaxed};
use std::sync::OnceLock;

/// The null packet id / null cache / null queue link.
pub(super) const NONE: u32 = u32::MAX;

/// log2 of the chunk size: 64Ki slots ≈ 1.8 MiB per resident chunk.
const CHUNK_BITS: u32 = 16;
/// Packet slots per chunk.
const CHUNK_SLOTS: usize = 1 << CHUNK_BITS;
const OFFSET_MASK: u32 = (CHUNK_SLOTS - 1) as u32;

/// One resident chunk: every per-packet field for a contiguous
/// `CHUNK_SLOTS`-id range.
struct Slab {
    dst: Box<[AtomicU32]>,
    offered: Box<[AtomicU64]>,
    hops: Box<[AtomicU32]>,
    vc: Box<[AtomicU32]>,
    cached_next: Box<[AtomicU32]>,
    link: Box<[AtomicU32]>,
}

impl Slab {
    fn new() -> Self {
        let zeroed = || (0..CHUNK_SLOTS).map(|_| AtomicU32::new(0)).collect();
        Slab {
            dst: zeroed(),
            offered: (0..CHUNK_SLOTS).map(|_| AtomicU64::new(0)).collect(),
            hops: zeroed(),
            vc: zeroed(),
            cached_next: zeroed(),
            link: zeroed(),
        }
    }
}

/// Chunked structure-of-arrays packet slabs, `u32`-indexed. The chunk
/// *table* is sized at construction (a run can never hold more live
/// packets than its workload has entries), but chunks materialize
/// on first touch — all access is `&self`, from any phase's worker.
pub(super) struct PacketArena {
    chunks: Vec<OnceLock<Slab>>,
}

impl PacketArena {
    /// Slabs for at most `capacity` simultaneously live packets.
    /// Allocates only the chunk pointer table (one word per 64Ki
    /// ids); chunks themselves appear as the id watermark grows.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(
            capacity < NONE as usize,
            "arena capacity {capacity} would overflow u32 packet ids"
        );
        PacketArena {
            chunks: (0..capacity.div_ceil(CHUNK_SLOTS))
                .map(|_| OnceLock::new())
                .collect(),
        }
    }

    /// The slot's chunk (materializing it on first touch — a benign
    /// race: `get_or_init` lets one initializer win and drops the
    /// loser) and the offset within it.
    #[inline]
    fn slot(&self, id: u32) -> (&Slab, usize) {
        let chunk = self.chunks[(id >> CHUNK_BITS) as usize].get_or_init(Slab::new);
        (chunk, (id & OFFSET_MASK) as usize)
    }

    /// Chunks resident right now — the memory the run actually
    /// touched, `CHUNK_SLOTS` packet slots each.
    #[cfg(test)]
    pub fn resident_chunks(&self) -> usize {
        self.chunks.iter().filter(|c| c.get().is_some()).count()
    }

    /// Destination node (unicast) or tree arc (multicast).
    #[inline]
    pub fn dst(&self, id: u32) -> &AtomicU32 {
        let (chunk, offset) = self.slot(id);
        &chunk.dst[offset]
    }

    /// Cycle the packet's injection credit accrued (offer clock).
    #[inline]
    pub fn offered(&self, id: u32) -> &AtomicU64 {
        let (chunk, offset) = self.slot(id);
        &chunk.offered[offset]
    }

    /// Hops taken so far.
    #[inline]
    pub fn hops(&self, id: u32) -> &AtomicU32 {
        let (chunk, offset) = self.slot(id);
        &chunk.hops[offset]
    }

    /// Current dateline VC class (low 8 bits used).
    #[inline]
    pub fn vc(&self, id: u32) -> &AtomicU32 {
        let (chunk, offset) = self.slot(id);
        &chunk.vc[offset]
    }

    /// Cached next-hop arc at the packet's current node, for stateless
    /// routers: [`NONE`] = not computed; invalidated on every move.
    /// This is what makes a blocked head cost a word load per cycle
    /// instead of a router query.
    #[inline]
    pub fn cached_next(&self, id: u32) -> &AtomicU32 {
        let (chunk, offset) = self.slot(id);
        &chunk.cached_next[offset]
    }

    /// Intrusive FIFO link: the next packet in this packet's channel.
    #[inline]
    pub fn link(&self, id: u32) -> &AtomicU32 {
        let (chunk, offset) = self.slot(id);
        &chunk.link[offset]
    }

    /// Initialize a freshly claimed slot.
    pub fn init(&self, id: u32, dst: u32, offered: u64, vc: u8) {
        // ORDERING: Relaxed stores — the slot id was claimed from the
        // allocator (mutex or sequential phase), so this worker is the
        // slot's sole owner until it publishes the id into a channel
        // FIFO, and that publication happens in a later phase beyond a
        // Barrier::wait()/lock release that orders these writes first.
        let (chunk, offset) = self.slot(id);
        chunk.dst[offset].store(dst, Relaxed);
        chunk.offered[offset].store(offered, Relaxed);
        chunk.hops[offset].store(0, Relaxed);
        chunk.vc[offset].store(vc as u32, Relaxed);
        chunk.cached_next[offset].store(NONE, Relaxed);
        chunk.link[offset].store(NONE, Relaxed);
    }
}

/// One resident chunk of pending-injection entries.
struct EntryChunk {
    dst: Box<[AtomicU64]>,
    offered: Box<[AtomicU64]>,
    link: Box<[AtomicU32]>,
}

impl EntryChunk {
    fn new() -> Self {
        let u64s = || (0..CHUNK_SLOTS).map(|_| AtomicU64::new(0)).collect();
        EntryChunk {
            dst: u64s(),
            offered: u64s(),
            link: (0..CHUNK_SLOTS).map(|_| AtomicU32::new(0)).collect(),
        }
    }
}

/// Chunked slab of *pending* workload entries: pairs the decode step
/// has pulled from the stream but whose sources have not yet injected.
/// Destinations stay `u64` (an off-fabric destination is legal — it
/// drops as unroutable at injection), `offered` is the entry's
/// offer-clock cycle, and `link` threads each source's pending FIFO.
/// Chunked like [`PacketArena`], so a backlog of `k` entries costs
/// `O(k)` resident memory whatever the stream length: the live-
/// watermark memory model, applied to the injection queue as well as
/// the in-flight packets.
pub(super) struct EntryArena {
    chunks: Vec<OnceLock<EntryChunk>>,
}

impl EntryArena {
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(
            capacity < NONE as usize,
            "entry capacity {capacity} would overflow u32 entry ids"
        );
        EntryArena {
            chunks: (0..capacity.div_ceil(CHUNK_SLOTS))
                .map(|_| OnceLock::new())
                .collect(),
        }
    }

    #[inline]
    fn slot(&self, id: u32) -> (&EntryChunk, usize) {
        let chunk = self.chunks[(id >> CHUNK_BITS) as usize].get_or_init(EntryChunk::new);
        (chunk, (id & OFFSET_MASK) as usize)
    }

    /// Destination node — possibly off-fabric.
    #[inline]
    pub fn dst(&self, id: u32) -> &AtomicU64 {
        let (chunk, offset) = self.slot(id);
        &chunk.dst[offset]
    }

    /// Cycle the entry's injection credit accrued (offer clock).
    #[inline]
    pub fn offered(&self, id: u32) -> &AtomicU64 {
        let (chunk, offset) = self.slot(id);
        &chunk.offered[offset]
    }

    /// Intrusive FIFO link: the source's next pending entry.
    #[inline]
    pub fn link(&self, id: u32) -> &AtomicU32 {
        let (chunk, offset) = self.slot(id);
        &chunk.link[offset]
    }

    /// Initialize a freshly claimed entry (link starts [`NONE`]).
    pub fn init(&self, id: u32, dst: u64, offered: u64) {
        // ORDERING: Relaxed stores — entries are claimed and written
        // by the sequential decode step only; injection workers read
        // them after the phase barrier that starts the inject phase.
        let (chunk, offset) = self.slot(id);
        chunk.dst[offset].store(dst, Relaxed);
        chunk.offered[offset].store(offered, Relaxed);
        chunk.link[offset].store(NONE, Relaxed);
    }
}

/// The arena's id supply: fresh slots up to capacity, recycled slots
/// LIFO (hot slots stay cache-hot). Sequential phases claim directly;
/// the parallel injection phase refills per-worker id batches through
/// a mutex around this allocator, one lock per
/// [`Self::claim_batch`] — not per packet.
pub(super) struct ArenaAllocator {
    free: Vec<u32>,
    allocated: u32,
    capacity: u32,
}

impl ArenaAllocator {
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity < NONE as usize,
            "arena capacity {capacity} would overflow u32 packet ids"
        );
        ArenaAllocator {
            free: Vec::new(),
            allocated: 0,
            capacity: capacity as u32,
        }
    }

    /// Claim an id, recycling first.
    pub fn claim(&mut self) -> u32 {
        match self.free.pop() {
            Some(id) => id,
            None => {
                assert!(
                    self.allocated < self.capacity,
                    "arena overflow: {} live packets exceed capacity {}",
                    self.allocated,
                    self.capacity
                );
                let id = self.allocated;
                self.allocated += 1;
                id
            }
        }
    }

    /// Claim up to `want` ids into `out` (recycled first, then fresh);
    /// stops early only at capacity. Injection workers refill their
    /// local pools with this — one lock acquisition per batch.
    pub fn claim_batch(&mut self, out: &mut Vec<u32>, want: usize) {
        for _ in 0..want {
            if let Some(id) = self.free.pop() {
                out.push(id);
            } else if self.allocated < self.capacity {
                out.push(self.allocated);
                self.allocated += 1;
            } else {
                break;
            }
        }
    }

    /// Return a batch of slots (a drain phase's departures, or a
    /// worker pool's leftovers at run end).
    pub fn release_all(&mut self, ids: impl IntoIterator<Item = u32>) {
        self.free.extend(ids);
    }

    /// Live packets = handed out minus recycled. The conservation
    /// invariant: after a run (with every worker pool returned) this
    /// must equal the report's `in_flight`.
    pub fn live(&self) -> usize {
        self.allocated as usize - self.free.len()
    }
}

/// Per-channel FIFO heads/tails plus the occupancy words the drain
/// phase's room checks read. One entry per (arc, VC) channel,
/// arc-major — same indexing as the engine's occupancy scoreboard.
pub(super) struct ChannelQueues {
    /// First packet of the FIFO ([`NONE`] = empty).
    pub head: Vec<AtomicU32>,
    /// Last packet of the FIFO ([`NONE`] = empty).
    pub tail: Vec<AtomicU32>,
    /// Committed occupancy. Stable during a drain phase (pops are
    /// batched to the phase boundary), which is what makes room
    /// checks order- and thread-count-independent: a slot freed this
    /// cycle becomes claimable next cycle.
    pub len: Vec<AtomicU32>,
    /// Arrivals staged *this* cycle, counted toward room checks so a
    /// channel is never oversubscribed within the cycle. Written only
    /// by the worker owning the channel's source node.
    pub staged_len: Vec<AtomicU32>,
}

impl ChannelQueues {
    pub fn new(channels: usize) -> Self {
        let zeros = |cap: usize| (0..cap).map(|_| AtomicU32::new(0)).collect();
        ChannelQueues {
            head: (0..channels).map(|_| AtomicU32::new(NONE)).collect(),
            tail: (0..channels).map(|_| AtomicU32::new(NONE)).collect(),
            len: zeros(channels),
            staged_len: zeros(channels),
        }
    }

    /// Append `id` to `chan`'s FIFO, threading the intrusive link.
    /// Returns the new committed length. Callers hold per-channel
    /// ownership (injection: the channel's source node; apply: the
    /// main thread).
    pub fn push(&self, chan: usize, id: u32, arena: &PacketArena) -> u32 {
        // ORDERING: Relaxed throughout — every word touched here
        // (head/tail/len of `chan`, the pushed packet's link) is owned
        // by the calling worker for the duration of the phase: a
        // channel is pushed only by its source node's inject worker or
        // by the sequential apply step, never both in one phase. The
        // load+store on `len` is a plain RMW on a single-writer word.
        // Cross-phase readers (drain workers, room checks) are ordered
        // behind these writes by the engine's phase barrier.
        arena.link(id).store(NONE, Relaxed);
        let tail = self.tail[chan].load(Relaxed);
        if tail == NONE {
            self.head[chan].store(id, Relaxed);
        } else {
            arena.link(tail).store(id, Relaxed);
        }
        self.tail[chan].store(id, Relaxed);
        let len = self.len[chan].load(Relaxed) + 1;
        self.len[chan].store(len, Relaxed);
        len
    }

    /// Unlink `chan`'s current head `id`. Does **not** touch `len` —
    /// the drain phase batches its pop counts to the apply step so
    /// occupancy stays phase-stable. Caller owns the channel's
    /// downstream node.
    pub fn pop_head(&self, chan: usize, id: u32, arena: &PacketArena) {
        // ORDERING: Relaxed — a channel is drained only by the worker
        // owning its downstream node, so head/tail/link are
        // single-writer during the drain phase; the inject-side writes
        // they chain onto were ordered ahead by the phase barrier.
        debug_assert_eq!(self.head[chan].load(Relaxed), id);
        let next = arena.link(id).load(Relaxed);
        self.head[chan].store(next, Relaxed);
        if next == NONE {
            self.tail[chan].store(NONE, Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocator_recycles_slots() {
        let arena = PacketArena::with_capacity(3);
        let mut ids = ArenaAllocator::new(3);
        let a = ids.claim();
        let b = ids.claim();
        arena.init(a, 7, 1, 0);
        arena.init(b, 8, 2, 1);
        assert_eq!((a, b), (0, 1));
        assert_eq!(ids.live(), 2);
        ids.release_all([a]);
        assert_eq!(ids.live(), 1);
        // The freed slot is reused before fresh slots, fully
        // reinitialized.
        let c = ids.claim();
        assert_eq!(c, a);
        arena.init(c, 9, 3, 2);
        assert_eq!(arena.dst(c).load(Relaxed), 9);
        assert_eq!(arena.hops(c).load(Relaxed), 0);
        assert_eq!(arena.cached_next(c).load(Relaxed), NONE);
        assert_eq!(ids.live(), 2);
        ids.release_all([b, c]);
        assert_eq!(ids.live(), 0);
    }

    #[test]
    fn batch_claims_stop_at_capacity() {
        let mut ids = ArenaAllocator::new(5);
        let a = ids.claim();
        let b = ids.claim();
        ids.release_all([a, b]);
        let mut pool = Vec::new();
        ids.claim_batch(&mut pool, 4);
        assert_eq!(pool, vec![1, 0, 2, 3], "recycled LIFO, then fresh");
        // Fresh ids stop at capacity instead of panicking — partial
        // batches are the worker pools' back-off signal.
        ids.claim_batch(&mut pool, 100);
        assert_eq!(pool, vec![1, 0, 2, 3, 4]);
        assert_eq!(ids.live(), 5);
    }

    #[test]
    #[should_panic(expected = "arena overflow")]
    fn arena_overflow_is_loud() {
        let mut ids = ArenaAllocator::new(1);
        ids.claim();
        ids.claim();
    }

    #[test]
    fn chunks_materialize_lazily_with_the_id_watermark() {
        // Capacity spans many chunks, but only touched chunks are
        // resident — the live-watermark memory model.
        let arena = PacketArena::with_capacity(5 * CHUNK_SLOTS + 7);
        assert_eq!(arena.resident_chunks(), 0);
        arena.init(0, 1, 2, 0);
        assert_eq!(arena.resident_chunks(), 1);
        arena.init((CHUNK_SLOTS - 1) as u32, 1, 2, 0);
        assert_eq!(arena.resident_chunks(), 1, "same chunk");
        let far = (3 * CHUNK_SLOTS + 5) as u32;
        arena.init(far, 42, 9, 1);
        assert_eq!(arena.resident_chunks(), 2, "only touched chunks");
        assert_eq!(arena.dst(far).load(Relaxed), 42);
        assert_eq!(arena.offered(far).load(Relaxed), 9);
        assert_eq!(arena.vc(far).load(Relaxed), 1);
        // The last, partial chunk's ids resolve too.
        let last = (5 * CHUNK_SLOTS + 6) as u32;
        arena.init(last, 7, 1, 0);
        assert_eq!(arena.dst(last).load(Relaxed), 7);
        assert_eq!(arena.resident_chunks(), 3);
    }

    #[test]
    fn entry_slab_round_trips_and_grows_lazily() {
        let entries = EntryArena::with_capacity(2 * CHUNK_SLOTS);
        entries.init(0, u64::MAX - 1, 17);
        assert_eq!(entries.dst(0).load(Relaxed), u64::MAX - 1, "u64 dsts");
        assert_eq!(entries.offered(0).load(Relaxed), 17);
        assert_eq!(entries.link(0).load(Relaxed), NONE);
        // Only the touched chunk is resident.
        assert!(entries.chunks[1].get().is_none());
        let far = CHUNK_SLOTS as u32 + 3;
        entries.init(far, 5, 1);
        assert_eq!(entries.dst(far).load(Relaxed), 5);
        assert!(entries.chunks[1].get().is_some());
    }

    #[test]
    fn channel_fifo_order() {
        let arena = PacketArena::with_capacity(4);
        let mut ids = ArenaAllocator::new(4);
        let queues = ChannelQueues::new(2);
        let handles: Vec<u32> = (0..4)
            .map(|i| {
                let id = ids.claim();
                arena.init(id, i, 0, 0);
                id
            })
            .collect();
        for &id in &handles[..3] {
            queues.push(0, id, &arena);
        }
        queues.push(1, handles[3], &arena);
        assert_eq!(queues.len[0].load(Relaxed), 3);
        assert_eq!(queues.len[1].load(Relaxed), 1);
        // FIFO: pop order equals push order, per channel.
        let mut order = Vec::new();
        while queues.head[0].load(Relaxed) != NONE {
            let id = queues.head[0].load(Relaxed);
            queues.pop_head(0, id, &arena);
            order.push(id);
        }
        assert_eq!(order, &handles[..3]);
        assert_eq!(queues.tail[0].load(Relaxed), NONE);
        assert_eq!(queues.head[1].load(Relaxed), handles[3]);
    }
}
