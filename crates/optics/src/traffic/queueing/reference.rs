//! The pre-arena queueing engine, frozen as an ablation baseline.
//!
//! This is the engine as it stood before the packet-arena /
//! active-worklist / parallel-drain rewrite: one `VecDeque<Packet>`
//! per (link, VC) channel, a full `O(arcs × vcs)` scan every cycle,
//! one router query per drain attempt (blocked heads re-ask every
//! cycle), and *live* room credits — a slot freed earlier in the scan
//! is claimable later in the same cycle, which ties outcomes to scan
//! order and is exactly what the rewrite's boundary credits removed
//! to make sharded draining deterministic.
//!
//! It exists to be measured against: the `routing_sim` bench asserts
//! the rewritten [`super::QueueingEngine`] clears ≥ 5× this engine's
//! cycles/second on the hotspot acceptance shape, and the integration
//! tests check the two engines agree wherever the credit-timing
//! difference cannot matter (uncontended and delivery-only
//! scenarios). Do not grow features here — it is a yardstick, not a
//! product.

use super::super::report::{percentile_u64, ClassBreakdown, ClassStats, QueueingReport};
use super::{arc_of, ContentionPolicy, LinkOccupancy, QueueConfig};
use otis_core::{Dateline, DigraphFamily, Router};
use otis_digraph::Digraph;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// A packet in flight. `offered_cycle` is when the packet's injection
/// credit accrued, not when a stalled source finally bought it a
/// buffer slot — so queueing delay includes source stalling.
#[derive(Debug, Clone, Copy)]
struct Packet {
    dst: u64,
    offered_cycle: u64,
    hops: u32,
    /// Dateline VC class the packet currently occupies.
    vc: u8,
}

/// The pre-rewrite cycle-accurate queueing simulator. Same model and
/// report type as [`super::QueueingEngine`], legacy hot path and
/// legacy live-credit semantics. See the module docs for why it is
/// kept.
pub struct ReferenceEngine {
    g: Arc<Digraph>,
    config: QueueConfig,
    /// One counter per (arc, VC class), arc-major — the live
    /// occupancy scoreboard behind [`LinkOccupancy`].
    counts: Arc<[AtomicU32]>,
    /// The dateline wrap set, computed once per engine.
    dateline: Arc<Dateline>,
}

impl ReferenceEngine {
    /// Engine over a materialized fabric digraph.
    pub fn new(g: Digraph, config: QueueConfig) -> Self {
        assert!(
            config.buffers >= 1,
            "need at least one buffer slot per virtual channel"
        );
        assert!(
            config.wavelengths >= 1,
            "need at least one wavelength channel per link"
        );
        assert!(
            (1..=u8::MAX as usize).contains(&config.vcs),
            "need 1..=255 virtual channels per link, got {}",
            config.vcs
        );
        let counts: Vec<AtomicU32> = (0..g.arc_count() * config.vcs)
            .map(|_| AtomicU32::new(0))
            .collect();
        let g = Arc::new(g);
        let dateline = Arc::new(Dateline::new(Arc::clone(&g), config.vcs));
        ReferenceEngine {
            g,
            config,
            counts: counts.into(),
            dateline,
        }
    }

    /// Engine over any family (materializes it first).
    pub fn from_family<F: DigraphFamily>(family: &F, config: QueueConfig) -> Self {
        Self::new(family.digraph(), config)
    }

    /// The fabric's node count.
    pub fn node_count(&self) -> u64 {
        self.g.node_count() as u64
    }

    /// The dateline discipline, shared like the main engine's.
    pub fn dateline(&self) -> Arc<Dateline> {
        Arc::clone(&self.dateline)
    }

    /// A live view of this engine's buffer occupancy (unlike the main
    /// engine's cycle-stable view, this one moves mid-cycle — the
    /// legacy behavior).
    pub fn occupancy(&self) -> LinkOccupancy {
        LinkOccupancy {
            g: Arc::clone(&self.g),
            counts: Arc::clone(&self.counts),
            // The reference engine has no link dynamics: zero fade
            // penalty on every arc, so the view reads pure occupancy.
            penalty: (0..self.g.arc_count()).map(|_| AtomicU32::new(0)).collect(),
            vcs: self.config.vcs,
        }
    }

    /// The arc `from → to`, if present.
    fn arc_of(&self, from: u64, to: u64) -> Option<usize> {
        arc_of(&self.g, from, to)
    }

    /// As [`super::QueueingEngine::run`], on the legacy hot path.
    pub fn run(
        &self,
        router: &dyn Router,
        workload: &[(u64, u64)],
        offered_per_cycle: f64,
    ) -> QueueingReport {
        self.run_classified(router, workload, offered_per_cycle, None)
    }

    /// As [`super::QueueingEngine::run_streamed`], by materializing
    /// the source — the reference engine optimizes for obvious
    /// correctness, not memory, so it pays the pair vector and reuses
    /// the audited sequential path unchanged.
    pub fn run_streamed(
        &self,
        router: &dyn Router,
        source: &super::super::workload::WorkloadSource,
        offered_per_cycle: f64,
    ) -> QueueingReport {
        self.run(router, &source.materialize(), offered_per_cycle)
    }

    /// As [`super::QueueingEngine::run_classified`], on the legacy hot
    /// path.
    pub fn run_classified(
        &self,
        router: &dyn Router,
        workload: &[(u64, u64)],
        offered_per_cycle: f64,
        hot_dst: Option<u64>,
    ) -> QueueingReport {
        assert!(
            offered_per_cycle > 0.0,
            "offered load must be positive, got {offered_per_cycle}"
        );
        let n = self.node_count();
        assert_eq!(
            router.node_count(),
            n,
            "router covers {} nodes but the fabric has {n}",
            router.node_count()
        );
        let arcs = self.g.arc_count();
        let vcs = self.config.vcs;
        let channels = arcs * vcs;
        let dateline = &self.dateline;
        let hop_limit = self
            .config
            .hop_limit
            .unwrap_or_else(|| (2 * n).max(64) as u32);
        let buffers = self.config.buffers;
        let wavelengths = self.config.wavelengths;

        let mut queues: Vec<VecDeque<Packet>> = (0..channels).map(|_| VecDeque::new()).collect();
        // ORDERING: Relaxed everywhere this run touches the occupancy
        // scoreboard — the reference engine is single-threaded, so the
        // counters are atomic only because the `LinkOccupancy` type is
        // shared with the parallel engine; there is no concurrent
        // writer to order against, and adaptive routers probe from
        // this same thread.
        for count in self.counts.iter() {
            count.store(0, Ordering::Relaxed);
        }
        let mut peak = vec![0u32; channels];
        // Arrivals staged during the drain phase so a packet moves at
        // most one hop per cycle; `staged_len[chan]` counts them
        // toward the capacity check before they land in the FIFO.
        let mut staged: Vec<(usize, Packet)> = Vec::new();
        let mut staged_len = vec![0u32; channels];
        // Per-(link, class) head-of-line block flags, reused across
        // the drain loop.
        let mut vc_blocked = vec![false; vcs];

        // Per-source injection queues: each source owns its packets in
        // workload order, so a backpressured source stalls only
        // itself.
        let mut sources: Vec<VecDeque<usize>> = vec![VecDeque::new(); n as usize];
        for (index, &(src, _)) in workload.iter().enumerate() {
            assert!(
                src < n,
                "workload source {src} is not a fabric node (fabric has {n})"
            );
            sources[src as usize].push_back(index);
        }
        let source_ids: Vec<usize> = (0..n as usize)
            .filter(|&src| !sources[src].is_empty())
            .collect();

        let mut injected = 0usize;
        let mut pending = workload.len();
        let mut delivered = 0usize;
        let mut dropped_full = 0usize;
        let mut dropped_unroutable = 0usize;
        let mut dropped_ttl = 0usize;
        let mut delivered_hops = 0u64;
        let mut max_hops = 0u32;
        let mut waits: Vec<u64> = Vec::with_capacity(workload.len());
        let mut deadlocked = false;
        let mut dateline_promotions = 0u64;
        let mut dateline_relief = 0u64;
        let mut source_stall_cycles = 0u64;
        let mut delivered_per_link = vec![0u64; arcs];

        // Per-class (background = 0, hot = 1) accounting, populated
        // only when the run is classified.
        let classified = hot_dst.is_some();
        let class_of = |dst: u64| usize::from(hot_dst == Some(dst));
        let mut class_injected = [0usize; 2];
        let mut class_delivered = [0usize; 2];
        let mut class_dropped = [0usize; 2];
        let mut class_waits: [Vec<u64>; 2] = [Vec::new(), Vec::new()];

        let mut in_network = 0usize;
        let mut cycle = 0u64;
        // Cycle the `i`-th packet's injection credit accrues.
        let offer_cycle =
            |i: usize| (((i + 1) as f64 / offered_per_cycle).ceil() as u64).saturating_sub(1);

        let bump = |counts: &Arc<[AtomicU32]>, chan: usize, delta: i32| {
            if delta >= 0 {
                counts[chan].fetch_add(delta as u32, Ordering::Relaxed);
            } else {
                counts[chan].fetch_sub((-delta) as u32, Ordering::Relaxed);
            }
        };

        while (pending > 0 || in_network > 0) && cycle < self.config.max_cycles {
            let mut activity = 0usize;

            // --- injection phase -------------------------------------
            let scan_count = if pending == 0 { 0 } else { source_ids.len() };
            let source_start = if source_ids.is_empty() {
                0
            } else {
                cycle as usize % source_ids.len()
            };
            for scan in 0..scan_count {
                let src = source_ids[(source_start + scan) % source_ids.len()];
                while let Some(&index) = sources[src].front() {
                    if offer_cycle(index) > cycle {
                        break;
                    }
                    let (_, dst) = workload[index];
                    let class = class_of(dst);
                    if src as u64 == dst {
                        sources[src].pop_front();
                        pending -= 1;
                        injected += 1;
                        delivered += 1;
                        class_injected[class] += 1;
                        class_delivered[class] += 1;
                        let wait = cycle - offer_cycle(index);
                        waits.push(wait);
                        if classified {
                            class_waits[class].push(wait);
                        }
                        activity += 1;
                        continue;
                    }
                    let arc = router
                        .next_hop_on_vc(src as u64, dst, 0)
                        .and_then(|next| self.arc_of(src as u64, next));
                    let Some(arc) = arc else {
                        sources[src].pop_front();
                        pending -= 1;
                        injected += 1;
                        dropped_unroutable += 1;
                        class_injected[class] += 1;
                        class_dropped[class] += 1;
                        activity += 1;
                        continue;
                    };
                    let vc0 = dateline.next_class_arc(0, arc);
                    let chan = arc * vcs + vc0 as usize;
                    if queues[chan].len() < buffers {
                        sources[src].pop_front();
                        pending -= 1;
                        if vc0 > 0 {
                            dateline_promotions += 1;
                        }
                        queues[chan].push_back(Packet {
                            dst,
                            offered_cycle: offer_cycle(index),
                            hops: 0,
                            vc: vc0,
                        });
                        bump(&self.counts, chan, 1);
                        peak[chan] = peak[chan].max(queues[chan].len() as u32);
                        in_network += 1;
                        injected += 1;
                        class_injected[class] += 1;
                        activity += 1;
                    } else {
                        match self.config.policy {
                            ContentionPolicy::TailDrop => {
                                sources[src].pop_front();
                                pending -= 1;
                                injected += 1;
                                dropped_full += 1;
                                class_injected[class] += 1;
                                class_dropped[class] += 1;
                                activity += 1;
                            }
                            ContentionPolicy::Backpressure => {
                                source_stall_cycles += 1;
                                break;
                            }
                        }
                    }
                }
            }

            // --- drain phase -----------------------------------------
            // The legacy full scan: every arc, every cycle, rotated.
            let link_start = if arcs == 0 { 0 } else { cycle as usize % arcs };
            let vc_start = cycle as usize % vcs;
            for step in 0..arcs {
                let arc = (link_start + step) % arcs;
                let arrive_at = self.g.arc_target(arc) as u64;
                let mut budget = wavelengths;
                vc_blocked.fill(false);
                'link: loop {
                    let mut progressed = false;
                    for offset in 0..vcs {
                        if budget == 0 {
                            break 'link;
                        }
                        let vc = (vc_start + offset) % vcs;
                        if vc_blocked[vc] {
                            continue;
                        }
                        let chan = arc * vcs + vc;
                        let Some(&head) = queues[chan].front() else {
                            vc_blocked[vc] = true;
                            continue;
                        };
                        let hops_after = head.hops + 1;
                        if head.dst == arrive_at {
                            queues[chan].pop_front();
                            bump(&self.counts, chan, -1);
                            in_network -= 1;
                            delivered += 1;
                            class_delivered[class_of(head.dst)] += 1;
                            delivered_per_link[arc] += 1;
                            delivered_hops += hops_after as u64;
                            max_hops = max_hops.max(hops_after);
                            let wait = cycle + 1 - head.offered_cycle - hops_after as u64;
                            waits.push(wait);
                            if classified {
                                class_waits[class_of(head.dst)].push(wait);
                            }
                            activity += 1;
                            budget -= 1;
                            progressed = true;
                            continue;
                        }
                        if hops_after >= hop_limit {
                            queues[chan].pop_front();
                            bump(&self.counts, chan, -1);
                            in_network -= 1;
                            dropped_ttl += 1;
                            class_dropped[class_of(head.dst)] += 1;
                            activity += 1;
                            budget -= 1;
                            progressed = true;
                            continue;
                        }
                        let next_arc = router
                            .next_hop_on_vc(arrive_at, head.dst, head.vc)
                            .and_then(|next| self.arc_of(arrive_at, next));
                        let Some(next_arc) = next_arc else {
                            queues[chan].pop_front();
                            bump(&self.counts, chan, -1);
                            in_network -= 1;
                            dropped_unroutable += 1;
                            class_dropped[class_of(head.dst)] += 1;
                            activity += 1;
                            budget -= 1;
                            progressed = true;
                            continue;
                        };
                        let next_vc = dateline.next_class_arc(head.vc, next_arc);
                        let next_chan = next_arc * vcs + next_vc as usize;
                        // Live credits: same-cycle pops already freed
                        // room for later-scanned arcs.
                        let has_room =
                            queues[next_chan].len() + (staged_len[next_chan] as usize) < buffers;
                        let relief = !has_room
                            && self.config.policy == ContentionPolicy::Backpressure
                            && dateline.needs_relief(head.vc, next_arc);
                        if relief {
                            dateline_relief += 1;
                        }
                        if has_room || relief {
                            let mut packet = queues[chan].pop_front().expect("head exists");
                            bump(&self.counts, chan, -1);
                            packet.hops = hops_after;
                            if next_vc > packet.vc {
                                dateline_promotions += 1;
                            }
                            packet.vc = next_vc;
                            staged_len[next_chan] += 1;
                            bump(&self.counts, next_chan, 1);
                            staged.push((next_chan, packet));
                            activity += 1;
                            budget -= 1;
                            progressed = true;
                        } else {
                            match self.config.policy {
                                ContentionPolicy::TailDrop => {
                                    queues[chan].pop_front();
                                    bump(&self.counts, chan, -1);
                                    in_network -= 1;
                                    dropped_full += 1;
                                    class_dropped[class_of(head.dst)] += 1;
                                    activity += 1;
                                    budget -= 1;
                                    progressed = true;
                                }
                                // Head-of-line block — this class only.
                                ContentionPolicy::Backpressure => vc_blocked[vc] = true,
                            }
                        }
                    }
                    if !progressed {
                        break;
                    }
                }
            }
            for (chan, packet) in staged.drain(..) {
                queues[chan].push_back(packet);
                peak[chan] = peak[chan].max(queues[chan].len() as u32);
            }
            staged_len.fill(0);

            cycle += 1;
            if activity == 0 && in_network > 0 {
                deadlocked = true;
                break;
            }
        }

        let in_flight = in_network;
        waits.sort_unstable();
        let wait_mean = |waits: &[u64]| {
            if waits.is_empty() {
                0.0
            } else {
                waits.iter().sum::<u64>() as f64 / waits.len() as f64
            }
        };
        let wait_mean_cycles = wait_mean(&waits);

        let class_stats = hot_dst.map(|_| {
            let mut build = |class: usize| {
                class_waits[class].sort_unstable();
                let waits = &class_waits[class];
                ClassStats {
                    injected: class_injected[class],
                    delivered: class_delivered[class],
                    dropped: class_dropped[class],
                    wait_mean_cycles: wait_mean(waits),
                    wait_p50_cycles: percentile_u64(waits, 0.50),
                    wait_p99_cycles: percentile_u64(waits, 0.99),
                    wait_max_cycles: waits.last().copied().unwrap_or(0),
                }
            };
            ClassBreakdown {
                hot: build(1),
                background: build(0),
            }
        });

        let peak_occupancy: Vec<u32> = (0..arcs)
            .map(|arc| (0..vcs).map(|vc| peak[arc * vcs + vc]).max().unwrap_or(0))
            .collect();
        let vc_peak_occupancy: Vec<u32> = (0..vcs)
            .map(|vc| (0..arcs).map(|arc| peak[arc * vcs + vc]).max().unwrap_or(0))
            .collect();

        QueueingReport {
            router: router.name(),
            offered_per_cycle,
            cycles: cycle,
            injected,
            delivered,
            dropped_full,
            dropped_unroutable,
            dropped_ttl,
            in_flight,
            deadlocked,
            vcs,
            dateline_promotions,
            dateline_relief,
            source_stall_cycles,
            delivered_hops,
            max_hops,
            wait_mean_cycles,
            wait_p50_cycles: percentile_u64(&waits, 0.50),
            wait_p99_cycles: percentile_u64(&waits, 0.99),
            wait_max_cycles: waits.last().copied().unwrap_or(0),
            max_peak_occupancy: peak_occupancy.iter().copied().max().unwrap_or(0),
            peak_occupancy,
            vc_peak_occupancy,
            delivered_per_link,
            multicast_groups: 0,
            replicated_copies: 0,
            multicast_forwarding_index: 0,
            class_stats,
            link_down_events: 0,
            link_up_events: 0,
            capacity_events: 0,
            dropped_stranded: 0,
            stranded_reinjected: 0,
            time_to_reroute_cycles: Vec::new(),
            reroute_unresolved: 0,
            reroute_no_demand: 0,
            repair_runs_patched: Vec::new(),
            repair_rows_patched: 0,
            table_runs_total: 0,
            snapshot_publications: 0,
            snapshot_runs_published: 0,
        }
    }

    /// As [`super::QueueingEngine::run_multicast`], on the legacy hot
    /// path: the same replication rule — one copy per tree arc,
    /// spawned at branch nodes, delivery counted per destination leaf,
    /// `injected_leaves = delivered + dropped + in_flight` — over the
    /// full `O(arcs × vcs)` scan and live room credits. The
    /// differential battery pins the rewritten engine against this on
    /// uncontended runs, where credit timing cannot matter.
    pub fn run_multicast(
        &self,
        router: &dyn Router,
        groups: &[crate::traffic::MulticastGroup],
        offered_per_cycle: f64,
    ) -> QueueingReport {
        assert!(
            offered_per_cycle > 0.0,
            "offered load must be positive, got {offered_per_cycle}"
        );
        let n = self.node_count();
        assert_eq!(
            router.node_count(),
            n,
            "router covers {} nodes but the fabric has {n}",
            router.node_count()
        );
        let trees = super::TreeSet::build(&self.g, router, groups);
        let arcs = self.g.arc_count();
        let vcs = self.config.vcs;
        let channels = arcs * vcs;
        let dateline = &self.dateline;
        let hop_limit = self
            .config
            .hop_limit
            .unwrap_or_else(|| (2 * n).max(64) as u32);
        let buffers = self.config.buffers;
        let wavelengths = self.config.wavelengths;

        /// One tree copy in flight.
        #[derive(Clone, Copy)]
        struct Copy {
            tree_arc: u32,
            offered_cycle: u64,
            hops: u32,
            vc: u8,
        }

        let mut queues: Vec<VecDeque<Copy>> = (0..channels).map(|_| VecDeque::new()).collect();
        // ORDERING: Relaxed — single-threaded run; see the unicast
        // runner's note. Atomic type shared with `LinkOccupancy`, no
        // concurrent writer exists.
        for count in self.counts.iter() {
            count.store(0, Ordering::Relaxed);
        }
        let mut peak = vec![0u32; channels];
        let mut staged: Vec<(usize, Copy)> = Vec::new();
        let mut staged_len = vec![0u32; channels];
        let mut vc_blocked = vec![false; vcs];

        let mut sources: Vec<VecDeque<usize>> = vec![VecDeque::new(); n as usize];
        for group in 0..trees.group_count() {
            let root = trees.group_root(group);
            assert!(
                root < n,
                "group root {root} is not a fabric node (fabric has {n})"
            );
            sources[root as usize].push_back(group);
        }
        let source_ids: Vec<usize> = (0..n as usize)
            .filter(|&src| !sources[src].is_empty())
            .collect();

        let mut injected = 0usize;
        let mut groups_injected = 0usize;
        let mut replicated = 0u64;
        let mut pending = trees.group_count();
        let mut delivered = 0usize;
        let mut dropped_full = 0usize;
        let mut dropped_unroutable = 0usize;
        let mut dropped_ttl = 0usize;
        let mut delivered_hops = 0u64;
        let mut max_hops = 0u32;
        let mut waits: Vec<u64> = Vec::new();
        let mut deadlocked = false;
        let mut dateline_promotions = 0u64;
        let mut dateline_relief = 0u64;
        let mut source_stall_cycles = 0u64;
        let mut delivered_per_link = vec![0u64; arcs];
        let mut in_network = 0usize; // leaf units
        let mut cycle = 0u64;
        let offer_cycle =
            |i: usize| (((i + 1) as f64 / offered_per_cycle).ceil() as u64).saturating_sub(1);

        let bump = |counts: &Arc<[AtomicU32]>, chan: usize, delta: i32| {
            if delta >= 0 {
                counts[chan].fetch_add(delta as u32, Ordering::Relaxed);
            } else {
                counts[chan].fetch_sub((-delta) as u32, Ordering::Relaxed);
            }
        };

        while (pending > 0 || in_network > 0) && cycle < self.config.max_cycles {
            let mut activity = 0usize;

            // --- injection phase ---------------------------------
            let scan_count = if pending == 0 { 0 } else { source_ids.len() };
            let source_start = if source_ids.is_empty() {
                0
            } else {
                cycle as usize % source_ids.len()
            };
            for scan in 0..scan_count {
                let src = source_ids[(source_start + scan) % source_ids.len()];
                'groups: while let Some(&group) = sources[src].front() {
                    if offer_cycle(group) > cycle {
                        break;
                    }
                    let roots = trees.group_root_arcs(group);
                    if self.config.policy == ContentionPolicy::Backpressure {
                        for &t in roots {
                            let arc = trees.fabric_arc(t);
                            let vc0 = dateline.next_class_arc(0, arc);
                            let chan = arc * vcs + vc0 as usize;
                            if queues[chan].len() >= buffers {
                                source_stall_cycles += 1;
                                break 'groups;
                            }
                        }
                    }
                    sources[src].pop_front();
                    pending -= 1;
                    groups_injected += 1;
                    injected += trees.group_leaves(group) as usize;
                    let self_requests = trees.group_self_requests(group) as usize;
                    if self_requests > 0 {
                        delivered += self_requests;
                        let wait = cycle - offer_cycle(group);
                        for _ in 0..self_requests {
                            waits.push(wait);
                        }
                    }
                    dropped_unroutable += trees.group_unroutable(group) as usize;
                    for &t in roots {
                        let arc = trees.fabric_arc(t);
                        let vc0 = dateline.next_class_arc(0, arc);
                        let chan = arc * vcs + vc0 as usize;
                        if queues[chan].len() < buffers {
                            if vc0 > 0 {
                                dateline_promotions += 1;
                            }
                            queues[chan].push_back(Copy {
                                tree_arc: t,
                                offered_cycle: offer_cycle(group),
                                hops: 0,
                                vc: vc0,
                            });
                            bump(&self.counts, chan, 1);
                            peak[chan] = peak[chan].max(queues[chan].len() as u32);
                            in_network += trees.weight(t) as usize;
                        } else {
                            debug_assert_eq!(self.config.policy, ContentionPolicy::TailDrop);
                            dropped_full += trees.weight(t) as usize;
                        }
                    }
                    activity += 1;
                }
            }

            // --- drain phase -------------------------------------
            let link_start = if arcs == 0 { 0 } else { cycle as usize % arcs };
            let vc_start = cycle as usize % vcs;
            for step in 0..arcs {
                let arc = (link_start + step) % arcs;
                let mut budget = wavelengths;
                vc_blocked.fill(false);
                'link: loop {
                    let mut progressed = false;
                    for offset in 0..vcs {
                        if budget == 0 {
                            break 'link;
                        }
                        let vc = (vc_start + offset) % vcs;
                        if vc_blocked[vc] {
                            continue;
                        }
                        let chan = arc * vcs + vc;
                        let Some(&head) = queues[chan].front() else {
                            vc_blocked[vc] = true;
                            continue;
                        };
                        let t = head.tree_arc;
                        let hops_after = head.hops + 1;
                        if hops_after >= hop_limit {
                            queues[chan].pop_front();
                            bump(&self.counts, chan, -1);
                            dropped_ttl += trees.weight(t) as usize;
                            in_network -= trees.weight(t) as usize;
                            activity += 1;
                            budget -= 1;
                            progressed = true;
                            continue;
                        }
                        let children = trees.children(t);
                        if self.config.policy == ContentionPolicy::Backpressure {
                            let blocked = children.iter().any(|&child| {
                                let child_arc = trees.fabric_arc(child);
                                let child_vc = dateline.next_class_arc(head.vc, child_arc);
                                let child_chan = child_arc * vcs + child_vc as usize;
                                queues[child_chan].len() + staged_len[child_chan] as usize
                                    >= buffers
                                    && !dateline.needs_relief(head.vc, child_arc)
                            });
                            if blocked {
                                vc_blocked[vc] = true;
                                continue;
                            }
                        }
                        queues[chan].pop_front();
                        bump(&self.counts, chan, -1);
                        let deliveries = trees.deliveries(t) as usize;
                        if deliveries > 0 {
                            delivered += deliveries;
                            in_network -= deliveries;
                            delivered_per_link[arc] += deliveries as u64;
                            delivered_hops += deliveries as u64 * hops_after as u64;
                            max_hops = max_hops.max(hops_after);
                            let wait = cycle + 1 - head.offered_cycle - hops_after as u64;
                            for _ in 0..deliveries {
                                waits.push(wait);
                            }
                        }
                        for &child in children {
                            let child_arc = trees.fabric_arc(child);
                            let child_vc = dateline.next_class_arc(head.vc, child_arc);
                            let child_chan = child_arc * vcs + child_vc as usize;
                            let occupied =
                                queues[child_chan].len() + staged_len[child_chan] as usize;
                            if occupied >= buffers {
                                match self.config.policy {
                                    ContentionPolicy::TailDrop => {
                                        dropped_full += trees.weight(child) as usize;
                                        in_network -= trees.weight(child) as usize;
                                        continue;
                                    }
                                    ContentionPolicy::Backpressure => dateline_relief += 1,
                                }
                            }
                            if child_vc > head.vc {
                                dateline_promotions += 1;
                            }
                            staged_len[child_chan] += 1;
                            bump(&self.counts, child_chan, 1);
                            replicated += 1;
                            staged.push((
                                child_chan,
                                Copy {
                                    tree_arc: child,
                                    offered_cycle: head.offered_cycle,
                                    hops: hops_after,
                                    vc: child_vc,
                                },
                            ));
                        }
                        activity += 1;
                        budget -= 1;
                        progressed = true;
                    }
                    if !progressed {
                        break;
                    }
                }
            }
            for (chan, copy) in staged.drain(..) {
                queues[chan].push_back(copy);
                peak[chan] = peak[chan].max(queues[chan].len() as u32);
            }
            staged_len.fill(0);

            cycle += 1;
            if activity == 0 && in_network > 0 {
                deadlocked = true;
                break;
            }
        }

        waits.sort_unstable();
        let wait_mean_cycles = if waits.is_empty() {
            0.0
        } else {
            waits.iter().sum::<u64>() as f64 / waits.len() as f64
        };
        let peak_occupancy: Vec<u32> = (0..arcs)
            .map(|arc| (0..vcs).map(|vc| peak[arc * vcs + vc]).max().unwrap_or(0))
            .collect();
        let vc_peak_occupancy: Vec<u32> = (0..vcs)
            .map(|vc| (0..arcs).map(|arc| peak[arc * vcs + vc]).max().unwrap_or(0))
            .collect();

        QueueingReport {
            router: router.name(),
            offered_per_cycle,
            cycles: cycle,
            injected,
            delivered,
            dropped_full,
            dropped_unroutable,
            dropped_ttl,
            in_flight: in_network,
            deadlocked,
            vcs,
            dateline_promotions,
            dateline_relief,
            source_stall_cycles,
            delivered_hops,
            max_hops,
            wait_mean_cycles,
            wait_p50_cycles: percentile_u64(&waits, 0.50),
            wait_p99_cycles: percentile_u64(&waits, 0.99),
            wait_max_cycles: waits.last().copied().unwrap_or(0),
            max_peak_occupancy: peak_occupancy.iter().copied().max().unwrap_or(0),
            peak_occupancy,
            vc_peak_occupancy,
            delivered_per_link,
            multicast_groups: groups_injected,
            replicated_copies: replicated,
            multicast_forwarding_index: trees.forwarding_index(),
            class_stats: None,
            link_down_events: 0,
            link_up_events: 0,
            capacity_events: 0,
            dropped_stranded: 0,
            stranded_reinjected: 0,
            time_to_reroute_cycles: Vec::new(),
            reroute_unresolved: 0,
            reroute_no_demand: 0,
            repair_runs_patched: Vec::new(),
            repair_rows_patched: 0,
            table_runs_total: 0,
            snapshot_publications: 0,
            snapshot_runs_published: 0,
        }
    }
}
