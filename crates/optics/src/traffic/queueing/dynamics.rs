//! Link-dynamics timelines: the scripted fades, flapping beams and
//! failure storms a queueing run replays against its fabric.
//!
//! Free-space optical links are not up-or-down bits on a service
//! schedule: scintillation fades a beam's usable wavelength count,
//! misalignment makes it *flap* with a duty cycle, and a shared
//! disturbance (a tracker reset, an obscured transceiver plane) takes
//! a correlated slice of links down at once. This module turns a
//! textual spec of those events into a deterministic, pre-compiled
//! [`Timeline`] of per-arc capacity transitions the engine applies at
//! cycle boundaries — same spec, same fabric, same run, bit for bit.
//!
//! # Spec grammar
//!
//! A spec is a comma-separated event list. Link endpoints are node
//! ids written `SRC>DST`; cycles, capacities and durations are plain
//! integers.
//!
//! | event | meaning |
//! |---|---|
//! | `fade@C:S>D` | link `S→D` dies (capacity 0) at cycle `C`, permanently |
//! | `fade@C:S>D:CAP` | capacity drops to `CAP` wavelengths at `C`, permanently |
//! | `fade@C:S>D:CAP:DUR` | …and restores to full after `DUR` cycles |
//! | `flap@C:S>D:UP:DOWN` | from `C`: dead `DOWN` cycles, alive `UP`, × 16 |
//! | `flap@C:S>D:UP:DOWN:N` | …repeated `N` times instead |
//! | `storm@C:LO-HI:DUR` | every out-link of nodes `LO..=HI` dies at `C` for `DUR` |
//! | `randfades@SEED:N:WINDOW:DUR` | `N` seed-split random full fades, start < `WINDOW`, each `DUR` long |
//!
//! Examples: `fade@100:0>1`, `fade@50:3>6:1:200`,
//! `flap@10:0>1:20:5`, `storm@500:0-63:250`,
//! `randfades@42:8:1000:100`.
//!
//! # Compilation
//!
//! [`DynamicsSpec::compile`] resolves every event against the fabric
//! (unknown links are an error — a dynamics script that names a
//! non-link is a bug, not a no-op), clamps capacities to the
//! configured wavelength count, orders all transitions by cycle
//! (stable: same-cycle transitions apply in spec order), and
//! classifies each as a zero-crossing ([`Crossing::Death`] /
//! [`Crossing::Revival`]) or a plain capacity change by replaying the
//! per-arc capacity sequence. The engine consumes the classification
//! directly: deaths strand queued packets and open a time-to-reroute
//! watch, revivals (and deaths) wake parked state, and both feed the
//! router's online repair hook ([`otis_core::RouteRepair`]).

use otis_digraph::Digraph;
use std::str::FromStr;

/// What the engine does with packets stranded on a link that faded to
/// zero (queued in the dead link's FIFOs, or blocked because their
/// router insists on the dead beam).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StrandedPolicy {
    /// Stranded packets are pulled back to their current node and
    /// re-offered to the (repaired) routing each cycle until a live
    /// out-channel with room accepts them; packets that become
    /// unreachable drop as `dropped_stranded`. The lossless choice
    /// under backpressure.
    #[default]
    Reinject,
    /// Stranded packets drop immediately (`dropped_stranded`) — the
    /// optical-switch behavior when there is no electronic buffer to
    /// hold a beamless packet.
    Drop,
}

impl FromStr for StrandedPolicy {
    type Err = String;

    fn from_str(raw: &str) -> Result<Self, String> {
        match raw {
            "reinject" => Ok(StrandedPolicy::Reinject),
            "drop" => Ok(StrandedPolicy::Drop),
            other => Err(format!(
                "unknown stranded policy {other:?} (valid: reinject|drop)"
            )),
        }
    }
}

/// One scripted event, as parsed (fabric-independent).
#[derive(Debug, Clone, PartialEq, Eq)]
enum DynamicsEvent {
    Fade {
        cycle: u64,
        from: u64,
        to: u64,
        /// Surviving wavelength count; `0` is a full fade (death).
        capacity: u64,
        /// Cycles until restoration; `None` = permanent.
        duration: Option<u64>,
    },
    Flap {
        start: u64,
        from: u64,
        to: u64,
        up: u64,
        down: u64,
        repeats: u64,
    },
    Storm {
        cycle: u64,
        lo: u64,
        hi: u64,
        duration: u64,
    },
    RandFades {
        seed: u64,
        count: u64,
        window: u64,
        duration: u64,
    },
}

/// A parsed link-dynamics script — see the module docs for the
/// grammar. Fabric-independent until [`DynamicsSpec::compile`]d.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynamicsSpec {
    events: Vec<DynamicsEvent>,
}

/// Flaps without an explicit repeat count run this many periods.
const DEFAULT_FLAP_REPEATS: u64 = 16;

fn parse_u64(raw: &str, what: &str, event: &str) -> Result<u64, String> {
    raw.parse::<u64>()
        .map_err(|_| format!("{event}: {what} must be a non-negative integer, got {raw:?}"))
}

/// `S>D` → `(S, D)`.
fn parse_link(raw: &str, event: &str) -> Result<(u64, u64), String> {
    let (from, to) = raw
        .split_once('>')
        .ok_or_else(|| format!("{event}: expected a link as SRC>DST, got {raw:?}"))?;
    Ok((
        parse_u64(from, "link source", event)?,
        parse_u64(to, "link target", event)?,
    ))
}

impl FromStr for DynamicsSpec {
    type Err = String;

    fn from_str(raw: &str) -> Result<Self, String> {
        let mut events = Vec::new();
        for part in raw.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (kind, rest) = part.split_once('@').ok_or_else(|| {
                format!("{part:?}: expected KIND@ARGS (kinds: fade|flap|storm|randfades)")
            })?;
            let fields: Vec<&str> = rest.split(':').collect();
            let event = match (kind, fields.as_slice()) {
                ("fade", [cycle, link, ..]) => {
                    if fields.len() > 4 {
                        return Err(format!(
                            "{part:?}: fade takes at most CYCLE:SRC>DST:CAP:DUR"
                        ));
                    }
                    let (from, to) = parse_link(link, part)?;
                    DynamicsEvent::Fade {
                        cycle: parse_u64(cycle, "cycle", part)?,
                        from,
                        to,
                        capacity: match fields.get(2) {
                            Some(cap) => parse_u64(cap, "capacity", part)?,
                            None => 0,
                        },
                        duration: match fields.get(3) {
                            Some(dur) => Some(parse_u64(dur, "duration", part)?),
                            None => None,
                        },
                    }
                }
                ("flap", [start, link, up, down, ..]) => {
                    if fields.len() > 5 {
                        return Err(format!(
                            "{part:?}: flap takes at most CYCLE:SRC>DST:UP:DOWN:REPEATS"
                        ));
                    }
                    let (from, to) = parse_link(link, part)?;
                    let up = parse_u64(up, "up time", part)?;
                    let down = parse_u64(down, "down time", part)?;
                    if up == 0 || down == 0 {
                        return Err(format!("{part:?}: flap up/down times must be positive"));
                    }
                    DynamicsEvent::Flap {
                        start: parse_u64(start, "start cycle", part)?,
                        from,
                        to,
                        up,
                        down,
                        repeats: match fields.get(4) {
                            Some(n) => parse_u64(n, "repeat count", part)?,
                            None => DEFAULT_FLAP_REPEATS,
                        },
                    }
                }
                ("storm", [cycle, range, duration]) => {
                    let (lo, hi) = range
                        .split_once('-')
                        .ok_or_else(|| format!("{part:?}: expected a node range as LO-HI"))?;
                    let lo = parse_u64(lo, "range start", part)?;
                    let hi = parse_u64(hi, "range end", part)?;
                    if lo > hi {
                        return Err(format!("{part:?}: empty node range {lo}-{hi}"));
                    }
                    let duration = parse_u64(duration, "duration", part)?;
                    if duration == 0 {
                        return Err(format!("{part:?}: storm duration must be positive"));
                    }
                    DynamicsEvent::Storm {
                        cycle: parse_u64(cycle, "cycle", part)?,
                        lo,
                        hi,
                        duration,
                    }
                }
                ("randfades", [seed, count, window, duration]) => {
                    let window = parse_u64(window, "window", part)?;
                    let duration = parse_u64(duration, "duration", part)?;
                    if window == 0 || duration == 0 {
                        return Err(format!(
                            "{part:?}: randfades window/duration must be positive"
                        ));
                    }
                    DynamicsEvent::RandFades {
                        seed: parse_u64(seed, "seed", part)?,
                        count: parse_u64(count, "count", part)?,
                        window,
                        duration,
                    }
                }
                _ => {
                    return Err(format!(
                        "{part:?}: unknown event (valid: fade@C:S>D[:CAP[:DUR]], \
                         flap@C:S>D:UP:DOWN[:N], storm@C:LO-HI:DUR, randfades@SEED:N:WINDOW:DUR)"
                    ))
                }
            };
            events.push(event);
        }
        if events.is_empty() {
            return Err("empty dynamics spec".into());
        }
        Ok(DynamicsSpec { events })
    }
}

/// How a transition relates to zero capacity — precomputed so the
/// engine's event application needs no state of its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Crossing {
    /// Capacity changed without crossing zero.
    None,
    /// Capacity fell from positive to zero: the link died.
    Death,
    /// Capacity rose from zero: the link revived.
    Revival,
}

/// One compiled capacity transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Transition {
    pub cycle: u64,
    pub arc: u32,
    /// New drain capacity in wavelengths (already clamped to the
    /// configured count).
    pub capacity: u32,
    pub crossing: Crossing,
}

/// A compiled dynamics timeline: every capacity transition of the
/// run, cycle-ordered, with zero-crossings classified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Timeline {
    pub transitions: Vec<Transition>,
    /// Number of [`Crossing::Death`] transitions — one
    /// time-to-reroute watch each.
    pub deaths: usize,
}

/// splitmix64 — the seed-split generator behind `randfades`. Inline
/// (not the workload's `StdRng`) so a dynamics script's schedule never
/// changes under a rand-crate upgrade.
fn splitmix64_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DynamicsSpec {
    /// Resolve the spec against fabric `g` with `wavelengths` full
    /// capacity into a cycle-ordered [`Timeline`].
    ///
    /// # Panics
    ///
    /// On a link the fabric does not have, or a storm range past the
    /// node count — a dynamics script that names non-fabric structure
    /// is a configuration bug, surfaced loudly.
    pub(crate) fn compile(&self, g: &Digraph, wavelengths: usize) -> Timeline {
        let full = u32::try_from(wavelengths).unwrap_or(u32::MAX);
        let n = g.node_count() as u64;
        let arc_between = |from: u64, to: u64| -> u32 {
            assert!(
                from < n && to < n,
                "dynamics event names node pair {from}>{to} but the fabric has {n} nodes"
            );
            g.arc_between(from as u32, to as u32)
                .unwrap_or_else(|| panic!("dynamics event names {from}>{to}, not a fabric link"))
                as u32
        };
        // Raw (cycle, arc, capacity) ops, in spec emission order.
        let mut ops: Vec<(u64, u32, u32)> = Vec::new();
        for event in &self.events {
            match *event {
                DynamicsEvent::Fade {
                    cycle,
                    from,
                    to,
                    capacity,
                    duration,
                } => {
                    let arc = arc_between(from, to);
                    let cap = u32::try_from(capacity).unwrap_or(u32::MAX).min(full);
                    ops.push((cycle, arc, cap));
                    if let Some(duration) = duration {
                        ops.push((cycle.saturating_add(duration), arc, full));
                    }
                }
                DynamicsEvent::Flap {
                    start,
                    from,
                    to,
                    up,
                    down,
                    repeats,
                } => {
                    let arc = arc_between(from, to);
                    let period = up + down;
                    for rep in 0..repeats {
                        let at = start.saturating_add(rep.saturating_mul(period));
                        ops.push((at, arc, 0));
                        ops.push((at.saturating_add(down), arc, full));
                    }
                }
                DynamicsEvent::Storm {
                    cycle,
                    lo,
                    hi,
                    duration,
                } => {
                    assert!(
                        hi < n,
                        "storm range {lo}-{hi} exceeds the fabric's {n} nodes"
                    );
                    for node in lo..=hi {
                        for arc in g.arc_range(node as u32) {
                            ops.push((cycle, arc as u32, 0));
                            ops.push((cycle.saturating_add(duration), arc as u32, full));
                        }
                    }
                }
                DynamicsEvent::RandFades {
                    seed,
                    count,
                    window,
                    duration,
                } => {
                    let arcs = g.arc_count() as u64;
                    assert!(arcs > 0, "randfades on a fabric with no links");
                    for i in 0..count {
                        // Seed-split: each fade draws from its own
                        // stream, so adding a fade never reshuffles
                        // the ones before it.
                        let mut state =
                            seed.wrapping_add((i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                        let arc = (splitmix64_next(&mut state) % arcs) as u32;
                        let at = splitmix64_next(&mut state) % window;
                        ops.push((at, arc, 0));
                        ops.push((at.saturating_add(duration), arc, full));
                    }
                }
            }
        }
        // Cycle order; stable, so same-cycle ops keep spec order (the
        // later op wins when both touch the same arc — appliers run
        // the list in sequence).
        ops.sort_by_key(|&(cycle, _, _)| cycle);
        // Classify crossings by replaying per-arc capacity.
        let mut cap_of = vec![full; g.arc_count()];
        let mut deaths = 0usize;
        let transitions = ops
            .into_iter()
            .map(|(cycle, arc, capacity)| {
                let old = cap_of[arc as usize];
                cap_of[arc as usize] = capacity;
                let crossing = match (old, capacity) {
                    (0, 0) => Crossing::None,
                    (_, 0) => Crossing::Death,
                    (0, _) => Crossing::Revival,
                    _ => Crossing::None,
                };
                if crossing == Crossing::Death {
                    deaths += 1;
                }
                Transition {
                    cycle,
                    arc,
                    capacity,
                    crossing,
                }
            })
            .collect();
        Timeline {
            transitions,
            deaths,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otis_core::{DeBruijn, DigraphFamily};

    fn b24() -> Digraph {
        DeBruijn::new(2, 4).digraph()
    }

    #[test]
    fn parses_every_event_kind() {
        let spec: DynamicsSpec =
            "fade@100:0>1, fade@50:1>2:1:200, flap@10:0>1:20:5:3, storm@500:0-3:250, \
             randfades@42:4:1000:100"
                .parse()
                .expect("valid spec");
        assert_eq!(spec.events.len(), 5);
        assert_eq!(
            spec.events[0],
            DynamicsEvent::Fade {
                cycle: 100,
                from: 0,
                to: 1,
                capacity: 0,
                duration: None
            }
        );
        assert_eq!(
            spec.events[2],
            DynamicsEvent::Flap {
                start: 10,
                from: 0,
                to: 1,
                up: 20,
                down: 5,
                repeats: 3
            }
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "fade@100",
            "fade@x:0>1",
            "fade@1:0-1",
            "flap@1:0>1:0:5",
            "storm@1:5-2:10",
            "storm@1:0-3:0",
            "randfades@1:2:0:5",
            "blink@1:0>1",
            "fade@1:0>1:2:3:4",
        ] {
            assert!(bad.parse::<DynamicsSpec>().is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn stranded_policy_parses() {
        assert_eq!("reinject".parse(), Ok(StrandedPolicy::Reinject));
        assert_eq!("drop".parse(), Ok(StrandedPolicy::Drop));
        assert!("park".parse::<StrandedPolicy>().is_err());
        assert_eq!(StrandedPolicy::default(), StrandedPolicy::Reinject);
    }

    #[test]
    fn fade_with_duration_compiles_to_death_and_revival() {
        let g = b24();
        let spec: DynamicsSpec = "fade@100:0>1:0:50".parse().unwrap();
        let t = spec.compile(&g, 2);
        assert_eq!(t.transitions.len(), 2);
        assert_eq!(t.deaths, 1);
        assert_eq!(t.transitions[0].cycle, 100);
        assert_eq!(t.transitions[0].capacity, 0);
        assert_eq!(t.transitions[0].crossing, Crossing::Death);
        assert_eq!(t.transitions[1].cycle, 150);
        assert_eq!(t.transitions[1].capacity, 2);
        assert_eq!(t.transitions[1].crossing, Crossing::Revival);
        // Both name the same arc: 0's out-arc to 1.
        assert_eq!(t.transitions[0].arc, t.transitions[1].arc);
    }

    #[test]
    fn partial_fade_is_not_a_crossing_and_caps_clamp() {
        let g = b24();
        let spec: DynamicsSpec = "fade@10:0>1:9:5".parse().unwrap();
        let t = spec.compile(&g, 4);
        assert_eq!(t.deaths, 0);
        assert_eq!(t.transitions[0].capacity, 4, "clamped to wavelengths");
        assert_eq!(t.transitions[0].crossing, Crossing::None);
        assert_eq!(t.transitions[1].crossing, Crossing::None);
    }

    #[test]
    fn flap_alternates_death_and_revival() {
        let g = b24();
        let spec: DynamicsSpec = "flap@10:0>1:20:5:3".parse().unwrap();
        let t = spec.compile(&g, 1);
        assert_eq!(t.transitions.len(), 6);
        assert_eq!(t.deaths, 3);
        let cycles: Vec<u64> = t.transitions.iter().map(|tr| tr.cycle).collect();
        assert_eq!(cycles, vec![10, 15, 35, 40, 60, 65]);
        for (i, tr) in t.transitions.iter().enumerate() {
            let expect = if i % 2 == 0 {
                Crossing::Death
            } else {
                Crossing::Revival
            };
            assert_eq!(tr.crossing, expect, "transition {i}");
        }
    }

    #[test]
    fn storm_kills_every_out_arc_of_the_slice() {
        let g = b24();
        let spec: DynamicsSpec = "storm@500:0-3:250".parse().unwrap();
        let t = spec.compile(&g, 2);
        // Nodes 0..=3 in B(2,4) have 2 out-arcs each.
        assert_eq!(t.deaths, 8);
        assert_eq!(t.transitions.len(), 16);
        assert!(t
            .transitions
            .iter()
            .all(|tr| tr.cycle == 500 || tr.cycle == 750));
        // Transitions are cycle-ordered: all deaths before revivals.
        assert!(t.transitions[..8]
            .iter()
            .all(|tr| tr.crossing == Crossing::Death));
        assert!(t.transitions[8..]
            .iter()
            .all(|tr| tr.crossing == Crossing::Revival));
    }

    #[test]
    fn randfades_are_seed_stable_and_splittable() {
        let g = b24();
        let four: DynamicsSpec = "randfades@42:4:1000:100".parse().unwrap();
        let five: DynamicsSpec = "randfades@42:5:1000:100".parse().unwrap();
        let a = four.compile(&g, 2);
        let b = four.compile(&g, 2);
        assert_eq!(a, b, "same seed, same schedule");
        let wider = five.compile(&g, 2);
        // Seed-splitting: the first four fades' (arc, cycle) pairs are
        // unchanged by adding a fifth.
        let key = |t: &Timeline| {
            let mut ops: Vec<(u32, u64, u32)> = t
                .transitions
                .iter()
                .map(|tr| (tr.arc, tr.cycle, tr.capacity))
                .collect();
            ops.sort_unstable();
            ops
        };
        let a_ops = key(&a);
        let wider_ops = key(&wider);
        assert!(a_ops.iter().all(|op| wider_ops.contains(op)));
        assert_eq!(a.deaths, 4);
        assert_eq!(wider.deaths, 5);
    }

    #[test]
    #[should_panic(expected = "not a fabric link")]
    fn unknown_link_is_a_loud_error() {
        let g = b24();
        let spec: DynamicsSpec = "fade@1:0>9".parse().unwrap();
        spec.compile(&g, 1);
    }

    #[test]
    fn overlapping_events_classify_against_replayed_capacity() {
        let g = b24();
        // The second fade hits an already-dead link: not a new death.
        let spec: DynamicsSpec = "fade@10:0>1:0:100, fade@50:0>1".parse().unwrap();
        let t = spec.compile(&g, 2);
        assert_eq!(t.deaths, 1);
        assert_eq!(t.transitions[1].crossing, Crossing::None);
        // The restore at 110 revives (capacity was 0 since cycle 50).
        assert_eq!(t.transitions[2].crossing, Crossing::Revival);
    }
}
