//! Link-dynamics timelines: the scripted fades, flapping beams and
//! failure storms a queueing run replays against its fabric.
//!
//! Free-space optical links are not up-or-down bits on a service
//! schedule: scintillation fades a beam's usable wavelength count,
//! misalignment makes it *flap* with a duty cycle, and a shared
//! disturbance (a tracker reset, an obscured transceiver plane) takes
//! a correlated slice of links down at once. This module turns a
//! textual spec of those events into a deterministic, pre-compiled
//! [`Timeline`] of per-arc capacity transitions the engine applies at
//! cycle boundaries — same spec, same fabric, same run, bit for bit.
//!
//! # Spec grammar
//!
//! A spec is a comma-separated event list. Link endpoints are node
//! ids written `SRC>DST`; cycles, capacities and durations are plain
//! integers.
//!
//! | event | meaning |
//! |---|---|
//! | `fade@C:S>D` | link `S→D` dies (capacity 0) at cycle `C`, permanently |
//! | `fade@C:S>D:CAP` | capacity drops to `CAP` wavelengths at `C`, permanently |
//! | `fade@C:S>D:CAP:DUR` | …and restores to full after `DUR` cycles |
//! | `flap@C:S>D:UP:DOWN` | from `C`: dead `DOWN` cycles, alive `UP`, × 16 |
//! | `flap@C:S>D:UP:DOWN:N` | …repeated `N` times instead |
//! | `storm@C:LO-HI:DUR` | every out-link of nodes `LO..=HI` dies at `C` for `DUR` |
//! | `randfades@SEED:N:WINDOW:DUR` | `N` seed-split random full fades, start < `WINDOW`, each `DUR` long |
//!
//! Examples: `fade@100:0>1`, `fade@50:3>6:1:200`,
//! `flap@10:0>1:20:5`, `storm@500:0-63:250`,
//! `randfades@42:8:1000:100`.
//!
//! ## Rank addressing
//!
//! On a relabeled fabric (an OTIS layout routed through its de Bruijn
//! isomorphism witness), node ids in the spec default to the *outer*
//! (H-numbering) ids the fabric itself uses. Inserting `rank:` right
//! after the cycle addresses the event in **de Bruijn rank space**
//! instead: `fade@C:rank:S>D`, `flap@C:rank:S>D:UP:DOWN`,
//! `storm@C:rank:LO-HI:DUR`. Ranks are translated to outer nodes
//! through the witness at compile time, so an operator can script the
//! logical de Bruijn link `u → du+α` without knowing which physical
//! OTIS transceiver carries it. `rank:` on a fabric compiled without a
//! witness is an error.
//!
//! # Compilation
//!
//! [`DynamicsSpec::try_compile`] resolves every event against the
//! fabric (unknown links are an error — a dynamics script that names a
//! non-link is a bug, not a no-op; the error names the offending pair
//! in both numberings and lists the source node's actual out-links),
//! clamps capacities to the configured wavelength count, orders all
//! transitions by cycle (stable: same-cycle transitions apply in spec
//! order), and classifies each as a zero-crossing ([`Crossing::Death`]
//! / [`Crossing::Revival`]) or a plain capacity change by replaying
//! the per-arc capacity sequence. The engine consumes the
//! classification directly: deaths strand queued packets and open a
//! time-to-reroute watch, revivals (and deaths) wake parked state, and
//! both feed the router's online repair hook
//! ([`otis_core::RouteRepair`]).

use otis_digraph::Digraph;
use std::str::FromStr;

/// What the engine does with packets stranded on a link that faded to
/// zero (queued in the dead link's FIFOs, or blocked because their
/// router insists on the dead beam).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StrandedPolicy {
    /// Stranded packets are pulled back to their current node and
    /// re-offered to the (repaired) routing each cycle until a live
    /// out-channel with room accepts them; packets that become
    /// unreachable drop as `dropped_stranded`. The lossless choice
    /// under backpressure.
    #[default]
    Reinject,
    /// Stranded packets drop immediately (`dropped_stranded`) — the
    /// optical-switch behavior when there is no electronic buffer to
    /// hold a beamless packet.
    Drop,
}

impl FromStr for StrandedPolicy {
    type Err = String;

    fn from_str(raw: &str) -> Result<Self, String> {
        match raw {
            "reinject" => Ok(StrandedPolicy::Reinject),
            "drop" => Ok(StrandedPolicy::Drop),
            other => Err(format!(
                "unknown stranded policy {other:?} (valid: reinject|drop)"
            )),
        }
    }
}

/// One scripted event, as parsed (fabric-independent).
#[derive(Debug, Clone, PartialEq, Eq)]
enum DynamicsEvent {
    Fade {
        cycle: u64,
        from: u64,
        to: u64,
        /// Node ids are de Bruijn ranks (translate through the
        /// witness), not outer fabric ids.
        rank: bool,
        /// Surviving wavelength count; `0` is a full fade (death).
        capacity: u64,
        /// Cycles until restoration; `None` = permanent.
        duration: Option<u64>,
    },
    Flap {
        start: u64,
        from: u64,
        to: u64,
        rank: bool,
        up: u64,
        down: u64,
        repeats: u64,
    },
    Storm {
        cycle: u64,
        lo: u64,
        hi: u64,
        rank: bool,
        duration: u64,
    },
    RandFades {
        seed: u64,
        count: u64,
        window: u64,
        duration: u64,
    },
}

/// A parsed link-dynamics script — see the module docs for the
/// grammar. Fabric-independent until [`DynamicsSpec::compile`]d.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynamicsSpec {
    events: Vec<DynamicsEvent>,
}

/// Flaps without an explicit repeat count run this many periods.
const DEFAULT_FLAP_REPEATS: u64 = 16;

fn parse_u64(raw: &str, what: &str, event: &str) -> Result<u64, String> {
    raw.parse::<u64>()
        .map_err(|_| format!("{event}: {what} must be a non-negative integer, got {raw:?}"))
}

/// `S>D` → `(S, D)`.
fn parse_link(raw: &str, event: &str) -> Result<(u64, u64), String> {
    let (from, to) = raw
        .split_once('>')
        .ok_or_else(|| format!("{event}: expected a link as SRC>DST, got {raw:?}"))?;
    Ok((
        parse_u64(from, "link source", event)?,
        parse_u64(to, "link target", event)?,
    ))
}

impl FromStr for DynamicsSpec {
    type Err = String;

    fn from_str(raw: &str) -> Result<Self, String> {
        let mut events = Vec::new();
        for part in raw.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (kind, rest) = part.split_once('@').ok_or_else(|| {
                format!("{part:?}: expected KIND@ARGS (kinds: fade|flap|storm|randfades)")
            })?;
            let mut fields: Vec<&str> = rest.split(':').collect();
            // `KIND@CYCLE:rank:…` switches the event's node ids to de
            // Bruijn rank space; the marker sits between the cycle and
            // the link/range and is stripped before field matching.
            let rank = fields.get(1) == Some(&"rank");
            if rank {
                if kind == "randfades" {
                    return Err(format!(
                        "{part:?}: randfades draws arcs, not node ids — rank: does not apply"
                    ));
                }
                fields.remove(1);
            }
            let event = match (kind, fields.as_slice()) {
                ("fade", [cycle, link, ..]) => {
                    if fields.len() > 4 {
                        return Err(format!(
                            "{part:?}: fade takes at most CYCLE:SRC>DST:CAP:DUR"
                        ));
                    }
                    let (from, to) = parse_link(link, part)?;
                    DynamicsEvent::Fade {
                        cycle: parse_u64(cycle, "cycle", part)?,
                        from,
                        to,
                        rank,
                        capacity: match fields.get(2) {
                            Some(cap) => parse_u64(cap, "capacity", part)?,
                            None => 0,
                        },
                        duration: match fields.get(3) {
                            Some(dur) => Some(parse_u64(dur, "duration", part)?),
                            None => None,
                        },
                    }
                }
                ("flap", [start, link, up, down, ..]) => {
                    if fields.len() > 5 {
                        return Err(format!(
                            "{part:?}: flap takes at most CYCLE:SRC>DST:UP:DOWN:REPEATS"
                        ));
                    }
                    let (from, to) = parse_link(link, part)?;
                    let up = parse_u64(up, "up time", part)?;
                    let down = parse_u64(down, "down time", part)?;
                    if up == 0 || down == 0 {
                        return Err(format!("{part:?}: flap up/down times must be positive"));
                    }
                    DynamicsEvent::Flap {
                        start: parse_u64(start, "start cycle", part)?,
                        from,
                        to,
                        rank,
                        up,
                        down,
                        repeats: match fields.get(4) {
                            Some(n) => parse_u64(n, "repeat count", part)?,
                            None => DEFAULT_FLAP_REPEATS,
                        },
                    }
                }
                ("storm", [cycle, range, duration]) => {
                    let (lo, hi) = range
                        .split_once('-')
                        .ok_or_else(|| format!("{part:?}: expected a node range as LO-HI"))?;
                    let lo = parse_u64(lo, "range start", part)?;
                    let hi = parse_u64(hi, "range end", part)?;
                    if lo > hi {
                        return Err(format!("{part:?}: empty node range {lo}-{hi}"));
                    }
                    let duration = parse_u64(duration, "duration", part)?;
                    if duration == 0 {
                        return Err(format!("{part:?}: storm duration must be positive"));
                    }
                    DynamicsEvent::Storm {
                        cycle: parse_u64(cycle, "cycle", part)?,
                        lo,
                        hi,
                        rank,
                        duration,
                    }
                }
                ("randfades", [seed, count, window, duration]) => {
                    let window = parse_u64(window, "window", part)?;
                    let duration = parse_u64(duration, "duration", part)?;
                    if window == 0 || duration == 0 {
                        return Err(format!(
                            "{part:?}: randfades window/duration must be positive"
                        ));
                    }
                    DynamicsEvent::RandFades {
                        seed: parse_u64(seed, "seed", part)?,
                        count: parse_u64(count, "count", part)?,
                        window,
                        duration,
                    }
                }
                _ => {
                    return Err(format!(
                        "{part:?}: unknown event (valid: fade@C:S>D[:CAP[:DUR]], \
                         flap@C:S>D:UP:DOWN[:N], storm@C:LO-HI:DUR, randfades@SEED:N:WINDOW:DUR)"
                    ))
                }
            };
            events.push(event);
        }
        if events.is_empty() {
            return Err("empty dynamics spec".into());
        }
        Ok(DynamicsSpec { events })
    }
}

/// How a transition relates to zero capacity — precomputed so the
/// engine's event application needs no state of its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Crossing {
    /// Capacity changed without crossing zero.
    None,
    /// Capacity fell from positive to zero: the link died.
    Death,
    /// Capacity rose from zero: the link revived.
    Revival,
}

/// One compiled capacity transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Transition {
    pub cycle: u64,
    pub arc: u32,
    /// New drain capacity in wavelengths (already clamped to the
    /// configured count).
    pub capacity: u32,
    pub crossing: Crossing,
}

/// A compiled dynamics timeline: every capacity transition of the
/// run, cycle-ordered, with zero-crossings classified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Timeline {
    pub transitions: Vec<Transition>,
    /// Number of [`Crossing::Death`] transitions — one
    /// time-to-reroute watch each.
    pub deaths: usize,
}

/// splitmix64 — the seed-split generator behind `randfades`. Inline
/// (not the workload's `StdRng`) so a dynamics script's schedule never
/// changes under a rand-crate upgrade.
fn splitmix64_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DynamicsSpec {
    /// Does any event address its nodes in de Bruijn rank space?
    fn uses_rank(&self) -> bool {
        self.events.iter().any(|e| match *e {
            DynamicsEvent::Fade { rank, .. }
            | DynamicsEvent::Flap { rank, .. }
            | DynamicsEvent::Storm { rank, .. } => rank,
            DynamicsEvent::RandFades { .. } => false,
        })
    }

    /// Resolve the spec against fabric `g` with `wavelengths` full
    /// capacity into a cycle-ordered [`Timeline`].
    ///
    /// `node_rank` is the de Bruijn isomorphism witness of a relabeled
    /// fabric (`node_rank[outer_node] = rank`); `rank:`-addressed
    /// events translate through its inverse, and errors on such
    /// fabrics report offending links in both numberings. `None` on a
    /// fabric that routes its own numbering — any `rank:` event is
    /// then an error.
    ///
    /// # Errors
    ///
    /// On a link the fabric does not have, a node or storm range past
    /// the node count, or a `rank:` event without a witness — a
    /// dynamics script that names non-fabric structure is a
    /// configuration bug, surfaced with the offending pair in every
    /// numbering we know plus the source node's actual out-links.
    pub(crate) fn try_compile(
        &self,
        g: &Digraph,
        wavelengths: usize,
        node_rank: Option<&[u32]>,
    ) -> Result<Timeline, String> {
        let full = u32::try_from(wavelengths).unwrap_or(u32::MAX);
        let n = g.node_count() as u64;
        if let Some(w) = node_rank {
            assert_eq!(
                w.len(),
                g.node_count(),
                "witness length must match the fabric's node count"
            );
        }
        // rank → outer node, built once if any event needs it. The
        // witness is a verified permutation (prop_3_9_witness), so the
        // inverse is total.
        let rank_to_node: Option<Vec<u32>> = if self.uses_rank() {
            let w = node_rank.ok_or_else(|| {
                "dynamics spec uses rank: addressing, but the fabric routes its own numbering \
                 (no de Bruijn witness); rank: needs an OTIS layout"
                    .to_string()
            })?;
            let mut inv = vec![0u32; w.len()];
            for (node, &r) in w.iter().enumerate() {
                inv[r as usize] = node as u32;
            }
            Some(inv)
        } else {
            None
        };
        // Resolve one event-addressed node id to the outer numbering.
        let resolve = |node: u64, rank: bool, what: &str| -> Result<u64, String> {
            if node >= n {
                let space = if rank { "de Bruijn rank" } else { "node id" };
                return Err(format!(
                    "dynamics event {what} {space} {node} exceeds the fabric's {n} nodes"
                ));
            }
            if !rank {
                return Ok(node);
            }
            // uses_rank() guarantees the inverse exists here.
            Ok(u64::from(
                rank_to_node.as_ref().expect("rank map")[node as usize],
            ))
        };
        // Render a node id in every numbering we know, for errors.
        let describe = |outer: u64| -> String {
            match node_rank {
                Some(w) => format!("node {outer} (= de Bruijn rank {})", w[outer as usize]),
                None => format!("node {outer}"),
            }
        };
        let arc_between = |from: u64, to: u64, rank: bool| -> Result<u32, String> {
            let outer_from = resolve(from, rank, "link source")?;
            let outer_to = resolve(to, rank, "link target")?;
            match g.arc_between(outer_from as u32, outer_to as u32) {
                Some(arc) => Ok(arc as u32),
                None => {
                    let outs: Vec<String> = g
                        .out_neighbors(outer_from as u32)
                        .iter()
                        .map(|&v| describe(u64::from(v)))
                        .collect();
                    let addressed = if rank {
                        format!("rank link {from}>{to} = fabric link {outer_from}>{outer_to}")
                    } else {
                        format!("link {}>{}", describe(outer_from), describe(outer_to))
                    };
                    Err(format!(
                        "dynamics event names {addressed}, not a fabric link; \
                         {} has out-links to [{}]",
                        describe(outer_from),
                        outs.join(", ")
                    ))
                }
            }
        };
        // Raw (cycle, arc, capacity) ops, in spec emission order.
        let mut ops: Vec<(u64, u32, u32)> = Vec::new();
        for event in &self.events {
            match *event {
                DynamicsEvent::Fade {
                    cycle,
                    from,
                    to,
                    rank,
                    capacity,
                    duration,
                } => {
                    let arc = arc_between(from, to, rank)?;
                    let cap = u32::try_from(capacity).unwrap_or(u32::MAX).min(full);
                    ops.push((cycle, arc, cap));
                    if let Some(duration) = duration {
                        ops.push((cycle.saturating_add(duration), arc, full));
                    }
                }
                DynamicsEvent::Flap {
                    start,
                    from,
                    to,
                    rank,
                    up,
                    down,
                    repeats,
                } => {
                    let arc = arc_between(from, to, rank)?;
                    let period = up + down;
                    for rep in 0..repeats {
                        let at = start.saturating_add(rep.saturating_mul(period));
                        ops.push((at, arc, 0));
                        ops.push((at.saturating_add(down), arc, full));
                    }
                }
                DynamicsEvent::Storm {
                    cycle,
                    lo,
                    hi,
                    rank,
                    duration,
                } => {
                    if hi >= n {
                        let space = if rank { "rank range" } else { "node range" };
                        return Err(format!(
                            "storm {space} {lo}-{hi} exceeds the fabric's {n} nodes"
                        ));
                    }
                    for addressed in lo..=hi {
                        let node = resolve(addressed, rank, "storm node")?;
                        for arc in g.arc_range(node as u32) {
                            ops.push((cycle, arc as u32, 0));
                            ops.push((cycle.saturating_add(duration), arc as u32, full));
                        }
                    }
                }
                DynamicsEvent::RandFades {
                    seed,
                    count,
                    window,
                    duration,
                } => {
                    let arcs = g.arc_count() as u64;
                    if arcs == 0 {
                        return Err("randfades on a fabric with no links".to_string());
                    }
                    for i in 0..count {
                        // Seed-split: each fade draws from its own
                        // stream, so adding a fade never reshuffles
                        // the ones before it.
                        let mut state =
                            seed.wrapping_add((i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                        let arc = (splitmix64_next(&mut state) % arcs) as u32;
                        let at = splitmix64_next(&mut state) % window;
                        ops.push((at, arc, 0));
                        ops.push((at.saturating_add(duration), arc, full));
                    }
                }
            }
        }
        // Cycle order; stable, so same-cycle ops keep spec order (the
        // later op wins when both touch the same arc — appliers run
        // the list in sequence).
        ops.sort_by_key(|&(cycle, _, _)| cycle);
        // Classify crossings by replaying per-arc capacity.
        let mut cap_of = vec![full; g.arc_count()];
        let mut deaths = 0usize;
        let transitions = ops
            .into_iter()
            .map(|(cycle, arc, capacity)| {
                let old = cap_of[arc as usize];
                cap_of[arc as usize] = capacity;
                let crossing = match (old, capacity) {
                    (0, 0) => Crossing::None,
                    (_, 0) => Crossing::Death,
                    (0, _) => Crossing::Revival,
                    _ => Crossing::None,
                };
                if crossing == Crossing::Death {
                    deaths += 1;
                }
                Transition {
                    cycle,
                    arc,
                    capacity,
                    crossing,
                }
            })
            .collect();
        Ok(Timeline {
            transitions,
            deaths,
        })
    }

    /// Infallible [`Self::try_compile`] for witness-free test
    /// fixtures.
    #[cfg(test)]
    pub(crate) fn compile(&self, g: &Digraph, wavelengths: usize) -> Timeline {
        self.try_compile(g, wavelengths, None)
            .expect("test spec compiles")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otis_core::{DeBruijn, DigraphFamily};

    fn b24() -> Digraph {
        DeBruijn::new(2, 4).digraph()
    }

    #[test]
    fn parses_every_event_kind() {
        let spec: DynamicsSpec =
            "fade@100:0>1, fade@50:1>2:1:200, flap@10:0>1:20:5:3, storm@500:0-3:250, \
             randfades@42:4:1000:100"
                .parse()
                .expect("valid spec");
        assert_eq!(spec.events.len(), 5);
        assert_eq!(
            spec.events[0],
            DynamicsEvent::Fade {
                cycle: 100,
                from: 0,
                to: 1,
                rank: false,
                capacity: 0,
                duration: None
            }
        );
        assert_eq!(
            spec.events[2],
            DynamicsEvent::Flap {
                start: 10,
                from: 0,
                to: 1,
                rank: false,
                up: 20,
                down: 5,
                repeats: 3
            }
        );
    }

    #[test]
    fn rank_prefix_parses_on_fade_flap_and_storm() {
        let spec: DynamicsSpec =
            "fade@100:rank:0>1:1:50, flap@10:rank:0>1:20:5, storm@500:rank:0-3:250"
                .parse()
                .expect("valid rank spec");
        assert_eq!(
            spec.events[0],
            DynamicsEvent::Fade {
                cycle: 100,
                from: 0,
                to: 1,
                rank: true,
                capacity: 1,
                duration: Some(50)
            }
        );
        assert!(matches!(
            spec.events[1],
            DynamicsEvent::Flap {
                rank: true,
                repeats: DEFAULT_FLAP_REPEATS,
                ..
            }
        ));
        assert!(matches!(
            spec.events[2],
            DynamicsEvent::Storm { rank: true, .. }
        ));
        assert!(
            "randfades@1:rank:2:10:5".parse::<DynamicsSpec>().is_err(),
            "randfades draws arcs, rank: is meaningless"
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "fade@100",
            "fade@x:0>1",
            "fade@1:0-1",
            "flap@1:0>1:0:5",
            "storm@1:5-2:10",
            "storm@1:0-3:0",
            "randfades@1:2:0:5",
            "blink@1:0>1",
            "fade@1:0>1:2:3:4",
        ] {
            assert!(bad.parse::<DynamicsSpec>().is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn stranded_policy_parses() {
        assert_eq!("reinject".parse(), Ok(StrandedPolicy::Reinject));
        assert_eq!("drop".parse(), Ok(StrandedPolicy::Drop));
        assert!("park".parse::<StrandedPolicy>().is_err());
        assert_eq!(StrandedPolicy::default(), StrandedPolicy::Reinject);
    }

    #[test]
    fn fade_with_duration_compiles_to_death_and_revival() {
        let g = b24();
        let spec: DynamicsSpec = "fade@100:0>1:0:50".parse().unwrap();
        let t = spec.compile(&g, 2);
        assert_eq!(t.transitions.len(), 2);
        assert_eq!(t.deaths, 1);
        assert_eq!(t.transitions[0].cycle, 100);
        assert_eq!(t.transitions[0].capacity, 0);
        assert_eq!(t.transitions[0].crossing, Crossing::Death);
        assert_eq!(t.transitions[1].cycle, 150);
        assert_eq!(t.transitions[1].capacity, 2);
        assert_eq!(t.transitions[1].crossing, Crossing::Revival);
        // Both name the same arc: 0's out-arc to 1.
        assert_eq!(t.transitions[0].arc, t.transitions[1].arc);
    }

    #[test]
    fn partial_fade_is_not_a_crossing_and_caps_clamp() {
        let g = b24();
        let spec: DynamicsSpec = "fade@10:0>1:9:5".parse().unwrap();
        let t = spec.compile(&g, 4);
        assert_eq!(t.deaths, 0);
        assert_eq!(t.transitions[0].capacity, 4, "clamped to wavelengths");
        assert_eq!(t.transitions[0].crossing, Crossing::None);
        assert_eq!(t.transitions[1].crossing, Crossing::None);
    }

    #[test]
    fn flap_alternates_death_and_revival() {
        let g = b24();
        let spec: DynamicsSpec = "flap@10:0>1:20:5:3".parse().unwrap();
        let t = spec.compile(&g, 1);
        assert_eq!(t.transitions.len(), 6);
        assert_eq!(t.deaths, 3);
        let cycles: Vec<u64> = t.transitions.iter().map(|tr| tr.cycle).collect();
        assert_eq!(cycles, vec![10, 15, 35, 40, 60, 65]);
        for (i, tr) in t.transitions.iter().enumerate() {
            let expect = if i % 2 == 0 {
                Crossing::Death
            } else {
                Crossing::Revival
            };
            assert_eq!(tr.crossing, expect, "transition {i}");
        }
    }

    #[test]
    fn storm_kills_every_out_arc_of_the_slice() {
        let g = b24();
        let spec: DynamicsSpec = "storm@500:0-3:250".parse().unwrap();
        let t = spec.compile(&g, 2);
        // Nodes 0..=3 in B(2,4) have 2 out-arcs each.
        assert_eq!(t.deaths, 8);
        assert_eq!(t.transitions.len(), 16);
        assert!(t
            .transitions
            .iter()
            .all(|tr| tr.cycle == 500 || tr.cycle == 750));
        // Transitions are cycle-ordered: all deaths before revivals.
        assert!(t.transitions[..8]
            .iter()
            .all(|tr| tr.crossing == Crossing::Death));
        assert!(t.transitions[8..]
            .iter()
            .all(|tr| tr.crossing == Crossing::Revival));
    }

    #[test]
    fn randfades_are_seed_stable_and_splittable() {
        let g = b24();
        let four: DynamicsSpec = "randfades@42:4:1000:100".parse().unwrap();
        let five: DynamicsSpec = "randfades@42:5:1000:100".parse().unwrap();
        let a = four.compile(&g, 2);
        let b = four.compile(&g, 2);
        assert_eq!(a, b, "same seed, same schedule");
        let wider = five.compile(&g, 2);
        // Seed-splitting: the first four fades' (arc, cycle) pairs are
        // unchanged by adding a fifth.
        let key = |t: &Timeline| {
            let mut ops: Vec<(u32, u64, u32)> = t
                .transitions
                .iter()
                .map(|tr| (tr.arc, tr.cycle, tr.capacity))
                .collect();
            ops.sort_unstable();
            ops
        };
        let a_ops = key(&a);
        let wider_ops = key(&wider);
        assert!(a_ops.iter().all(|op| wider_ops.contains(op)));
        assert_eq!(a.deaths, 4);
        assert_eq!(wider.deaths, 5);
    }

    #[test]
    fn unknown_link_is_a_loud_error() {
        let g = b24();
        let spec: DynamicsSpec = "fade@1:0>9".parse().unwrap();
        let err = spec.try_compile(&g, 1, None).unwrap_err();
        assert!(err.contains("not a fabric link"), "{err}");
        // The error teaches: it lists where node 0's links actually go
        // (B(2,4): 0 → 0 and 0 → 1).
        assert!(err.contains("out-links to [node 0, node 1]"), "{err}");
    }

    #[test]
    fn rank_addressing_translates_through_the_witness() {
        // A genuinely relabeled B(2,4): outer node u carries de Bruijn
        // rank rev(u) (4-bit reversal, an involution), so the outer
        // arc set is the de Bruijn arc set pushed through rev.
        let rev = |v: u32| v.reverse_bits() >> (32 - 4);
        let g = Digraph::from_fn(16, |u| {
            let r = rev(u);
            let mut out = [rev((2 * r) % 16), rev((2 * r + 1) % 16)];
            out.sort_unstable();
            out
        });
        let witness: Vec<u32> = (0u32..16).map(rev).collect();
        // De Bruijn arc rank 0 → rank 1 lives at outer rev(0) →
        // rev(1), i.e. 0 → 8.
        let spec: DynamicsSpec = "fade@100:rank:0>1:0:50".parse().unwrap();
        let t = spec.try_compile(&g, 2, Some(&witness)).expect("compiles");
        assert_eq!(t.deaths, 1);
        let arc_0_8 = g.arc_between(0, 8).expect("0→8 is a fabric link");
        assert_eq!(t.transitions[0].arc as usize, arc_0_8);
        // The outer address of the same beam names the same arc.
        let outer: DynamicsSpec = "fade@100:0>8:0:50".parse().unwrap();
        let t_outer = outer.try_compile(&g, 2, Some(&witness)).expect("compiles");
        assert_eq!(t_outer.transitions[0].arc as usize, arc_0_8);
        // rank: without a witness is a configuration error, not a
        // silent misroute.
        let err = spec.try_compile(&g, 2, None).unwrap_err();
        assert!(err.contains("rank:"), "{err}");
        // A rank pair that is no de Bruijn arc reports both
        // numberings plus the real out-links (rev(9) = 9).
        let bad: DynamicsSpec = "fade@1:rank:0>9".parse().unwrap();
        let err = bad.try_compile(&g, 2, Some(&witness)).unwrap_err();
        assert!(err.contains("rank link 0>9 = fabric link 0>9"), "{err}");
        assert!(err.contains("de Bruijn rank"), "{err}");
    }

    #[test]
    fn overlapping_events_classify_against_replayed_capacity() {
        let g = b24();
        // The second fade hits an already-dead link: not a new death.
        let spec: DynamicsSpec = "fade@10:0>1:0:100, fade@50:0>1".parse().unwrap();
        let t = spec.compile(&g, 2);
        assert_eq!(t.deaths, 1);
        assert_eq!(t.transitions[1].crossing, Crossing::None);
        // The restore at 110 revives (capacity was 0 since cycle 50).
        assert_eq!(t.transitions[2].crossing, Crossing::Revival);
    }
}
