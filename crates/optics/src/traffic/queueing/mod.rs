//! Cycle-based discrete-event queueing simulation: congestion with
//! *dynamics*, at fabric scales the paper actually targets.
//!
//! The static engine ([`super::TrafficEngine`]) tallies how much load
//! oblivious routing piles on each link — the forwarding-index view of
//! the paper. What it cannot show is what an optical fabric actually
//! does when a link is oversubscribed: packets wait in finite buffers,
//! buffers fill, upstream traffic backs up or gets dropped, and
//! throughput saturates. On wavelength-routed fabrics that contention
//! — not path length — bounds achievable throughput (cf. the
//! all-optical BCube and conjugate-network papers in PAPERS.md).
//!
//! The model is the standard synchronous abstraction of that story:
//!
//! * every directed link (one transceiver beam) owns `vcs` virtual
//!   channels, each a FIFO of `buffers` packets, and `wavelengths`
//!   parallel drain channels shared by its VCs;
//! * each cycle, every link drains up to `wavelengths` packets off its
//!   VC FIFO heads, round-robin across classes; a packet arriving at
//!   its destination leaves the network, any other packet asks the
//!   router for its next link;
//! * a full downstream FIFO either blocks the packet in place —
//!   blocking only its own VC class
//!   ([`ContentionPolicy::Backpressure`]) — or discards it
//!   ([`ContentionPolicy::TailDrop`]);
//! * injection offers `offered_per_cycle` new packets per cycle
//!   (fabric-wide) through **independent per-source injection
//!   queues**; a backpressured source stalls only itself;
//! * virtual channel classes follow the **dateline** discipline
//!   ([`otis_core::Dateline`]): packets inject on class 0 and are
//!   promoted one class per *wrap arc* crossed (a feedback arc set of
//!   the fabric, so every cycle of the fabric contains one), making
//!   the channel-dependency graph acyclic; with `vcs ≥ 2` and
//!   `Backpressure` the all-blocked state is unreachable for any
//!   router — the one unorderable move (a top-class packet wrapping
//!   again) never blocks (`dateline_relief`).
//!
//! # The hot path (see [`run`] for the full contract)
//!
//! Packets live in a structure-of-arrays **arena** — one slab,
//! free-list recycled `u32` ids, intrusive per-channel FIFOs — so a
//! cycle touches cache lines, not allocator metadata. The drain phase
//! walks an **active-node worklist** (a dense bitset over nodes with
//! queued inbound traffic) instead of scanning every channel, so idle
//! fabric regions cost one word load per 64 nodes. With
//! `drain_threads > 1` the drain **shards nodes across scoped
//! workers**: every buffer a node's drain writes belongs to that
//! node's own out-arcs, so ownership is disjoint with no CAS loops,
//! and room checks use phase-boundary credits (a slot freed this
//! cycle is claimable next cycle) so the report is byte-identical at
//! any thread count. Stateless routers get per-packet next-hop
//! caching: a blocked head costs a word load per cycle, not a routing
//! query. The pre-arena engine survives as
//! [`reference::ReferenceEngine`], the ablation baseline the
//! `routing_sim` bench measures the rewrite against.
//!
//! Everything is deterministic, and fair by rotation: each node's
//! drain starts from a different inbound link each cycle (and from a
//! different VC class within a link), and the injection phase rotates
//! its starting source the same way. The same seed yields the same
//! report — at any `drain_threads`. The engine publishes per-VC
//! buffer occupancy through [`LinkOccupancy`] (an
//! [`otis_core::CongestionMap`]) at cycle granularity, which is what
//! lets an [`otis_core::AdaptiveRouter`] steer *this* simulation's
//! packets around *this* simulation's queues — per VC class, when
//! built with [`otis_core::AdaptiveRouter::with_dateline`].

mod arena;
pub mod dynamics;
pub mod reference;
mod run;

pub use dynamics::{DynamicsSpec, StrandedPolicy};

use super::report::QueueingReport;
use super::workload::{MulticastGroup, WorkloadSource};
use otis_core::{CongestionMap, Dateline, DigraphFamily, MulticastTree, Router};
use otis_digraph::Digraph;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// What happens upstream when a downstream buffer is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContentionPolicy {
    /// The packet waits where it is, blocking its VC FIFO (and, at the
    /// source, stalling that source's injection queue). Lossless; with
    /// `vcs = 1` cyclic fabrics can deadlock under saturation (the run
    /// detects the wedged cycle and reports it), while `vcs ≥ 2`
    /// dateline channels dissolve the ring dependencies instead.
    Backpressure,
    /// The packet is discarded and counted (`dropped_full`). Lossy,
    /// deadlock-free — the usual optical-switch behavior when no
    /// buffer wavelength is free.
    TailDrop,
}

impl std::str::FromStr for ContentionPolicy {
    type Err = String;

    fn from_str(raw: &str) -> Result<Self, String> {
        match raw {
            "backpressure" => Ok(ContentionPolicy::Backpressure),
            "taildrop" | "tail-drop" => Ok(ContentionPolicy::TailDrop),
            other => Err(format!(
                "unknown contention policy {other:?} (valid: backpressure|taildrop)"
            )),
        }
    }
}

/// Knobs of the queueing model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueConfig {
    /// FIFO buffer capacity per virtual channel, packets. Must be ≥ 1.
    pub buffers: usize,
    /// Wavelength channels per link: packets drained per link per
    /// cycle, shared by the link's VCs. Must be ≥ 1.
    pub wavelengths: usize,
    /// Virtual channels per directed link (dateline classes). Must be
    /// `1..=255`; `1` reproduces the single-FIFO fabric (and its
    /// backpressure deadlocks), `≥ 2` makes backpressure lossless on
    /// the ring decompositions these fabrics are built from.
    pub vcs: usize,
    /// Full-buffer behavior.
    pub policy: ContentionPolicy,
    /// Hop budget per packet (TTL); `None` = `max(64, 2n)`. Bounds
    /// adaptive deroutes and misrouting routers alike.
    pub hop_limit: Option<u32>,
    /// Hard cap on simulated cycles; packets still buffered then are
    /// reported as `in_flight`.
    pub max_cycles: u64,
    /// Drain-phase worker threads: `0` picks automatically (1 below
    /// 4096 nodes, hardware parallelism capped at 8 above). The
    /// report is byte-identical at every thread count — sharding is
    /// by downstream-node ownership over phase-stable state, so
    /// parallelism changes wall clock, never results.
    pub drain_threads: usize,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            buffers: 16,
            wavelengths: 1,
            vcs: 1,
            policy: ContentionPolicy::TailDrop,
            hop_limit: None,
            max_cycles: 10_000_000,
            drain_threads: 0,
        }
    }
}

/// Live per-VC buffer occupancy, shared between a running
/// [`QueueingEngine`] and any [`otis_core::AdaptiveRouter`] steering
/// packets through it. Updated at phase boundaries (injection commits
/// live; drain moves commit at each cycle's apply step), so adaptive
/// decisions read a consistent, cycle-stable view.
///
/// Cloning is cheap (two `Arc`s); all clones observe the same counts.
#[derive(Debug, Clone)]
pub struct LinkOccupancy {
    g: Arc<Digraph>,
    /// One counter per (arc, VC class), arc-major.
    counts: Arc<[AtomicU32]>,
    /// Per-arc fade penalty (see [`QueueingEngine`]'s dynamics): the
    /// congestion view adds it to the arc's occupancy so an adaptive
    /// router steers around degraded and dead beams; the raw
    /// occupancy probes ([`LinkOccupancy::arc_occupancy`]) stay true
    /// buffer counts. All zeros while no dynamics event has fired.
    penalty: Arc<[AtomicU32]>,
    vcs: usize,
}

impl LinkOccupancy {
    // ORDERING: Relaxed loads. The counters are written only at phase
    // boundaries (injection commit, the apply step) while routing
    // decisions read them in the next cycle's decode/inject phase; the
    // engine's Barrier::wait() between those phases is the
    // synchronizes-with edge that makes the writes visible, so the
    // loads themselves need no ordering. A router probing from outside
    // a run sees a quiescent scoreboard.
    /// Virtual channels per link this view resolves.
    pub fn vcs(&self) -> usize {
        self.vcs
    }

    /// Occupancy of the `arc`-th link (arc order of the digraph),
    /// summed over its VC classes.
    pub fn arc_occupancy(&self, arc: usize) -> usize {
        (0..self.vcs)
            .map(|vc| self.counts[arc * self.vcs + vc].load(Ordering::Relaxed) as usize)
            .sum()
    }

    /// Occupancy of one VC FIFO of the `arc`-th link. Classes this
    /// view does not have (`vc ≥ vcs`) read `0` — a router configured
    /// with more dateline classes than the engine must not read a
    /// neighboring link's counter.
    pub fn channel_occupancy(&self, arc: usize, vc: usize) -> usize {
        if vc >= self.vcs {
            return 0;
        }
        self.counts[arc * self.vcs + vc].load(Ordering::Relaxed) as usize
    }

    /// The arc `from → to`, if present (`None` off-fabric: the
    /// congestion contract reads unknown links as empty).
    fn arc_of(&self, from: u64, to: u64) -> Option<usize> {
        arc_of(&self.g, from, to)
    }
}

/// The arc `from → to` of `g`, if present — `None` for off-fabric
/// endpoints (u64-safe: no truncation before the range check), so
/// probes against router-proposed hops need no pre-validation.
pub(crate) fn arc_of(g: &Digraph, from: u64, to: u64) -> Option<usize> {
    let n = g.node_count() as u64;
    if from >= n || to >= n {
        return None;
    }
    g.arc_between(from as u32, to as u32)
}

impl LinkOccupancy {
    /// The fade penalty charged on top of `arc`'s occupancy in the
    /// congestion view. `0` until a dynamics event degrades the link.
    fn arc_penalty(&self, arc: usize) -> usize {
        // ORDERING: Relaxed — written only on the engine's sequential
        // event-application slot (workers at the barrier); read by
        // adaptive routers in later phases, behind that barrier.
        self.penalty[arc].load(Ordering::Relaxed) as usize
    }
}

impl CongestionMap for LinkOccupancy {
    fn queued(&self, from: u64, to: u64) -> usize {
        self.arc_of(from, to)
            .map_or(0, |arc| self.arc_occupancy(arc) + self.arc_penalty(arc))
    }

    fn queued_vc(&self, from: u64, to: u64, vc: u8) -> usize {
        self.arc_of(from, to).map_or(0, |arc| {
            self.channel_occupancy(arc, vc as usize) + self.arc_penalty(arc)
        })
    }
}

/// A multicast workload's delivery trees, flattened for the cycle
/// loop: every tree arc of every group gets one global `u32` id (the
/// id an in-flight packet copy carries in its arena `dst` slot), with
/// per-arc fabric arc, CSR child lists, delivery counts and subtree
/// *weights* — the number of requested destination leaves below the
/// arc, which is the leaf-unit bookkeeping the conservation law
/// `injected_leaves = delivered + dropped + in_flight` runs on.
///
/// Arcs whose endpoints the fabric does not connect (a router proposed
/// a non-neighbor) or that serve no leaf at all (partial walks toward
/// destinations that turned out unreachable) are pruned here, their
/// leaves folded into the group's unroutable count, so the cycle loop
/// only ever sees spawnable copies.
pub(super) struct TreeSet {
    /// Per tree arc: the fabric arc it rides.
    fabric_arc: Vec<u32>,
    /// Per tree arc: requests delivered at its child endpoint.
    deliveries: Vec<u32>,
    /// Per tree arc: requested leaves in its subtree (≥ deliveries).
    weight: Vec<u32>,
    /// CSR child lists: `child_arcs[child_off[t]..child_off[t+1]]`.
    child_off: Vec<u32>,
    child_arcs: Vec<u32>,
    /// CSR root lists per group, same layout.
    root_off: Vec<u32>,
    root_arcs: Vec<u32>,
    /// Per group: the root node.
    root: Vec<u64>,
    /// Per group: requests for the root itself (delivered at source).
    self_requests: Vec<u32>,
    /// Per group: leaves with no usable route (unreachable + pruned).
    unroutable: Vec<u32>,
    /// Per group: every requested leaf (= self + unroutable + the
    /// root arcs' weights).
    leaves: Vec<u32>,
    /// Max per-fabric-arc tree count — the static multicast
    /// forwarding index of this workload under this routing.
    forwarding_index: u64,
}

impl TreeSet {
    /// Flatten `groups`' delivery trees over `router` against fabric
    /// `g`.
    pub(super) fn build(g: &Digraph, router: &dyn Router, groups: &[MulticastGroup]) -> Self {
        let mut set = TreeSet {
            fabric_arc: Vec::new(),
            deliveries: Vec::new(),
            weight: Vec::new(),
            child_off: Vec::new(),
            child_arcs: Vec::new(),
            root_off: vec![0],
            root_arcs: Vec::new(),
            root: Vec::with_capacity(groups.len()),
            self_requests: Vec::with_capacity(groups.len()),
            unroutable: Vec::with_capacity(groups.len()),
            leaves: Vec::with_capacity(groups.len()),
            forwarding_index: 0,
        };
        let mut tree_load = vec![0u64; g.arc_count()];
        // Scratch, reused per group: invalid flags, kept-subtree
        // weights, local→global ids.
        let mut invalid: Vec<bool> = Vec::new();
        let mut kept_weight: Vec<u64> = Vec::new();
        let mut fabric_of: Vec<u32> = Vec::new();
        let mut global_id: Vec<u32> = Vec::new();
        let mut children: Vec<Vec<u32>> = Vec::new();
        for group in groups {
            let tree = MulticastTree::build(router, group.root, &group.dsts);
            let arcs = tree.arc_count();
            invalid.clear();
            invalid.resize(arcs, false);
            fabric_of.clear();
            fabric_of.resize(arcs, u32::MAX);
            global_id.clear();
            global_id.resize(arcs, 0);
            children.clear();
            children.resize(arcs, Vec::new());
            // Pass 1 (forward): an invalid arc — the router proposed a
            // non-fabric hop — prunes its whole subtree at its topmost
            // occurrence, where the subtree's leaves all become
            // unroutable; descendants are marked silently.
            let mut unroutable = tree.unreachable().len() as u64;
            for arc in 0..arcs {
                if let Some(parent) = tree.parent_arc(arc) {
                    if invalid[parent] {
                        invalid[arc] = true;
                        continue;
                    }
                }
                match arc_of(g, tree.endpoints(arc).0, tree.endpoints(arc).1) {
                    Some(fabric) => fabric_of[arc] = fabric as u32,
                    None => {
                        invalid[arc] = true;
                        unroutable += tree.leaf_load(arc);
                    }
                }
            }
            // Pass 2 (reverse): the weight each surviving arc actually
            // carries — its own deliveries plus surviving children
            // only. Leaves lost to pruned subtrees must NOT stay in
            // ancestor weights (they are already in `unroutable`, and
            // double-counting breaks leaf conservation).
            kept_weight.clear();
            kept_weight.resize(arcs, 0);
            for arc in (0..arcs).rev() {
                if invalid[arc] {
                    continue;
                }
                kept_weight[arc] += tree.deliveries_at(arc);
                if let Some(parent) = tree.parent_arc(arc) {
                    kept_weight[parent] += kept_weight[arc];
                }
            }
            // Pass 3 (forward): emit the kept arcs — valid and with a
            // positive surviving weight (a zero-weight arc serves no
            // leaf: partial walks toward unreachable destinations, or
            // chains whose every leaf was pruned away).
            for arc in 0..arcs {
                if invalid[arc] || kept_weight[arc] == 0 {
                    continue;
                }
                let id = set.fabric_arc.len() as u32;
                global_id[arc] = id;
                set.fabric_arc.push(fabric_of[arc]);
                tree_load[fabric_of[arc] as usize] += 1;
                set.deliveries.push(tree.deliveries_at(arc) as u32);
                set.weight.push(kept_weight[arc] as u32);
                match tree.parent_arc(arc) {
                    Some(parent) => children[parent].push(id),
                    None => set.root_arcs.push(id),
                }
            }
            // Child CSR rows, in global-id (= tree) order.
            for arc in 0..arcs {
                if !invalid[arc] && kept_weight[arc] > 0 {
                    set.child_off.push(set.child_arcs.len() as u32);
                    set.child_arcs.extend_from_slice(&children[arc]);
                }
            }
            set.root_off.push(set.root_arcs.len() as u32);
            set.root.push(group.root);
            set.self_requests.push(tree.self_requests() as u32);
            set.unroutable.push(unroutable as u32);
            set.leaves.push(tree.total_leaves() as u32);
            // The leaf partition the conservation law runs on: every
            // requested leaf is a self-request, unroutable, or carried
            // by exactly one surviving root arc.
            debug_assert_eq!(
                tree.total_leaves(),
                tree.self_requests() as u64 + unroutable + {
                    let lo = set.root_off[set.root_off.len() - 2] as usize;
                    set.root_arcs[lo..]
                        .iter()
                        .map(|&t| set.weight[t as usize] as u64)
                        .sum::<u64>()
                },
                "pruning lost or double-counted leaves"
            );
        }
        set.child_off.push(set.child_arcs.len() as u32);
        set.forwarding_index = tree_load.iter().copied().max().unwrap_or(0);
        set
    }

    /// Number of groups flattened.
    pub(super) fn group_count(&self) -> usize {
        self.root.len()
    }

    /// Total spawnable tree arcs — the arena capacity bound: each arc
    /// hosts at most one live copy over the whole run.
    pub(super) fn arc_count(&self) -> usize {
        self.fabric_arc.len()
    }

    /// The fabric arc the `t`-th tree arc rides.
    pub(super) fn fabric_arc(&self, t: u32) -> usize {
        self.fabric_arc[t as usize] as usize
    }

    /// Requests delivered at the `t`-th tree arc's head.
    pub(super) fn deliveries(&self, t: u32) -> u32 {
        self.deliveries[t as usize]
    }

    /// Requested leaves below (and at) the `t`-th tree arc.
    pub(super) fn weight(&self, t: u32) -> u32 {
        self.weight[t as usize]
    }

    /// Child tree arcs of the `t`-th tree arc.
    pub(super) fn children(&self, t: u32) -> &[u32] {
        let lo = self.child_off[t as usize] as usize;
        let hi = self.child_off[t as usize + 1] as usize;
        &self.child_arcs[lo..hi]
    }

    /// Tree arcs hanging off group `g`'s root.
    pub(super) fn group_root_arcs(&self, g: usize) -> &[u32] {
        let lo = self.root_off[g] as usize;
        let hi = self.root_off[g + 1] as usize;
        &self.root_arcs[lo..hi]
    }

    /// Group `g`'s root node.
    pub(super) fn group_root(&self, g: usize) -> u64 {
        self.root[g]
    }

    /// Group `g`'s root self-requests.
    pub(super) fn group_self_requests(&self, g: usize) -> u32 {
        self.self_requests[g]
    }

    /// Group `g`'s unroutable leaves.
    pub(super) fn group_unroutable(&self, g: usize) -> u32 {
        self.unroutable[g]
    }

    /// Group `g`'s total requested leaves.
    pub(super) fn group_leaves(&self, g: usize) -> u32 {
        self.leaves[g]
    }

    /// The static multicast forwarding index of the flattened
    /// workload.
    pub(super) fn forwarding_index(&self) -> u64 {
        self.forwarding_index
    }
}

/// Cycle-accurate queueing simulator over one fabric digraph.
///
/// Reusable across runs ([`QueueingEngine::run`] carries no state
/// over), but runs must not overlap: the occupancy counters are a
/// single shared scoreboard.
pub struct QueueingEngine {
    g: Arc<Digraph>,
    config: QueueConfig,
    /// The link-dynamics script runs replay, if any, with its
    /// timeline compiled once against this fabric (see
    /// [`QueueingEngine::set_dynamics`]).
    dynamics: Option<(DynamicsSpec, dynamics::Timeline)>,
    /// What a run does with packets stranded by a link death.
    stranded: StrandedPolicy,
    /// Route lock-free through the repairing router's published
    /// epoch snapshot where legal (default). `false` forces every
    /// next-hop query through the router's own locked path — kept as
    /// the differential-testing oracle for the snapshot fast path.
    snapshot_reads: bool,
    /// One counter per (arc, VC class), arc-major — the occupancy
    /// scoreboard behind [`LinkOccupancy`].
    counts: Arc<[AtomicU32]>,
    /// Per-arc fade penalty fed into [`LinkOccupancy`]'s congestion
    /// view; maintained by the run loop as dynamics events fire.
    fade_penalty: Arc<[AtomicU32]>,
    /// The dateline wrap set (a feedback arc set of the fabric) and
    /// class discipline, computed once per engine and `Arc`-shared
    /// with every router and sweep point that needs it.
    dateline: Arc<Dateline>,
    /// Reverse CSR over the fabric: `in_arcs[in_offsets[v]..
    /// in_offsets[v + 1]]` are the arc ids targeting `v`, ascending —
    /// the drain phase's per-node work lists.
    in_offsets: Box<[u32]>,
    in_arcs: Box<[u32]>,
}

impl QueueingEngine {
    /// Engine over a materialized fabric digraph.
    pub fn new(g: Digraph, config: QueueConfig) -> Self {
        assert!(
            config.buffers >= 1,
            "need at least one buffer slot per virtual channel"
        );
        assert!(
            config.wavelengths >= 1,
            "need at least one wavelength channel per link"
        );
        assert!(
            (1..=u8::MAX as usize).contains(&config.vcs),
            "need 1..=255 virtual channels per link, got {}",
            config.vcs
        );
        let arcs = g.arc_count();
        // Channel ids (arc · vcs + class) are u32 throughout the run
        // loop, with u32::MAX as the null sentinel — guard the product,
        // not just the arc count.
        assert!(
            arcs.checked_mul(config.vcs)
                .is_some_and(|channels| channels < u32::MAX as usize),
            "fabric has {arcs} arcs × {} VCs; channel ids must fit below u32::MAX",
            config.vcs
        );
        let counts: Vec<AtomicU32> = (0..arcs * config.vcs).map(|_| AtomicU32::new(0)).collect();
        let fade_penalty: Vec<AtomicU32> = (0..arcs).map(|_| AtomicU32::new(0)).collect();
        // Reverse CSR by counting sort over arc targets.
        let n = g.node_count();
        let mut in_offsets = vec![0u32; n + 1];
        for arc in 0..arcs {
            in_offsets[g.arc_target(arc) as usize + 1] += 1;
        }
        for v in 0..n {
            in_offsets[v + 1] += in_offsets[v];
        }
        let mut cursor = in_offsets.clone();
        let mut in_arcs = vec![0u32; arcs];
        for arc in 0..arcs {
            let v = g.arc_target(arc) as usize;
            in_arcs[cursor[v] as usize] = arc as u32;
            cursor[v] += 1;
        }
        let g = Arc::new(g);
        let dateline = Arc::new(Dateline::new(Arc::clone(&g), config.vcs));
        QueueingEngine {
            g,
            config,
            dynamics: None,
            stranded: StrandedPolicy::default(),
            snapshot_reads: true,
            counts: counts.into(),
            fade_penalty: fade_penalty.into(),
            dateline,
            in_offsets: in_offsets.into_boxed_slice(),
            in_arcs: in_arcs.into_boxed_slice(),
        }
    }

    /// Engine over any family (materializes it first).
    pub fn from_family<F: DigraphFamily>(family: &F, config: QueueConfig) -> Self {
        Self::new(family.digraph(), config)
    }

    /// The fabric's node count.
    pub fn node_count(&self) -> u64 {
        self.g.node_count() as u64
    }

    /// Number of directed links (arcs) simulated.
    pub fn link_count(&self) -> usize {
        self.g.arc_count()
    }

    /// The engine's configuration.
    pub fn config(&self) -> &QueueConfig {
        &self.config
    }

    /// Replay `spec`'s link dynamics on every subsequent run: fades,
    /// flaps and storms applied at cycle boundaries, with stranded
    /// packets handled per `stranded`. The spec is compiled against
    /// the fabric immediately — once, not per run — so unknown links
    /// panic here, not mid-run. Unicast (materialized or streamed)
    /// runs only — a multicast run with dynamics set is rejected.
    ///
    /// # Panics
    ///
    /// On a spec the fabric cannot satisfy; use
    /// [`QueueingEngine::try_set_dynamics`] to keep the error.
    pub fn set_dynamics(&mut self, spec: DynamicsSpec, stranded: StrandedPolicy) {
        self.try_set_dynamics(spec, stranded)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// As [`QueueingEngine::set_dynamics`], returning the compile
    /// error (unknown link, out-of-range node, `rank:` addressing
    /// without a witness) instead of panicking.
    pub fn try_set_dynamics(
        &mut self,
        spec: DynamicsSpec,
        stranded: StrandedPolicy,
    ) -> Result<(), String> {
        self.try_set_dynamics_relabeled(spec, stranded, None)
    }

    /// As [`QueueingEngine::try_set_dynamics`] for a *relabeled*
    /// fabric: `node_rank` is the de Bruijn isomorphism witness
    /// (`node_rank[fabric_node] = rank`) of the
    /// [`otis_core::RelabeledRouter`] driving the run, and lets the
    /// spec address links in rank space via the `rank:` prefix (see
    /// [`DynamicsSpec`]'s grammar). Compile errors on such fabrics
    /// name offending links in both numberings.
    pub fn try_set_dynamics_relabeled(
        &mut self,
        spec: DynamicsSpec,
        stranded: StrandedPolicy,
        node_rank: Option<&[u32]>,
    ) -> Result<(), String> {
        let timeline = spec.try_compile(&self.g, self.config.wavelengths, node_rank)?;
        self.dynamics = Some((spec, timeline));
        self.stranded = stranded;
        Ok(())
    }

    /// Remove a previously set dynamics timeline.
    pub fn clear_dynamics(&mut self) {
        self.dynamics = None;
    }

    /// Route drain/inject next-hop queries through the repairing
    /// router's published epoch snapshot (lock-free) where legal.
    /// Defaults to `true`; `false` forces the router's own locked
    /// path on every query — the byte-identical oracle the snapshot
    /// fast path is differentially tested against.
    pub fn set_snapshot_reads(&mut self, enabled: bool) {
        self.snapshot_reads = enabled;
    }

    pub(super) fn snapshot_reads(&self) -> bool {
        self.snapshot_reads
    }

    pub(super) fn dynamics(&self) -> Option<&(DynamicsSpec, dynamics::Timeline)> {
        self.dynamics.as_ref()
    }

    pub(super) fn stranded_policy(&self) -> StrandedPolicy {
        self.stranded
    }

    pub(super) fn fade_penalty(&self) -> &[AtomicU32] {
        &self.fade_penalty
    }

    /// The simulated fabric.
    pub(super) fn digraph(&self) -> &Digraph {
        &self.g
    }

    pub(super) fn counts(&self) -> &[AtomicU32] {
        &self.counts
    }

    pub(super) fn dateline_ref(&self) -> &Dateline {
        &self.dateline
    }

    pub(super) fn in_offsets(&self) -> &[u32] {
        &self.in_offsets
    }

    pub(super) fn in_arcs(&self) -> &[u32] {
        &self.in_arcs
    }

    /// The dateline VC discipline this engine runs, `Arc`-shared (no
    /// wrap-set copy however many sweep points or routers take one) —
    /// hand it to [`otis_core::AdaptiveRouter::with_dateline`] so
    /// adaptive scoring charges exactly the FIFO a packet would join.
    pub fn dateline(&self) -> Arc<Dateline> {
        Arc::clone(&self.dateline)
    }

    /// A live view of this engine's buffer occupancy — hand it to an
    /// [`otis_core::AdaptiveRouter`] *before* calling
    /// [`QueueingEngine::run`] and the router adapts to the queues the
    /// run builds up.
    pub fn occupancy(&self) -> LinkOccupancy {
        LinkOccupancy {
            g: Arc::clone(&self.g),
            counts: Arc::clone(&self.counts),
            penalty: Arc::clone(&self.fade_penalty),
            vcs: self.config.vcs,
        }
    }

    /// Inject `workload` at `offered_per_cycle` packets per cycle
    /// (fabric-wide) through per-source injection queues, simulate
    /// until every injected packet is delivered or dropped (or the
    /// run deadlocks / hits `max_cycles`), and report the dynamics.
    /// Every workload source must be a fabric node (`src <
    /// node_count`); destinations may be arbitrary (an off-fabric
    /// destination is an unroutable drop).
    pub fn run(
        &self,
        router: &dyn Router,
        workload: &[(u64, u64)],
        offered_per_cycle: f64,
    ) -> QueueingReport {
        self.run_classified(router, workload, offered_per_cycle, None)
    }

    /// As [`QueueingEngine::run`], additionally splitting delay,
    /// delivery and drops by traffic class — packets destined for
    /// `hot_dst` versus everything else
    /// ([`QueueingReport::class_stats`]). Pass the hotspot pattern's
    /// hot node ([`super::TrafficPattern::hot_node`]) and the
    /// tree-saturation story becomes visible per class: the hot
    /// quarter queueing into the saturated in-tree, the background
    /// three quarters suffering only collateral head-of-line damage.
    pub fn run_classified(
        &self,
        router: &dyn Router,
        workload: &[(u64, u64)],
        offered_per_cycle: f64,
        hot_dst: Option<u64>,
    ) -> QueueingReport {
        run::execute(
            self,
            router,
            run::Work::Unicast(workload),
            offered_per_cycle,
            hot_dst,
        )
    }

    /// As [`QueueingEngine::run`], but fed by a streamed
    /// [`WorkloadSource`] instead of a materialized pair slice: the
    /// decode step regenerates one deterministic chunk at a time, so
    /// a ten-million-packet run holds one chunk (not 160 MB of pairs)
    /// resident. The report is byte-identical to materializing the
    /// same source and calling [`QueueingEngine::run`] — the decode
    /// step is the only consumer of either feed.
    pub fn run_streamed(
        &self,
        router: &dyn Router,
        source: &WorkloadSource,
        offered_per_cycle: f64,
    ) -> QueueingReport {
        self.run_streamed_classified(router, source, offered_per_cycle, None)
    }

    /// As [`QueueingEngine::run_streamed`], additionally splitting
    /// delay, delivery and drops by traffic class (see
    /// [`QueueingEngine::run_classified`]).
    pub fn run_streamed_classified(
        &self,
        router: &dyn Router,
        source: &WorkloadSource,
        offered_per_cycle: f64,
        hot_dst: Option<u64>,
    ) -> QueueingReport {
        run::execute(
            self,
            router,
            run::Work::Streamed(source),
            offered_per_cycle,
            hot_dst,
        )
    }

    /// Inject one-to-many `groups` at `offered_per_cycle` **groups**
    /// per cycle and simulate their delivery trees with in-fabric
    /// replication: a copy reaching a tree branch spawns one child
    /// copy per child arc inside the packet arena, every arc is
    /// crossed once however many leaves it serves, and delivery is
    /// counted per destination leaf. All leaf-unit counters of the
    /// report (`injected`, `delivered`, drops, `in_flight`) obey
    /// `injected_leaves = delivered + dropped + in_flight`.
    /// Backpressure, dateline VC classes and the deterministic
    /// sharded drain work unchanged: a branch blocks until every
    /// non-relief child FIFO has room, promotes each child per its own
    /// arc, and reports byte-identically at any `drain_threads`.
    pub fn run_multicast(
        &self,
        router: &dyn Router,
        groups: &[MulticastGroup],
        offered_per_cycle: f64,
    ) -> QueueingReport {
        assert!(
            self.dynamics.is_none(),
            "link dynamics are unicast-only: multicast trees are prebuilt \
             against the static fabric and cannot reroute mid-run"
        );
        let trees = TreeSet::build(&self.g, router, groups);
        run::execute(
            self,
            router,
            run::Work::Multicast(&trees),
            offered_per_cycle,
            None,
        )
    }

    /// Sweep offered load (packets per **node** per cycle) and measure
    /// delivered throughput at each point — the saturation curve of
    /// the fabric under this router.
    pub fn saturation_sweep(
        &self,
        router: &dyn Router,
        workload: &[(u64, u64)],
        loads_per_node: &[f64],
    ) -> SaturationSweep {
        let n = self.node_count() as f64;
        let points = loads_per_node
            .iter()
            .map(|&load| {
                let report = self.run(router, workload, load * n);
                SaturationPoint {
                    offered_per_node: load,
                    delivered_per_node: report.throughput_per_cycle() / n,
                    drop_rate: report.drop_rate(),
                    wait_p99_cycles: report.wait_p99_cycles,
                    deadlocked: report.deadlocked,
                }
            })
            .collect();
        SaturationSweep { points }
    }
}

/// One point of an offered-load sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaturationPoint {
    /// Offered load, packets per node per cycle.
    pub offered_per_node: f64,
    /// Delivered throughput, packets per node per cycle.
    pub delivered_per_node: f64,
    /// Fraction of injected packets dropped at this load.
    pub drop_rate: f64,
    /// 99th-percentile queueing delay at this load, cycles.
    pub wait_p99_cycles: u64,
    /// True iff this point's run wedged under backpressure.
    pub deadlocked: bool,
}

/// An offered-load sweep: the saturation curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SaturationSweep {
    /// One entry per offered load, in sweep order.
    pub points: Vec<SaturationPoint>,
}

impl SaturationSweep {
    /// Saturation-throughput estimate: the highest delivered
    /// throughput any offered load achieved (past saturation the curve
    /// plateaus or degrades, so the max is the knee).
    pub fn saturation_throughput_per_node(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.delivered_per_node)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otis_core::RoutingTable;

    /// The directed cycle C_n: one arc per node, fully deterministic.
    fn cycle(n: usize) -> Digraph {
        Digraph::from_fn(n, |u| [(u + 1) % n as u32])
    }

    fn config(buffers: usize, wavelengths: usize, policy: ContentionPolicy) -> QueueConfig {
        QueueConfig {
            buffers,
            wavelengths,
            policy,
            ..QueueConfig::default()
        }
    }

    #[test]
    fn single_packet_crosses_without_waiting() {
        let g = cycle(5);
        let router = RoutingTable::new(&g);
        let engine = QueueingEngine::new(g, QueueConfig::default());
        let report = engine.run(&router, &[(0, 3)], 1.0);
        assert_eq!(report.injected, 1);
        assert_eq!(report.delivered, 1);
        assert_eq!(report.dropped(), 0);
        assert_eq!(report.in_flight, 0);
        assert!(report.conserves_packets());
        assert_eq!(report.delivered_hops, 3);
        assert_eq!(report.max_hops, 3);
        // Uncontended: zero queueing delay, one cycle per hop.
        assert_eq!(report.wait_max_cycles, 0);
        assert_eq!(report.cycles, 3);
        assert!(!report.deadlocked);
        assert_eq!(report.vcs, 1);
        assert_eq!(report.dateline_promotions, 0);
        assert_eq!(report.source_stall_cycles, 0);
        // The final hop 2→3 is the third arc.
        assert_eq!(report.delivered_per_link, vec![0, 0, 1, 0, 0]);
    }

    #[test]
    fn wavelength_contention_serializes_a_shared_link() {
        // Three packets all need link 0→1 in the same cycle; one
        // wavelength drains one per cycle, so they wait 0, 1, 2 cycles.
        let g = cycle(4);
        let router = RoutingTable::new(&g);
        let engine = QueueingEngine::new(g, config(16, 1, ContentionPolicy::Backpressure));
        let report = engine.run(&router, &[(0, 1), (0, 1), (0, 1)], 3.0);
        assert_eq!(report.delivered, 3);
        assert!(report.conserves_packets());
        assert_eq!(report.wait_max_cycles, 2);
        assert_eq!(report.wait_p50_cycles, 1);
        assert_eq!(report.max_peak_occupancy, 3, "all three queued at once");
        // Two wavelengths halve the serialization.
        let g = cycle(4);
        let router = RoutingTable::new(&g);
        let engine = QueueingEngine::new(g, config(16, 2, ContentionPolicy::Backpressure));
        let report = engine.run(&router, &[(0, 1), (0, 1), (0, 1)], 3.0);
        assert_eq!(report.delivered, 3);
        assert_eq!(report.wait_max_cycles, 1);
    }

    #[test]
    fn tail_drop_discards_past_full_buffers() {
        // One buffer slot on the injection link: of three simultaneous
        // packets, the first queues, the other two tail-drop.
        let g = cycle(4);
        let router = RoutingTable::new(&g);
        let engine = QueueingEngine::new(g, config(1, 1, ContentionPolicy::TailDrop));
        let report = engine.run(&router, &[(0, 1), (0, 1), (0, 1)], 3.0);
        assert_eq!(report.delivered, 1);
        assert_eq!(report.dropped_full, 2);
        assert!(report.conserves_packets());
        assert_eq!(report.max_peak_occupancy, 1, "buffer never exceeds its cap");
    }

    #[test]
    fn backpressure_stalls_injection_instead_of_dropping() {
        let g = cycle(4);
        let router = RoutingTable::new(&g);
        let engine = QueueingEngine::new(g, config(1, 1, ContentionPolicy::Backpressure));
        let report = engine.run(&router, &[(0, 1), (0, 1), (0, 1)], 3.0);
        // Lossless: everything eventually delivers, the run just takes
        // longer than the tail-drop run.
        assert_eq!(report.delivered, 3);
        assert_eq!(report.dropped(), 0);
        assert!(report.conserves_packets());
        assert!(!report.deadlocked);
        assert!(
            report.source_stall_cycles > 0,
            "the single-slot buffer must have stalled the source"
        );
    }

    #[test]
    fn backpressure_ring_deadlock_is_detected_and_conserved() {
        // C_3 with single-slot buffers and every packet two hops from
        // home: all three buffers fill, each head needs the next full
        // buffer — a classic cyclic-dependency deadlock.
        let g = cycle(3);
        let router = RoutingTable::new(&g);
        let engine = QueueingEngine::new(g.clone(), config(1, 1, ContentionPolicy::Backpressure));
        let occupancy = engine.occupancy();
        let report = engine.run(&router, &[(0, 2), (1, 0), (2, 1)], 3.0);
        assert!(report.deadlocked, "{report:?}");
        assert_eq!(report.delivered, 0);
        assert_eq!(report.in_flight, 3);
        assert!(report.conserves_packets());
        // The occupancy view still shows the wedged buffers.
        assert_eq!(occupancy.queued(0, 1), 1);
        assert_eq!(occupancy.queued(1, 2), 1);
        assert_eq!(occupancy.queued(2, 0), 1);
        // The same scenario under tail-drop cannot wedge.
        let engine = QueueingEngine::new(g, config(1, 1, ContentionPolicy::TailDrop));
        let report = engine.run(&router, &[(0, 2), (1, 0), (2, 1)], 3.0);
        assert!(!report.deadlocked);
        assert!(report.conserves_packets());
        assert_eq!(report.in_flight, 0);
    }

    #[test]
    fn dateline_vcs_dissolve_the_ring_deadlock() {
        // The exact scenario the previous test proves wedges with one
        // channel: two dateline classes cut the dependency ring. The
        // packet wrapping 2→0 is promoted to class 1, so its wait is
        // on a FIFO no class-0 packet occupies — and the run drains.
        let g = cycle(3);
        let router = RoutingTable::new(&g);
        let engine = QueueingEngine::new(
            g,
            QueueConfig {
                vcs: 2,
                ..config(1, 1, ContentionPolicy::Backpressure)
            },
        );
        let report = engine.run(&router, &[(0, 2), (1, 0), (2, 1)], 3.0);
        assert!(!report.deadlocked, "{report:?}");
        assert_eq!(report.delivered, 3);
        assert_eq!(report.dropped(), 0);
        assert_eq!(report.in_flight, 0);
        assert!(report.conserves_packets());
        assert_eq!(report.vcs, 2);
        assert!(
            report.dateline_promotions >= 1,
            "the wrap hop must promote, got {report:?}"
        );
        // Both classes saw traffic: the wrap pushed packets upstairs.
        assert_eq!(report.vc_peak_occupancy.len(), 2);
        assert!(report.vc_peak_occupancy[0] >= 1);
        assert!(report.vc_peak_occupancy[1] >= 1);
    }

    #[test]
    fn per_source_queues_isolate_backpressure_stalls() {
        // Source 0 offers six packets into a single-slot buffer — it
        // will stall for cycles. Source 2's lone packet is offered
        // *last* in workload order; under the old shared injection
        // stream it would wait behind all of source 0's stalls, but
        // per-source queues inject it immediately. Classify on its
        // destination to read the two waits separately.
        let g = cycle(4);
        let router = RoutingTable::new(&g);
        let engine = QueueingEngine::new(g, config(1, 1, ContentionPolicy::Backpressure));
        let mut workload = vec![(0u64, 1u64); 6];
        workload.push((2, 3));
        let report = engine.run_classified(&router, &workload, 7.0, Some(3));
        assert!(report.conserves_packets());
        assert_eq!(report.delivered, 7);
        let stats = report.class_stats.as_ref().expect("classified run");
        assert_eq!(stats.hot.injected, 1);
        assert_eq!(stats.background.injected, 6);
        assert_eq!(
            stats.hot.wait_max_cycles, 0,
            "source 2 must not inherit source 0's stall: {stats:?}"
        );
        assert!(
            stats.background.wait_max_cycles >= 5,
            "source 0 serializes through its single-slot buffer: {stats:?}"
        );
        assert!(report.source_stall_cycles > 0);
    }

    #[test]
    fn classified_run_splits_the_counters_exactly() {
        let g = cycle(4);
        let router = RoutingTable::new(&g);
        let engine = QueueingEngine::new(g, config(4, 1, ContentionPolicy::TailDrop));
        let workload = [(0, 2), (1, 2), (3, 2), (1, 0), (2, 1), (3, 3)];
        let report = engine.run_classified(&router, &workload, 2.0, Some(2));
        assert!(report.conserves_packets());
        let stats = report.class_stats.as_ref().expect("classified run");
        assert_eq!(stats.hot.injected, 3);
        assert_eq!(stats.background.injected, 3);
        assert_eq!(
            stats.hot.injected + stats.background.injected,
            report.injected
        );
        assert_eq!(
            stats.hot.delivered + stats.background.delivered,
            report.delivered
        );
        assert_eq!(
            stats.hot.dropped + stats.background.dropped,
            report.dropped()
        );
        // The unclassified run reports no breakdown.
        let report = engine.run(&router, &workload, 2.0);
        assert!(report.class_stats.is_none());
    }

    #[test]
    fn unroutable_packets_drop_at_injection() {
        let g = Digraph::from_fn(3, |u| if u == 0 { vec![1] } else { vec![] });
        let router = RoutingTable::new(&g);
        let engine = QueueingEngine::new(g, QueueConfig::default());
        let report = engine.run(&router, &[(0, 1), (2, 0), (1, 1)], 3.0);
        assert_eq!(report.delivered, 2, "the real route and the self-pair");
        assert_eq!(report.dropped_unroutable, 1);
        assert!(report.conserves_packets());
    }

    #[test]
    fn ttl_bounds_a_looping_packet() {
        // A blind router that always forwards around the 0→1→2→3→0
        // ring of a 5-node fabric while the packet's destination
        // (node 4, on-fabric but never on the walk) is unreachable by
        // it: the hop budget must retire the packet (as dropped_ttl,
        // conserving packets) instead of simulating forever.
        struct Forward;
        impl Router for Forward {
            fn node_count(&self) -> u64 {
                5
            }
            fn name(&self) -> String {
                "forward".into()
            }
            fn next_hop(&self, current: u64, _dst: u64) -> Option<u64> {
                Some((current + 1) % 4)
            }
        }
        let engine = QueueingEngine::new(
            Digraph::from_fn(5, |u| [(u + 1) % 4]),
            QueueConfig {
                hop_limit: Some(6),
                ..QueueConfig::default()
            },
        );
        let report = engine.run(&Forward, &[(1, 4)], 1.0);
        assert_eq!(report.dropped_ttl, 1);
        assert_eq!(report.delivered, 0);
        assert!(report.conserves_packets());
    }

    #[test]
    fn off_fabric_destinations_drop_before_reaching_the_router() {
        // A router that would panic on a nonexistent destination must
        // never see one: the engine retires off-fabric-destination
        // packets as unroutable at injection.
        let g = cycle(4);
        let router = RoutingTable::new(&g);
        let engine = QueueingEngine::new(g, QueueConfig::default());
        let report = engine.run(&router, &[(0, 4), (0, u64::MAX), (0, 2)], 3.0);
        assert_eq!(report.dropped_unroutable, 2);
        assert_eq!(report.delivered, 1);
        assert!(report.conserves_packets());
    }

    #[test]
    fn occupancy_resolves_individual_vc_classes() {
        // A 2-VC engine's occupancy view: per-class and per-link
        // reads agree, a fully drained run leaves every class of
        // every link empty, and off-fabric or out-of-range probes
        // read 0 instead of a neighboring counter.
        let g = cycle(3);
        let router = RoutingTable::new(&g);
        let engine = QueueingEngine::new(
            g,
            QueueConfig {
                vcs: 2,
                ..config(1, 1, ContentionPolicy::Backpressure)
            },
        );
        let occupancy = engine.occupancy();
        assert_eq!(occupancy.vcs(), 2);
        let report = engine.run(&router, &[(0, 2), (1, 0), (2, 1)], 3.0);
        assert!(!report.deadlocked);
        // Drained run: every class of every link is empty again.
        for arc in 0..3 {
            assert_eq!(occupancy.arc_occupancy(arc), 0);
            assert_eq!(occupancy.channel_occupancy(arc, 0), 0);
            assert_eq!(occupancy.channel_occupancy(arc, 1), 0);
        }
        assert_eq!(occupancy.queued(0, 1), 0);
        assert_eq!(occupancy.queued_vc(0, 1, 0), 0);
        assert_eq!(occupancy.queued_vc(9, 9, 0), 0, "unknown links are empty");
        assert_eq!(
            occupancy.queued_vc(0, 1, 7),
            0,
            "classes beyond the engine's vcs are empty, not a neighbor's counter"
        );
    }

    #[test]
    fn saturation_sweep_finds_the_cycle_service_rate() {
        // On C_8 under uniform-ish traffic with one wavelength, each
        // link serves at most 1 packet/cycle; delivered throughput
        // must plateau once offered load exceeds capacity.
        let g = cycle(8);
        let router = RoutingTable::new(&g);
        let engine = QueueingEngine::new(g, config(8, 1, ContentionPolicy::TailDrop));
        let workload: Vec<(u64, u64)> = (0..400).map(|i| (i % 8, (i + 3) % 8)).collect();
        let sweep = engine.saturation_sweep(&router, &workload, &[0.05, 0.1, 0.3, 0.6, 1.0]);
        assert_eq!(sweep.points.len(), 5);
        let saturation = sweep.saturation_throughput_per_node();
        assert!(saturation > 0.0);
        // Per-node delivery can never exceed the per-node service
        // capacity of 1/3 (every packet holds its links 3 cycles).
        assert!(saturation <= 1.0 / 3.0 + 1e-9, "saturation {saturation}");
        // Low offered loads deliver what they offer; the top of the
        // sweep cannot (drops or stretched runs).
        let first = &sweep.points[0];
        assert!(first.delivered_per_node >= first.offered_per_node * 0.8);
    }

    #[test]
    fn drain_threads_do_not_change_any_report() {
        // The determinism contract on a contended, multi-VC,
        // backpressured hotspot-ish scenario: byte-identical reports
        // at 1, 2 and 8 drain threads. (The broader randomized pin
        // lives in optics/tests/queueing.rs.)
        let workload: Vec<(u64, u64)> = (0..600)
            .map(|i| ((i * 7) % 16, (i * 13 + 3) % 16))
            .collect();
        let run_with = |threads: usize| {
            let g = Digraph::from_fn(16, |u| [(2 * u) % 16, (2 * u + 1) % 16]);
            let router = RoutingTable::new(&g);
            let engine = QueueingEngine::new(
                g,
                QueueConfig {
                    vcs: 2,
                    drain_threads: threads,
                    ..config(2, 1, ContentionPolicy::Backpressure)
                },
            );
            let report = engine.run_classified(&router, &workload, 8.0, Some(3));
            serde_json::to_string(&report).expect("report serializes")
        };
        let single = run_with(1);
        assert_eq!(single, run_with(2), "2 threads changed the report");
        assert_eq!(single, run_with(8), "8 threads changed the report");
    }

    #[test]
    fn multicast_broadcast_tree_replicates_and_conserves() {
        use otis_core::{DeBruijn, DeBruijnRouter};
        let b = DeBruijn::new(2, 3);
        let n = b.node_count(); // 8
        let router = DeBruijnRouter::new(b);
        let engine = QueueingEngine::from_family(&b, QueueConfig::default());
        let groups = [MulticastGroup {
            root: 0,
            dsts: (1..n).collect(),
        }];
        let report = engine.run_multicast(&router, &groups, 1.0);
        // Leaf-unit conservation: injected_leaves = delivered +
        // dropped + in_flight.
        assert!(report.conserves_packets(), "{report:?}");
        assert_eq!(report.injected, 7, "leaves, not packets");
        assert_eq!(report.delivered, 7);
        assert_eq!(report.dropped(), 0);
        assert_eq!(report.in_flight, 0);
        assert_eq!(report.multicast_groups, 1);
        // A broadcast tree on 8 nodes has 7 arcs; the root injects
        // its root-child copies, every other copy is a replication.
        let tree = otis_core::MulticastTree::broadcast(&b, 0);
        let root_copies = tree.root_arcs().len() as u64;
        assert_eq!(report.replicated_copies, 7 - root_copies);
        // One tree: its forwarding index is 1 (each link carries at
        // most one arc of one tree).
        assert_eq!(report.multicast_forwarding_index, 1);
        // Depth of a copy equals its BFS level; uncontended, every
        // leaf waits zero cycles.
        assert_eq!(report.max_hops, tree.max_depth());
        assert_eq!(report.wait_max_cycles, 0);
        assert!(!report.deadlocked);
    }

    #[test]
    fn multicast_self_and_unroutable_leaves_retire_at_injection() {
        let g = Digraph::from_fn(3, |u| if u == 0 { vec![1] } else { vec![] });
        let router = RoutingTable::new(&g);
        let engine = QueueingEngine::new(g, QueueConfig::default());
        let groups = [MulticastGroup {
            root: 0,
            dsts: vec![0, 1, 2],
        }];
        let report = engine.run_multicast(&router, &groups, 1.0);
        assert!(report.conserves_packets(), "{report:?}");
        assert_eq!(report.injected, 3);
        assert_eq!(report.delivered, 2, "self-request + the real route");
        assert_eq!(report.dropped_unroutable, 1);
        assert_eq!(report.replicated_copies, 0);
    }

    #[test]
    fn multicast_prunes_off_fabric_subtrees_without_double_counting() {
        // A router that routes the chain 0→1→2 correctly but claims a
        // hop 2→3 the fabric does not have: the pruned subtree's leaf
        // must land in `dropped_unroutable` exactly once — NOT also
        // linger in ancestor arc weights, which would strand phantom
        // in-flight leaves and break conservation (and report a
        // spurious deadlock).
        struct LiarRouter;
        impl Router for LiarRouter {
            fn node_count(&self) -> u64 {
                4
            }
            fn name(&self) -> String {
                "liar".into()
            }
            fn next_hop(&self, current: u64, dst: u64) -> Option<u64> {
                // Shortest chain hops toward 1, 2, 3 — but the fabric
                // below only materializes 0→1→2.
                (current < dst).then_some(current + 1)
            }
        }
        let g = Digraph::from_fn(4, |u| if u < 2 { vec![u + 1] } else { vec![] });
        let engine = QueueingEngine::new(g, QueueConfig::default());
        let groups = [MulticastGroup {
            root: 0,
            dsts: vec![1, 2, 3],
        }];
        let report = engine.run_multicast(&LiarRouter, &groups, 1.0);
        assert!(report.conserves_packets(), "{report:?}");
        assert_eq!(report.injected, 3);
        assert_eq!(report.delivered, 2, "the on-fabric prefix delivers");
        assert_eq!(report.dropped_unroutable, 1, "the pruned leaf, once");
        assert_eq!(report.in_flight, 0, "no phantom leaves left in flight");
        assert!(!report.deadlocked, "{report:?}");
        // A tree whose EVERY leaf hangs below the bad hop vanishes
        // entirely: all leaves unroutable, nothing injected in-fabric.
        let g = Digraph::from_fn(4, |u| if u < 2 { vec![u + 1] } else { vec![] });
        let engine = QueueingEngine::new(g, QueueConfig::default());
        let groups = [MulticastGroup {
            root: 0,
            dsts: vec![3],
        }];
        let report = engine.run_multicast(&LiarRouter, &groups, 1.0);
        assert!(report.conserves_packets(), "{report:?}");
        assert_eq!(report.dropped_unroutable, 1);
        assert_eq!(report.delivered, 0);
        assert_eq!(report.in_flight, 0);
        assert_eq!(
            report.replicated_copies, 0,
            "zero-weight chain never spawns"
        );
    }

    #[test]
    fn multicast_taildrop_drops_whole_subtrees() {
        // A 4-cycle with single-slot buffers: two simultaneous
        // broadcast groups from the same root contend for the one
        // injection channel; the loser's whole tree weight drops.
        let g = cycle(4);
        let router = RoutingTable::new(&g);
        let engine = QueueingEngine::new(g, config(1, 1, ContentionPolicy::TailDrop));
        let groups = [
            MulticastGroup {
                root: 0,
                dsts: vec![1, 2, 3],
            },
            MulticastGroup {
                root: 0,
                dsts: vec![1, 2, 3],
            },
        ];
        let report = engine.run_multicast(&router, &groups, 2.0);
        assert!(report.conserves_packets(), "{report:?}");
        assert_eq!(report.injected, 6);
        assert_eq!(report.delivered, 3, "one tree survives");
        assert_eq!(report.dropped_full, 3, "the other drops root-first");
        assert_eq!(
            report.multicast_forwarding_index, 2,
            "two trees share each link"
        );
    }

    #[test]
    fn multicast_backpressure_stalls_groups_losslessly() {
        // Same contention under backpressure: nothing drops, the
        // second group just waits for the first to clear.
        let g = cycle(4);
        let router = RoutingTable::new(&g);
        let engine = QueueingEngine::new(g, config(1, 1, ContentionPolicy::Backpressure));
        let groups = [
            MulticastGroup {
                root: 0,
                dsts: vec![1, 2, 3],
            },
            MulticastGroup {
                root: 0,
                dsts: vec![1, 2, 3],
            },
        ];
        let report = engine.run_multicast(&router, &groups, 2.0);
        assert!(report.conserves_packets(), "{report:?}");
        assert!(!report.deadlocked, "{report:?}");
        assert_eq!(report.delivered, 6);
        assert_eq!(report.dropped(), 0);
        assert!(report.source_stall_cycles > 0, "{report:?}");
        assert!(report.wait_max_cycles > 0, "the second tree queued");
    }

    #[test]
    fn hop_cache_matches_fresh_queries() {
        // A stateless router with a query counter: the cached engine
        // must answer identically to an uncachable twin while asking
        // the router far less under backpressure (blocked heads re-ask
        // every cycle without the cache).
        use std::sync::atomic::AtomicUsize;
        struct Counting<R: Router> {
            inner: R,
            queries: AtomicUsize,
            stateless: bool,
        }
        impl<R: Router> Router for Counting<R> {
            fn node_count(&self) -> u64 {
                self.inner.node_count()
            }
            fn name(&self) -> String {
                self.inner.name()
            }
            fn next_hop(&self, current: u64, dst: u64) -> Option<u64> {
                self.queries.fetch_add(1, Ordering::Relaxed);
                self.inner.next_hop(current, dst)
            }
            fn hops_are_stateless(&self) -> bool {
                self.stateless
            }
        }
        let workload: Vec<(u64, u64)> = (0..300).map(|i| (i % 8, (i + 5) % 8)).collect();
        let run_with = |stateless: bool| {
            let g = cycle(8);
            let router = Counting {
                inner: RoutingTable::new(&g),
                queries: AtomicUsize::new(0),
                stateless,
            };
            // Two dateline classes keep the saturated backpressure run
            // lossless (vcs = 1 would wedge in a few cycles and leave
            // nothing to cache).
            let engine = QueueingEngine::new(
                g,
                QueueConfig {
                    vcs: 2,
                    ..config(2, 1, ContentionPolicy::Backpressure)
                },
            );
            let report = engine.run(&router, &workload, 8.0);
            (
                serde_json::to_string(&report).expect("serializes"),
                router.queries.load(Ordering::Relaxed),
            )
        };
        let (cached_report, cached_queries) = run_with(true);
        let (fresh_report, fresh_queries) = run_with(false);
        assert_eq!(cached_report, fresh_report, "caching changed the physics");
        assert!(
            cached_queries * 2 < fresh_queries,
            "cache saved too little: {cached_queries} vs {fresh_queries} queries"
        );
    }
}
