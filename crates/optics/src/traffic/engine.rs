//! The batched, parallel *static* engine: routes whole workloads
//! obliviously and tallies per-link load — congestion as a forwarding
//! index, without dynamics. For queueing delay, drops and saturation
//! see [`super::queueing`].

use super::report::{percentile_f64, MulticastReport, TrafficReport};
use super::workload::{MulticastGroup, WorkloadSource};
use crate::simulator::OtisSimulator;
use otis_core::{DigraphFamily, MulticastTree, Router};
use otis_util::par_map;

/// Precomputed physics of one transceiver's beam.
#[derive(Debug, Clone, Copy)]
struct HopCost {
    latency_ps: f64,
    energy_pj: f64,
    closes: bool,
}

/// Per-worker accumulator for [`TrafficEngine::run`] (also reused as
/// the merge target).
struct Partial {
    link_load: Vec<u64>,
    latencies: Vec<f64>,
    delivered: usize,
    dropped: usize,
    /// All link traversals, dropped packets' hops included.
    total_hops: u64,
    /// Hops of delivered packets only.
    delivered_hops: u64,
    max_hops: u32,
    energy: f64,
    budgets_close: bool,
}

impl Partial {
    fn new(links: usize, capacity: usize) -> Self {
        Partial {
            link_load: vec![0u64; links],
            latencies: Vec::with_capacity(capacity),
            delivered: 0,
            dropped: 0,
            total_hops: 0,
            delivered_hops: 0,
            max_hops: 0,
            energy: 0.0,
            budgets_close: true,
        }
    }
}

/// Batched traffic runner over one simulated fabric.
///
/// Construction pays the physics once — one geometric trace and one
/// link budget per transceiver — after which [`TrafficEngine::run`]
/// routes arbitrarily many packets without touching the bench model.
pub struct TrafficEngine<'a> {
    sim: &'a OtisSimulator,
    /// `neighbors[u·d + k]` = `out_neighbor(u, k)`.
    neighbors: Vec<u64>,
    /// Physics per transceiver, same indexing.
    costs: Vec<HopCost>,
    degree: usize,
}

impl<'a> TrafficEngine<'a> {
    pub fn new(sim: &'a OtisSimulator) -> Self {
        let h = sim.h();
        let n = h.node_count();
        let degree = h.degree() as usize;
        let links = n * degree as u64;
        let mut neighbors = Vec::with_capacity(links as usize);
        let mut costs = Vec::with_capacity(links as usize);
        for u in 0..n {
            for k in 0..degree as u32 {
                neighbors.push(h.out_neighbor(u, k));
                let (_, budget) = sim.link_budget(u * degree as u64 + k as u64);
                costs.push(HopCost {
                    latency_ps: budget.latency_ps + sim.hop_overhead_ps,
                    energy_pj: budget.energy_pj,
                    closes: budget.closes(),
                });
            }
        }
        TrafficEngine {
            sim,
            neighbors,
            costs,
            degree,
        }
    }

    /// The fabric's node count.
    pub fn node_count(&self) -> u64 {
        self.sim.h().node_count()
    }

    /// Route a whole workload through `router`, in parallel, and
    /// aggregate per-link load, congestion, latency, energy and
    /// delivery statistics.
    pub fn run(&self, router: &dyn Router, workload: &[(u64, u64)]) -> TrafficReport {
        let n = self.node_count();
        assert_eq!(
            router.node_count(),
            n,
            "router covers {} nodes but the fabric has {n}",
            router.node_count()
        );
        // Shard the workload; each worker owns a full link-load vector
        // (links is small — n·d — so per-worker copies are cheap) and
        // merges at the end.
        const CHUNK: usize = 1024;
        let chunks = workload.len().div_ceil(CHUNK);
        let partials = par_map(chunks, 1, |chunk_index| {
            let start = chunk_index * CHUNK;
            let end = ((chunk_index + 1) * CHUNK).min(workload.len());
            self.route_chunk(router, &workload[start..end])
        });
        self.collect(router, partials, workload.len())
    }

    /// As [`TrafficEngine::run`], fed by a streamed [`WorkloadSource`]:
    /// workers regenerate the source's deterministic chunks
    /// independently (the per-chunk RNG split makes that safe), so
    /// only the in-flight chunks are ever resident — a million-packet
    /// workload costs each worker one chunk buffer, not the 16 MB
    /// pair vector. The report matches materializing the source and
    /// calling [`TrafficEngine::run`] on every count, load and
    /// latency figure exactly; only `energy_total_pj` may differ in
    /// its last bits, because the two paths sum the same per-hop
    /// energies in different chunk groupings.
    pub fn run_streamed(&self, router: &dyn Router, source: &WorkloadSource) -> TrafficReport {
        let n = self.node_count();
        assert_eq!(
            router.node_count(),
            n,
            "router covers {} nodes but the fabric has {n}",
            router.node_count()
        );
        let partials = par_map(source.chunk_count(), 1, |chunk_index| {
            let mut pairs = Vec::new();
            source.fill_chunk(chunk_index, &mut pairs);
            self.route_chunk(router, &pairs)
        });
        self.collect(router, partials, source.len())
    }

    /// Route one shard of pairs into a fresh accumulator — the shared
    /// core of the materialized and streamed paths.
    fn route_chunk(&self, router: &dyn Router, pairs: &[(u64, u64)]) -> Partial {
        let links = self.neighbors.len();
        let hop_limit = (self.node_count() as usize).max(64);
        let mut partial = Partial::new(links, pairs.len());
        for &(src, dst) in pairs {
            let mut current = src;
            let mut hops = 0u32;
            let mut latency = 0.0f64;
            let mut reached = true;
            while current != dst {
                if hops as usize >= hop_limit {
                    reached = false; // routing loop
                    break;
                }
                let Some(next) = router.next_hop(current, dst) else {
                    reached = false; // dead end
                    break;
                };
                let base = current as usize * self.degree;
                let Some(k) = (0..self.degree).find(|&k| self.neighbors[base + k] == next) else {
                    reached = false; // router proposed a non-neighbor
                    break;
                };
                let link = base + k;
                partial.link_load[link] += 1;
                let cost = &self.costs[link];
                latency += cost.latency_ps;
                partial.energy += cost.energy_pj;
                partial.budgets_close &= cost.closes;
                hops += 1;
                current = next;
            }
            partial.total_hops += hops as u64;
            if reached {
                partial.delivered += 1;
                partial.delivered_hops += hops as u64;
                partial.max_hops = partial.max_hops.max(hops);
                partial.latencies.push(latency);
            } else {
                partial.dropped += 1;
            }
        }
        partial
    }

    /// Merge worker partials and fold them into the report.
    fn collect(&self, router: &dyn Router, partials: Vec<Partial>, total: usize) -> TrafficReport {
        let links = self.neighbors.len();
        let mut merged = Partial::new(links, total);
        for partial in partials {
            for (slot, value) in merged.link_load.iter_mut().zip(partial.link_load) {
                *slot += value;
            }
            merged.latencies.extend(partial.latencies);
            merged.delivered += partial.delivered;
            merged.dropped += partial.dropped;
            merged.total_hops += partial.total_hops;
            merged.delivered_hops += partial.delivered_hops;
            merged.max_hops = merged.max_hops.max(partial.max_hops);
            merged.energy += partial.energy;
            merged.budgets_close &= partial.budgets_close;
        }
        let Partial {
            link_load,
            mut latencies,
            delivered,
            dropped,
            total_hops,
            delivered_hops,
            max_hops,
            energy: energy_total_pj,
            budgets_close: all_budgets_close,
        } = merged;

        latencies.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let latency_mean_ps = if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<f64>() / latencies.len() as f64
        };

        TrafficReport {
            router: router.name(),
            packets: total,
            delivered,
            dropped,
            total_hops,
            delivered_hops,
            max_hops,
            max_link_load: link_load.iter().copied().max().unwrap_or(0),
            link_load,
            latency_mean_ps,
            latency_p50_ps: percentile_f64(&latencies, 0.50),
            latency_p99_ps: percentile_f64(&latencies, 0.99),
            latency_max_ps: latencies.last().copied().unwrap_or(0.0),
            energy_total_pj,
            all_budgets_close,
        }
    }
}

/// Per-worker accumulator for [`TrafficEngine::run_multicast`].
struct MulticastPartial {
    /// Trees per transceiver — the multicast load vector.
    link_load: Vec<u64>,
    /// Leaves per transceiver — what per-leaf unicast would carry.
    unicast_link_load: Vec<u64>,
    latencies: Vec<f64>,
    delivered_leaves: usize,
    dropped_leaves: usize,
    tree_arcs: u64,
    unicast_hops: u64,
    max_depth: u32,
    energy: f64,
    budgets_close: bool,
}

impl MulticastPartial {
    fn new(links: usize) -> Self {
        MulticastPartial {
            link_load: vec![0u64; links],
            unicast_link_load: vec![0u64; links],
            latencies: Vec::new(),
            delivered_leaves: 0,
            dropped_leaves: 0,
            tree_arcs: 0,
            unicast_hops: 0,
            max_depth: 0,
            energy: 0.0,
            budgets_close: true,
        }
    }
}

impl<'a> TrafficEngine<'a> {
    /// Route a multicast workload as delivery trees
    /// ([`MulticastTree::build`] over `router`'s shortest-path next
    /// hops), charging each tree arc **once** — the optical one-to-many
    /// story: a branch node replicates the signal, it does not re-send
    /// per leaf. Reports the multicast forwarding index (max trees per
    /// link) alongside the unicast index the same workload would have
    /// cost with per-leaf copies.
    pub fn run_multicast(
        &self,
        router: &dyn Router,
        workload: &[MulticastGroup],
    ) -> MulticastReport {
        let n = self.node_count();
        assert_eq!(
            router.node_count(),
            n,
            "router covers {} nodes but the fabric has {n}",
            router.node_count()
        );
        let links = self.neighbors.len();
        const CHUNK: usize = 64;
        let chunks = workload.len().div_ceil(CHUNK);
        let partials = par_map(chunks, 1, |chunk_index| {
            let start = chunk_index * CHUNK;
            let end = ((chunk_index + 1) * CHUNK).min(workload.len());
            let mut partial = MulticastPartial::new(links);
            let mut arc_latency: Vec<f64> = Vec::new();
            let mut skipped: Vec<bool> = Vec::new();
            for group in &workload[start..end] {
                let tree = MulticastTree::build(router, group.root, &group.dsts);
                partial.dropped_leaves += tree.unreachable().len();
                // Self-requests deliver at the source, zero latency.
                partial.delivered_leaves += tree.self_requests();
                for _ in 0..tree.self_requests() {
                    partial.latencies.push(0.0);
                }
                arc_latency.clear();
                arc_latency.resize(tree.arc_count(), 0.0);
                skipped.clear();
                skipped.resize(tree.arc_count(), false);
                // Arcs are parent-before-child, so one forward pass
                // accumulates root-to-node latency.
                for arc in 0..tree.arc_count() {
                    let (from, to) = tree.endpoints(arc);
                    let parent_latency = match tree.parent_arc(arc) {
                        None => 0.0,
                        Some(parent) if skipped[parent] => {
                            skipped[arc] = true;
                            partial.dropped_leaves += tree.deliveries_at(arc) as usize;
                            continue;
                        }
                        Some(parent) => arc_latency[parent],
                    };
                    let base = from as usize * self.degree;
                    let Some(k) = (0..self.degree).find(|&k| self.neighbors[base + k] == to) else {
                        // The router proposed a non-neighbor: the whole
                        // subtree is unreachable through this arc.
                        skipped[arc] = true;
                        partial.dropped_leaves += tree.deliveries_at(arc) as usize;
                        continue;
                    };
                    let link = base + k;
                    let cost = &self.costs[link];
                    // One optical transmission per tree arc.
                    partial.link_load[link] += 1;
                    partial.unicast_link_load[link] += tree.leaf_load(arc);
                    partial.tree_arcs += 1;
                    partial.unicast_hops += tree.leaf_load(arc);
                    partial.energy += cost.energy_pj;
                    partial.budgets_close &= cost.closes;
                    arc_latency[arc] = parent_latency + cost.latency_ps;
                    let deliveries = tree.deliveries_at(arc) as usize;
                    if deliveries > 0 {
                        partial.delivered_leaves += deliveries;
                        partial.max_depth = partial.max_depth.max(tree.arc_depth(arc));
                        for _ in 0..deliveries {
                            partial.latencies.push(arc_latency[arc]);
                        }
                    }
                }
            }
            partial
        });

        let mut merged = MulticastPartial::new(links);
        for partial in partials {
            for (slot, value) in merged.link_load.iter_mut().zip(partial.link_load) {
                *slot += value;
            }
            for (slot, value) in merged
                .unicast_link_load
                .iter_mut()
                .zip(partial.unicast_link_load)
            {
                *slot += value;
            }
            merged.latencies.extend(partial.latencies);
            merged.delivered_leaves += partial.delivered_leaves;
            merged.dropped_leaves += partial.dropped_leaves;
            merged.tree_arcs += partial.tree_arcs;
            merged.unicast_hops += partial.unicast_hops;
            merged.max_depth = merged.max_depth.max(partial.max_depth);
            merged.energy += partial.energy;
            merged.budgets_close &= partial.budgets_close;
        }
        merged
            .latencies
            .sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let latency_mean_ps = if merged.latencies.is_empty() {
            0.0
        } else {
            merged.latencies.iter().sum::<f64>() / merged.latencies.len() as f64
        };
        MulticastReport {
            router: router.name(),
            groups: workload.len(),
            leaves: merged.delivered_leaves + merged.dropped_leaves,
            delivered_leaves: merged.delivered_leaves,
            dropped_leaves: merged.dropped_leaves,
            tree_arcs: merged.tree_arcs,
            unicast_hops: merged.unicast_hops,
            max_depth: merged.max_depth,
            multicast_forwarding_index: merged.link_load.iter().copied().max().unwrap_or(0),
            unicast_forwarding_index: merged.unicast_link_load.iter().copied().max().unwrap_or(0),
            link_load: merged.link_load,
            latency_mean_ps,
            latency_p50_ps: percentile_f64(&merged.latencies, 0.50),
            latency_p99_ps: percentile_f64(&merged.latencies, 0.99),
            latency_max_ps: merged.latencies.last().copied().unwrap_or(0.0),
            energy_total_pj: merged.energy,
            all_budgets_close: merged.budgets_close,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{generate_workload, TrafficPattern};
    use super::*;
    use crate::HDigraph;
    use otis_core::RoutingTable;

    fn engine_fixture() -> (OtisSimulator, Vec<(u64, u64)>) {
        // H(4,8,2) ≅ B(2,4): 16 nodes, degree 2.
        let sim = OtisSimulator::with_defaults(HDigraph::new(4, 8, 2));
        let workload = generate_workload(TrafficPattern::Uniform, 16, 2, 2000, 7);
        (sim, workload)
    }

    #[test]
    fn uniform_traffic_all_delivered_and_conserved() {
        let (sim, workload) = engine_fixture();
        let engine = TrafficEngine::new(&sim);
        let router = RoutingTable::from_family(sim.h());
        let report = engine.run(&router, &workload);
        assert_eq!(report.delivered, workload.len());
        assert_eq!(report.dropped, 0);
        assert_eq!(report.delivery_rate(), 1.0);
        // Conservation: every hop crosses exactly one link.
        assert_eq!(report.link_load.iter().sum::<u64>(), report.total_hops);
        assert!(report.max_hops <= 4, "diameter of B(2,4) is 4");
        assert!(report.max_link_load >= report.total_hops / report.link_load.len() as u64);
        assert!(report.all_budgets_close);
        assert!(report.latency_p50_ps <= report.latency_p99_ps);
        assert!(report.latency_p99_ps <= report.latency_max_ps);
    }

    #[test]
    fn engine_matches_per_packet_simulator() {
        // The batched engine's per-packet latency/energy must agree
        // with the hop-by-hop simulator on the same routes.
        let (sim, _) = engine_fixture();
        let engine = TrafficEngine::new(&sim);
        let router = RoutingTable::from_family(sim.h());
        for (src, dst) in [(0u64, 15u64), (3, 9), (12, 1)] {
            let single = sim.send_via(&router, src, dst).unwrap();
            let report = engine.run(&router, &[(src, dst)]);
            assert_eq!(report.delivered, 1);
            assert_eq!(report.total_hops as usize, single.hop_count());
            assert!((report.latency_max_ps - single.latency_ps).abs() < 1e-9);
            assert!((report.energy_total_pj - single.energy_pj).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_and_single_packet_workloads_report_sane_statistics() {
        // Percentile and mean math on degenerate workloads: no panics,
        // no NaNs, identities hold.
        let (sim, _) = engine_fixture();
        let engine = TrafficEngine::new(&sim);
        let router = RoutingTable::from_family(sim.h());

        let empty = engine.run(&router, &[]);
        assert_eq!(empty.packets, 0);
        assert_eq!(empty.delivery_rate(), 1.0);
        assert_eq!(empty.latency_p50_ps, 0.0);
        assert_eq!(empty.latency_p99_ps, 0.0);
        assert_eq!(empty.latency_mean_ps, 0.0);
        assert_eq!(empty.mean_hops(), 0.0);
        assert_eq!(empty.mean_link_load(), 0.0);
        assert_eq!(empty.mean_energy_pj(), 0.0);

        let single = engine.run(&router, &[(0, 15)]);
        assert_eq!(single.delivered, 1);
        // With one sample every percentile IS that sample.
        assert_eq!(single.latency_p50_ps, single.latency_max_ps);
        assert_eq!(single.latency_p99_ps, single.latency_max_ps);
        assert!((single.latency_mean_ps - single.latency_max_ps).abs() < 1e-9);
        assert!(single.latency_max_ps > 0.0);

        // A single self-pair: delivered with zero hops, zero latency.
        let self_pair = engine.run(&router, &[(3, 3)]);
        assert_eq!(self_pair.delivered, 1);
        assert_eq!(self_pair.total_hops, 0);
        assert_eq!(self_pair.latency_max_ps, 0.0);
        assert_eq!(self_pair.mean_hops(), 0.0);
    }

    #[test]
    fn hotspot_forwarding_index_dwarfs_uniform() {
        let sim = OtisSimulator::with_defaults(HDigraph::new(8, 16, 2));
        let engine = TrafficEngine::new(&sim);
        let router = RoutingTable::from_family(sim.h());
        let hotspot = generate_workload(TrafficPattern::Hotspot, 64, 2, 4000, 3);
        let uniform = generate_workload(TrafficPattern::Uniform, 64, 2, 4000, 3);
        let hot_report = engine.run(&router, &hotspot);
        let uniform_report = engine.run(&router, &uniform);
        assert!(
            hot_report.max_link_load > uniform_report.max_link_load,
            "hotspot congestion {} should exceed uniform {}",
            hot_report.max_link_load,
            uniform_report.max_link_load
        );
    }

    #[test]
    fn dropped_packet_hops_load_links_but_not_delivered_stats() {
        // A router that always forwards to the first transceiver's
        // neighbor: some packets deliver, the rest loop to the hop
        // limit — every traversal they made must show up in link_load
        // and total_hops, but not in delivered_hops/mean_hops.
        let (sim, workload) = engine_fixture();
        let engine = TrafficEngine::new(&sim);
        struct FirstHopRouter(HDigraph);
        impl otis_core::Router for FirstHopRouter {
            fn node_count(&self) -> u64 {
                otis_core::DigraphFamily::node_count(&self.0)
            }
            fn name(&self) -> String {
                "first-hop".into()
            }
            fn next_hop(&self, current: u64, _dst: u64) -> Option<u64> {
                Some(otis_core::DigraphFamily::out_neighbor(&self.0, current, 0))
            }
        }
        let report = engine.run(&FirstHopRouter(*sim.h()), &workload);
        assert!(
            report.dropped > 0,
            "blind forwarding must strand some packets"
        );
        assert!(report.delivered > 0, "and deliver some others");
        // Conservation over ALL traversals, including looping packets.
        assert_eq!(report.link_load.iter().sum::<u64>(), report.total_hops);
        assert!(report.total_hops > report.delivered_hops);
        // Delivered-only statistics stay bounded by the walk the
        // delivered packets actually took.
        assert!(report.mean_hops() <= report.max_hops as f64);
    }

    #[test]
    fn broadcast_trees_charge_each_arc_once() {
        // H(4,8,2) ≅ B(2,4): a full broadcast tree spans all 15
        // non-root nodes over exactly 15 arcs, however many leaves
        // each arc serves.
        let (sim, _) = engine_fixture();
        let engine = TrafficEngine::new(&sim);
        let router = RoutingTable::from_family(sim.h());
        let groups =
            super::super::generate_multicast_workload(TrafficPattern::Broadcast, 16, 2, 32, 7);
        let report = engine.run_multicast(&router, &groups);
        assert_eq!(report.groups, 32);
        assert_eq!(report.leaves, 32 * 15);
        assert_eq!(report.delivered_leaves, report.leaves);
        assert_eq!(report.dropped_leaves, 0);
        assert_eq!(report.delivery_rate(), 1.0);
        assert_eq!(report.tree_arcs, 32 * 15, "one arc per reached node");
        assert!(report.max_depth <= 4, "diameter of B(2,4)");
        // Replication is the whole point: unicast would pay the mean
        // path length per leaf, the tree pays one arc per node.
        assert!(report.unicast_hops > report.tree_arcs);
        assert!(report.replication_saving() > 1.5);
        assert!(report.multicast_forwarding_index < report.unicast_forwarding_index);
        assert!(report.multicast_forwarding_index >= 1);
        // Load conservation: the link loads sum to the arcs charged.
        assert_eq!(report.link_load.iter().sum::<u64>(), report.tree_arcs);
        assert!(report.latency_p50_ps <= report.latency_p99_ps);
        assert!(report.latency_p99_ps <= report.latency_max_ps);
        assert!(report.all_budgets_close);
    }

    #[test]
    fn singleton_groups_match_the_unicast_engine() {
        // A multicast workload of fanout-1 groups is just unicast: the
        // tree arcs must equal the unicast run's hops and the two
        // forwarding indices must collapse onto the unicast one.
        let (sim, workload) = engine_fixture();
        let engine = TrafficEngine::new(&sim);
        let router = RoutingTable::from_family(sim.h());
        let groups: Vec<super::super::MulticastGroup> = workload
            .iter()
            .map(|&(src, dst)| super::super::MulticastGroup {
                root: src,
                dsts: vec![dst],
            })
            .collect();
        let unicast = engine.run(&router, &workload);
        let multicast = engine.run_multicast(&router, &groups);
        assert_eq!(multicast.delivered_leaves, unicast.delivered);
        assert_eq!(multicast.tree_arcs, unicast.total_hops);
        assert_eq!(multicast.unicast_hops, unicast.total_hops);
        assert_eq!(multicast.link_load, unicast.link_load);
        assert_eq!(multicast.multicast_forwarding_index, unicast.max_link_load);
        assert_eq!(multicast.unicast_forwarding_index, unicast.max_link_load);
        assert_eq!(multicast.replication_saving(), 1.0);
        assert!((multicast.energy_total_pj - unicast.energy_total_pj).abs() < 1e-6);
    }

    #[test]
    fn multicast_unreachable_leaves_are_dropped() {
        let (sim, _) = engine_fixture();
        let engine = TrafficEngine::new(&sim);
        struct NoRouter(u64);
        impl otis_core::Router for NoRouter {
            fn node_count(&self) -> u64 {
                self.0
            }
            fn name(&self) -> String {
                "none".into()
            }
            fn next_hop(&self, _: u64, _: u64) -> Option<u64> {
                None
            }
        }
        let groups = vec![super::super::MulticastGroup {
            root: 0,
            dsts: vec![0, 3, 5],
        }];
        let report = engine.run_multicast(&NoRouter(16), &groups);
        assert_eq!(report.delivered_leaves, 1, "the self-request");
        assert_eq!(report.dropped_leaves, 2);
        assert_eq!(report.tree_arcs, 0);
    }

    #[test]
    fn dropped_packets_counted_on_unroutable_fabric() {
        let (sim, _) = engine_fixture();
        let engine = TrafficEngine::new(&sim);
        // A router that knows no routes at all.
        struct NoRouter(u64);
        impl otis_core::Router for NoRouter {
            fn node_count(&self) -> u64 {
                self.0
            }
            fn name(&self) -> String {
                "none".into()
            }
            fn next_hop(&self, _: u64, _: u64) -> Option<u64> {
                None
            }
        }
        let report = engine.run(&NoRouter(16), &[(0, 5), (1, 1), (2, 9)]);
        assert_eq!(report.delivered, 1, "only the self-pair needs no hops");
        assert_eq!(report.dropped, 2);
        assert!(report.delivery_rate() < 1.0);
    }
}
