//! Aggregate reports for the two traffic engines: the batched static
//! engine ([`TrafficReport`]) and the cycle-accurate queueing engine
//! ([`QueueingReport`]), plus the shared percentile arithmetic.

use serde::{Deserialize, Serialize};

/// Value at `fraction` (0.0..=1.0) of a **sorted** sample, by the
/// nearest-rank convention: the smallest sample with at least
/// `fraction` of the distribution at or below it, i.e. the 1-indexed
/// rank `⌈fraction · N⌉` (clamped to `1..=N`, so `fraction = 0`
/// reads the minimum). `0.0` for an empty sample.
///
/// Nearest-rank never interpolates and never over-reads: p99 of 100
/// samples is the 99th smallest (not the maximum), and p50 of 2
/// samples is the *lower* one (the old `.round()` rank read the
/// upper, overstating the median of small samples).
pub(crate) fn percentile_f64(sorted: &[f64], fraction: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (fraction * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// As [`percentile_f64`] for integer samples (queueing delays in
/// cycles); `0` for an empty sample.
pub(crate) fn percentile_u64(sorted: &[u64], fraction: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (fraction * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// A dense histogram of queueing waits, replacing the queueing
/// engine's per-packet wait vectors: a ten-million-packet run records
/// into `O(max wait)` counters instead of holding (and sorting) an
/// 80 MB sample vector. Nearest-rank percentiles over the histogram
/// are *exactly* the percentiles of the sorted sample — the rank
/// `⌈fraction · N⌉` (clamped to `1..=N`) lands on the smallest wait
/// whose cumulative count reaches it, which is the same element
/// [`percentile_u64`] indexes.
#[derive(Default)]
pub(crate) struct WaitHistogram {
    /// `counts[w]` = packets that waited exactly `w` cycles. Waits are
    /// bounded by the run's cycle count, so the dense index is tiny
    /// next to the sample it summarizes.
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    max: u64,
}

impl WaitHistogram {
    pub fn record(&mut self, wait: u64) {
        self.record_n(wait, 1);
    }

    pub fn record_n(&mut self, wait: u64, n: u64) {
        if n == 0 {
            return;
        }
        let slot = wait as usize;
        if slot >= self.counts.len() {
            self.counts.resize(slot + 1, 0);
        }
        self.counts[slot] += n;
        self.total += n;
        self.sum += wait * n;
        self.max = self.max.max(wait);
    }

    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Largest recorded wait; `0` when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Nearest-rank percentile, identical to [`percentile_u64`] over
    /// the sorted sample; `0` when empty.
    pub fn percentile(&self, fraction: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((fraction * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (wait, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return wait as u64;
            }
        }
        self.max
    }
}

/// Aggregate results of one batched (static, uncontended) run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficReport {
    /// Router description (see [`otis_core::Router::name`]).
    pub router: String,
    /// Packets attempted.
    pub packets: usize,
    /// Packets that reached their destination.
    pub delivered: usize,
    /// Packets dropped (no route / routing loop).
    pub dropped: usize,
    /// Every link traversal, including hops a dropped packet took
    /// before dead-ending — always equals `sum(link_load)`.
    pub total_hops: u64,
    /// Sum of hops over *delivered* packets only.
    pub delivered_hops: u64,
    /// Longest delivered route, in hops.
    pub max_hops: u32,
    /// Packets carried per transceiver (index `u·d + k`): the link
    /// load vector.
    pub link_load: Vec<u64>,
    /// `max(link_load)` — the empirical forwarding index of the
    /// workload under this routing.
    pub max_link_load: u64,
    /// Mean end-to-end latency over delivered packets, ps.
    pub latency_mean_ps: f64,
    /// Median end-to-end latency, ps.
    pub latency_p50_ps: f64,
    /// 99th-percentile end-to-end latency, ps.
    pub latency_p99_ps: f64,
    /// Worst end-to-end latency, ps.
    pub latency_max_ps: f64,
    /// Total optical energy spent, pJ.
    pub energy_total_pj: f64,
    /// True iff every traversed link's power budget closed.
    pub all_budgets_close: bool,
}

impl TrafficReport {
    /// Fraction of packets delivered.
    pub fn delivery_rate(&self) -> f64 {
        if self.packets == 0 {
            return 1.0;
        }
        self.delivered as f64 / self.packets as f64
    }

    /// Mean hops per delivered packet.
    pub fn mean_hops(&self) -> f64 {
        if self.delivered == 0 {
            return 0.0;
        }
        self.delivered_hops as f64 / self.delivered as f64
    }

    /// Mean load over links that carried any traffic at all
    /// (traversals by dropped packets included — they loaded the
    /// link all the same).
    pub fn mean_link_load(&self) -> f64 {
        let used = self.link_load.iter().filter(|&&load| load > 0).count();
        if used == 0 {
            return 0.0;
        }
        self.total_hops as f64 / used as f64
    }

    /// Mean optical energy per *attempted* packet, pJ: the fabric
    /// spends energy on a packet's hops whether or not it ultimately
    /// arrives.
    pub fn mean_energy_pj(&self) -> f64 {
        if self.packets == 0 {
            return 0.0;
        }
        self.energy_total_pj / self.packets as f64
    }
}

/// Aggregate results of one batched multicast run
/// ([`super::TrafficEngine::run_multicast`]): each group routed as one
/// delivery tree, every tree arc charged **once** — the optical
/// replication story — with the **multicast forwarding index** (max
/// per-link tree count) reported against its unicast counterpart (max
/// per-link leaf load, what per-leaf replication would have cost).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MulticastReport {
    /// Router description (see [`otis_core::Router::name`]).
    pub router: String,
    /// One-to-many groups routed.
    pub groups: usize,
    /// Requested destination leaves over all groups (root
    /// self-requests included).
    pub leaves: usize,
    /// Leaves reached through their tree (self-requests delivered at
    /// the source included).
    pub delivered_leaves: usize,
    /// Leaves with no route from their root.
    pub dropped_leaves: usize,
    /// Tree arcs traversed — optical transmissions actually paid, each
    /// arc charged once however many leaves it serves.
    pub tree_arcs: u64,
    /// Link traversals a per-leaf unicast replication of the same
    /// workload would have paid (sum of root→leaf path lengths).
    /// `unicast_hops / tree_arcs` is the replication saving.
    pub unicast_hops: u64,
    /// Deepest delivery over all trees, in hops.
    pub max_depth: u32,
    /// Trees carried per transceiver (index `u·d + k`): the multicast
    /// link-load vector.
    pub link_load: Vec<u64>,
    /// `max(link_load)` — the **multicast forwarding index** of the
    /// workload under this routing (Wang et al., PAPERS.md).
    pub multicast_forwarding_index: u64,
    /// Max per-link *leaf* load — the forwarding index the same
    /// workload would show as unicast replication.
    pub unicast_forwarding_index: u64,
    /// Mean root→leaf latency over delivered leaves, ps.
    pub latency_mean_ps: f64,
    /// Median root→leaf latency, ps.
    pub latency_p50_ps: f64,
    /// 99th-percentile root→leaf latency, ps.
    pub latency_p99_ps: f64,
    /// Worst root→leaf latency, ps.
    pub latency_max_ps: f64,
    /// Total optical energy spent, pJ — per tree arc, not per leaf.
    pub energy_total_pj: f64,
    /// True iff every traversed link's power budget closed.
    pub all_budgets_close: bool,
}

impl MulticastReport {
    /// Fraction of requested leaves delivered.
    pub fn delivery_rate(&self) -> f64 {
        if self.leaves == 0 {
            return 1.0;
        }
        self.delivered_leaves as f64 / self.leaves as f64
    }

    /// Link traversals saved by tree replication: how many times more
    /// transmissions per-leaf unicast would have paid (`1.0` = no
    /// sharing; broadcast trees approach the fabric's mean distance).
    pub fn replication_saving(&self) -> f64 {
        if self.tree_arcs == 0 {
            return 1.0;
        }
        self.unicast_hops as f64 / self.tree_arcs as f64
    }

    /// Mean tree arcs per group.
    pub fn mean_tree_arcs(&self) -> f64 {
        if self.groups == 0 {
            return 0.0;
        }
        self.tree_arcs as f64 / self.groups as f64
    }
}

/// Aggregate results of one cycle-accurate queueing run
/// ([`super::QueueingEngine::run`]): where [`TrafficReport`] tallies
/// static link load, this report captures congestion *dynamics* —
/// queueing delay, drops by cause, buffer occupancy, and throughput.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueingReport {
    /// Router description (see [`otis_core::Router::name`]).
    pub router: String,
    /// Injection rate the run offered, packets per cycle (fabric-wide).
    pub offered_per_cycle: f64,
    /// Cycles the run took (injection + drain).
    pub cycles: u64,
    /// Packets that entered the network (self-pairs and drops at the
    /// injection port included; workload left uninjected at the
    /// horizon is not).
    pub injected: usize,
    /// Packets that reached their destination.
    pub delivered: usize,
    /// Packets tail-dropped at a full buffer.
    pub dropped_full: usize,
    /// Packets with no (surviving) route, or misrouted off-fabric.
    pub dropped_unroutable: usize,
    /// Packets that exhausted their hop budget (routing loops or
    /// excessive adaptive deroutes).
    pub dropped_ttl: usize,
    /// Packets still buffered when the run ended (nonzero only at the
    /// cycle horizon or after a backpressure deadlock).
    pub in_flight: usize,
    /// True iff a backpressure cycle wedged: buffers full in a ring,
    /// no packet able to move. With a single virtual channel (`vcs =
    /// 1`) de Bruijn shortest-path routing is not deadlock-free under
    /// finite buffers; `vcs ≥ 2` dateline channels break those rings.
    pub deadlocked: bool,
    /// Virtual channels per directed link the run was configured with.
    pub vcs: usize,
    /// Packets promoted to a higher VC class while crossing the
    /// dateline (a wrap arc of the fabric's cycle decomposition). Each
    /// promotion is a channel dependency moved off the class it would
    /// otherwise have closed into a cycle — the evidence of deadlocks
    /// prevented rather than merely detected. Always `0` with
    /// `vcs = 1`.
    pub dateline_promotions: u64,
    /// Moves admitted past a full FIFO because a top-class packet
    /// crossed the dateline again (the deep-dateline-buffer escape
    /// valve; see `otis_core::Dateline::needs_relief`). These are the
    /// only moves that may push a wrap channel's top-class FIFO past
    /// `buffers` — `0` whenever `vcs` exceeds every route's wrap
    /// count, and always `0` with `vcs = 1` or under tail-drop
    /// (which never blocks, so it keeps its caps by dropping).
    pub dateline_relief: u64,
    /// Cycles some source spent stalled at its injection queue under
    /// backpressure (summed over sources). With per-source injection
    /// queues a stalled source blocks only itself; this counts how
    /// much stalling the fabric actually imposed.
    pub source_stall_cycles: u64,
    /// Sum of hops over delivered packets.
    pub delivered_hops: u64,
    /// Longest delivered walk, in hops (deroutes included).
    pub max_hops: u32,
    /// Mean queueing delay of delivered packets, cycles: time since
    /// the packet's injection credit accrued, beyond the one cycle per
    /// hop a contention-free packet would spend — source stalling
    /// under backpressure counts (the open-loop convention, so
    /// congestion cannot hide in an unmeasured source queue).
    pub wait_mean_cycles: f64,
    /// Median queueing delay, cycles.
    pub wait_p50_cycles: u64,
    /// 99th-percentile queueing delay, cycles.
    pub wait_p99_cycles: u64,
    /// Worst queueing delay, cycles.
    pub wait_max_cycles: u64,
    /// Peak buffer occupancy per directed link (arc order of the
    /// routed digraph): the deepest any of the link's VC FIFOs got.
    pub peak_occupancy: Vec<u32>,
    /// Peak buffer occupancy per VC class (length `vcs`): the deepest
    /// FIFO of that class across all links — shows how far up the
    /// class ladder the dateline actually pushed traffic.
    pub vc_peak_occupancy: Vec<u32>,
    /// `max(peak_occupancy)` — how close the worst FIFO came to its
    /// buffer cap.
    pub max_peak_occupancy: u32,
    /// Packets delivered per directed link (arc order): counts the
    /// final hop of each delivered packet. Under contention, drain
    /// arbitration must keep these balanced on symmetric fabrics —
    /// the fairness the rotating drain offset exists to provide.
    pub delivered_per_link: Vec<u64>,
    /// One-to-many groups the run injected; `0` for unicast runs. In
    /// a multicast run every leaf-unit counter (`injected`,
    /// `delivered`, drops, `in_flight`) is in *destination leaves*:
    /// conservation reads `injected_leaves = delivered + dropped +
    /// in_flight`.
    pub multicast_groups: usize,
    /// Packet copies spawned at tree branch nodes (beyond the copies
    /// injected at roots). `0` for unicast runs.
    pub replicated_copies: u64,
    /// Static multicast forwarding index of the workload's delivery
    /// trees — max per-link tree count, the congestion scalar of the
    /// BCube analysis. `0` for unicast runs.
    pub multicast_forwarding_index: u64,
    /// Hot-versus-background breakdown, present when the run was
    /// classified (see `QueueingEngine::run_classified`): the
    /// tree-saturation story made visible per traffic class.
    pub class_stats: Option<ClassBreakdown>,
    /// Link deaths applied (capacity transitions to zero). `0` for
    /// runs without a dynamics timeline.
    pub link_down_events: u64,
    /// Link revivals applied (capacity transitions from zero).
    pub link_up_events: u64,
    /// Every capacity transition applied, crossings or not (partial
    /// fades included) — always ≥ `link_down_events + link_up_events`.
    pub capacity_events: u64,
    /// Packets stranded by a link death and dropped — either by
    /// `StrandedPolicy::Drop`, or under `Reinject` when repair left
    /// their destination unreachable. Counted in [`QueueingReport::dropped`].
    pub dropped_stranded: usize,
    /// Stranded packets successfully re-placed onto a live out-channel
    /// of the node the death caught them at.
    pub stranded_reinjected: u64,
    /// Per link death, in event order: cycles from the death until the
    /// first packet committed onto an alternative out-link of the
    /// affected node (the event cycle counts as 1 — a same-cycle
    /// re-placement reroutes in one cycle). Deaths whose reroute never
    /// happened split into `reroute_unresolved` and
    /// `reroute_no_demand`, so `len() + reroute_unresolved +
    /// reroute_no_demand == link_down_events`.
    pub time_to_reroute_cycles: Vec<u64>,
    /// Link deaths where packets demonstrably wanted the dead beam
    /// (queued FIFO content stranded at the event, or a dead-target
    /// requery afterwards) but no alternative out-link of the node
    /// ever took a packet — real reroute failures, or the run ending
    /// first.
    pub reroute_unresolved: u64,
    /// Link deaths no packet ever asked about: nothing was queued on
    /// the beam and nothing requeried it, so the missing reroute is
    /// vacuous, not a failure.
    pub reroute_no_demand: u64,
    /// Per zero-crossing event fed to the router's online repair, in
    /// event order: CSR runs rewritten by the incremental patch. Empty
    /// when the router has no repair capability.
    pub repair_runs_patched: Vec<u64>,
    /// Next-hop rows rewritten across all repairs (the row count a
    /// full rebuild would rewrite per event is the node count).
    pub repair_rows_patched: u64,
    /// CSR runs the repairable table held after the run — the
    /// denominator `repair_runs_patched` entries compare against (a
    /// full rebuild rewrites all of them). `0` without repair.
    pub table_runs_total: u64,
    /// Immutable route snapshots the repairing router published during
    /// the run — one per same-cycle *batch* of zero-crossing events
    /// that actually patched the table (a 16-beam storm costs one
    /// publication; all-no-op batches republish nothing). The
    /// epoch-snapshot read path's entire write-side cost.
    pub snapshot_publications: u64,
    /// Total compressed-table runs across those publications: the
    /// itemized cost of rebuilding the immutable CSR view each time.
    pub snapshot_runs_published: u64,
}

/// Queueing statistics of one traffic class within a classified run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassStats {
    /// Packets of this class that entered the network (injection
    /// drops and self-pairs included).
    pub injected: usize,
    /// Packets of this class delivered.
    pub delivered: usize,
    /// Packets of this class dropped, all causes.
    pub dropped: usize,
    /// Mean queueing delay of this class's delivered packets, cycles.
    pub wait_mean_cycles: f64,
    /// Median queueing delay, cycles.
    pub wait_p50_cycles: u64,
    /// 99th-percentile queueing delay, cycles.
    pub wait_p99_cycles: u64,
    /// Worst queueing delay, cycles.
    pub wait_max_cycles: u64,
}

impl ClassStats {
    /// Fraction of this class's injected packets delivered.
    pub fn delivery_rate(&self) -> f64 {
        if self.injected == 0 {
            return 1.0;
        }
        self.delivered as f64 / self.injected as f64
    }
}

/// Per-class split of a classified queueing run: the packets aimed at
/// the hot destination versus everything else. Under tree saturation
/// the hot class queues at the hot node's in-tree while the background
/// class — 75% of a hotspot workload — suffers only head-of-line
/// collateral; this breakdown shows each side separately.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassBreakdown {
    /// Packets whose destination is the hot node.
    pub hot: ClassStats,
    /// All other packets.
    pub background: ClassStats,
}

impl QueueingReport {
    /// All drops, regardless of cause.
    pub fn dropped(&self) -> usize {
        self.dropped_full + self.dropped_unroutable + self.dropped_ttl + self.dropped_stranded
    }

    /// Fraction of injected packets delivered.
    pub fn delivery_rate(&self) -> f64 {
        if self.injected == 0 {
            return 1.0;
        }
        self.delivered as f64 / self.injected as f64
    }

    /// Fraction of injected packets dropped.
    pub fn drop_rate(&self) -> f64 {
        if self.injected == 0 {
            return 0.0;
        }
        self.dropped() as f64 / self.injected as f64
    }

    /// Delivered throughput, packets per cycle (fabric-wide). Under
    /// saturation this plateaus while offered load keeps climbing.
    pub fn throughput_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.delivered as f64 / self.cycles as f64
    }

    /// Mean hops per delivered packet (deroutes included).
    pub fn mean_hops(&self) -> f64 {
        if self.delivered == 0 {
            return 0.0;
        }
        self.delivered_hops as f64 / self.delivered as f64
    }

    /// Packet conservation: everything injected is delivered, dropped,
    /// or still buffered. The queueing engine's core invariant.
    pub fn conserves_packets(&self) -> bool {
        self.injected == self.delivered + self.dropped() + self.in_flight
    }

    /// The dynamics counters' own conservation laws, on top of
    /// [`QueueingReport::conserves_packets`]: every link death is
    /// accounted a resolved reroute, a demanded-but-unresolved one, or
    /// a vacuous no-demand one (`time_to_reroute_cycles` +
    /// `reroute_unresolved` + `reroute_no_demand` ==
    /// `link_down_events`), zero-crossings never outnumber capacity
    /// transitions (`link_down_events` + `link_up_events` ≤
    /// `capacity_events`), stranded packets resolve to a reinjection
    /// or a stranded drop (`stranded_reinjected` and
    /// `dropped_stranded` are their partition, checked through the
    /// packet conservation above), repair cost vectors quote against a
    /// live denominator (`repair_runs_patched` entries need
    /// `table_runs_total` > 0), and snapshot publications trace to
    /// zero-crossings (`snapshot_publications` ≤ the crossing count,
    /// and `snapshot_runs_published` needs at least one publication).
    /// The lint report-field audit pins every dynamics counter to an
    /// appearance here.
    pub fn dynamics_consistent(&self) -> bool {
        self.conserves_packets()
            && self.time_to_reroute_cycles.len() as u64
                + self.reroute_unresolved
                + self.reroute_no_demand
                == self.link_down_events
            && self.link_down_events + self.link_up_events <= self.capacity_events
            && (self.repair_runs_patched.is_empty() || self.table_runs_total > 0)
            && (self.repair_rows_patched == 0 || !self.repair_runs_patched.is_empty())
            && self.snapshot_publications <= self.link_down_events + self.link_up_events
            && (self.snapshot_runs_published == 0 || self.snapshot_publications > 0)
            && (self.stranded_reinjected == 0 && self.dropped_stranded == 0
                || self.link_down_events > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_empty_samples_are_zero() {
        assert_eq!(percentile_f64(&[], 0.5), 0.0);
        assert_eq!(percentile_f64(&[], 0.99), 0.0);
        assert_eq!(percentile_u64(&[], 0.5), 0);
        assert_eq!(percentile_u64(&[], 1.0), 0);
    }

    #[test]
    fn percentiles_of_single_samples_are_that_sample() {
        for fraction in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(percentile_f64(&[42.5], fraction), 42.5);
            assert_eq!(percentile_u64(&[7], fraction), 7);
        }
    }

    #[test]
    fn percentiles_interior() {
        let sorted: Vec<u64> = (0..=100).collect();
        assert_eq!(percentile_u64(&sorted, 0.5), 50);
        assert_eq!(percentile_u64(&sorted, 0.99), 99);
        assert_eq!(percentile_u64(&sorted, 1.0), 100);
        let f: Vec<f64> = sorted.iter().map(|&x| x as f64).collect();
        assert_eq!(percentile_f64(&f, 0.0), 0.0);
        assert_eq!(percentile_f64(&f, 1.0), 100.0);
    }

    /// The nearest-rank convention, pinned: rank `⌈q·N⌉` of the sorted
    /// sample, never interpolated, never over-read.
    #[test]
    fn percentiles_are_nearest_rank() {
        // p99 of 100 samples is the 99th smallest — not the max.
        let hundred: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_u64(&hundred, 0.99), 99);
        assert_eq!(percentile_u64(&hundred, 0.50), 50);
        assert_eq!(percentile_u64(&hundred, 0.999), 100);
        // p50 of 2 samples is the lower one (the old rounded rank
        // read the upper, overstating small-sample medians).
        assert_eq!(percentile_u64(&[3, 9], 0.50), 3);
        assert_eq!(percentile_f64(&[3.0, 9.0], 0.50), 3.0);
        assert_eq!(percentile_u64(&[3, 9], 0.51), 9);
        // Rank clamps: fraction 0 reads the minimum.
        assert_eq!(percentile_u64(&[3, 9], 0.0), 3);
        // Monotone in the fraction, by construction.
        let sample: Vec<u64> = vec![1, 1, 2, 3, 5, 8, 13];
        let mut last = 0;
        for step in 0..=20 {
            let value = percentile_u64(&sample, step as f64 / 20.0);
            assert!(value >= last, "percentile must be monotone");
            last = value;
        }
    }

    /// The histogram is a drop-in replacement for the sorted sample
    /// vector: identical mean, max, and nearest-rank percentiles.
    #[test]
    fn wait_histogram_matches_sorted_sample_percentiles() {
        let empty = WaitHistogram::default();
        assert_eq!(empty.percentile(0.5), 0);
        assert_eq!(empty.max(), 0);
        assert_eq!(empty.mean(), 0.0);

        let samples: Vec<u64> = vec![9, 3, 3, 0, 7, 9, 9, 1, 0, 13];
        let mut hist = WaitHistogram::default();
        for &wait in &samples {
            hist.record(wait);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for step in 0..=20 {
            let fraction = step as f64 / 20.0;
            assert_eq!(
                hist.percentile(fraction),
                percentile_u64(&sorted, fraction),
                "fraction {fraction}"
            );
        }
        assert_eq!(hist.max(), 13);
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        assert!((hist.mean() - mean).abs() < 1e-12);

        // The pinned small-sample cases, via the histogram.
        let mut two = WaitHistogram::default();
        two.record_n(3, 1);
        two.record(9);
        assert_eq!(two.percentile(0.50), 3);
        assert_eq!(two.percentile(0.51), 9);
        assert_eq!(two.percentile(0.0), 3);
    }

    fn empty_traffic_report() -> TrafficReport {
        TrafficReport {
            router: "test".into(),
            packets: 0,
            delivered: 0,
            dropped: 0,
            total_hops: 0,
            delivered_hops: 0,
            max_hops: 0,
            link_load: vec![],
            max_link_load: 0,
            latency_mean_ps: 0.0,
            latency_p50_ps: 0.0,
            latency_p99_ps: 0.0,
            latency_max_ps: 0.0,
            energy_total_pj: 0.0,
            all_budgets_close: true,
        }
    }

    #[test]
    fn traffic_report_rates_on_empty_workload() {
        // The divide-by-zero-adjacent paths: every ratio must stay
        // finite and sensible with zero packets and zero loaded links.
        let report = empty_traffic_report();
        assert_eq!(report.delivery_rate(), 1.0, "vacuously delivered");
        assert_eq!(report.mean_hops(), 0.0);
        assert_eq!(report.mean_link_load(), 0.0);
        assert_eq!(report.mean_energy_pj(), 0.0);
    }

    #[test]
    fn traffic_report_rates_on_single_packet() {
        let report = TrafficReport {
            packets: 1,
            delivered: 1,
            total_hops: 3,
            delivered_hops: 3,
            max_hops: 3,
            link_load: vec![1, 1, 1, 0],
            max_link_load: 1,
            energy_total_pj: 6.0,
            ..empty_traffic_report()
        };
        assert_eq!(report.delivery_rate(), 1.0);
        assert_eq!(report.mean_hops(), 3.0);
        assert_eq!(report.mean_link_load(), 1.0);
        assert_eq!(report.mean_energy_pj(), 6.0);
    }

    #[test]
    fn queueing_report_rates_on_empty_run() {
        let report = QueueingReport {
            router: "test".into(),
            offered_per_cycle: 1.0,
            cycles: 0,
            injected: 0,
            delivered: 0,
            dropped_full: 0,
            dropped_unroutable: 0,
            dropped_ttl: 0,
            in_flight: 0,
            deadlocked: false,
            vcs: 1,
            dateline_promotions: 0,
            dateline_relief: 0,
            source_stall_cycles: 0,
            delivered_hops: 0,
            max_hops: 0,
            wait_mean_cycles: 0.0,
            wait_p50_cycles: 0,
            wait_p99_cycles: 0,
            wait_max_cycles: 0,
            peak_occupancy: vec![],
            vc_peak_occupancy: vec![],
            max_peak_occupancy: 0,
            delivered_per_link: vec![],
            multicast_groups: 0,
            replicated_copies: 0,
            multicast_forwarding_index: 0,
            class_stats: None,
            link_down_events: 0,
            link_up_events: 0,
            capacity_events: 0,
            dropped_stranded: 0,
            stranded_reinjected: 0,
            time_to_reroute_cycles: vec![],
            reroute_unresolved: 0,
            reroute_no_demand: 0,
            repair_runs_patched: vec![],
            repair_rows_patched: 0,
            table_runs_total: 0,
            snapshot_publications: 0,
            snapshot_runs_published: 0,
        };
        assert_eq!(report.delivery_rate(), 1.0);
        assert_eq!(report.drop_rate(), 0.0);
        assert_eq!(report.throughput_per_cycle(), 0.0);
        assert_eq!(report.mean_hops(), 0.0);
        assert!(report.conserves_packets());
        assert!(report.dynamics_consistent());
        // A death with no reroute accounting breaks dynamics
        // consistency; accounting it — demanded or vacuous — restores
        // it, and the two buckets trade off one-for-one.
        let mut dynamic = report.clone();
        dynamic.link_down_events = 1;
        dynamic.capacity_events = 1;
        assert!(!dynamic.dynamics_consistent());
        dynamic.reroute_unresolved = 1;
        assert!(dynamic.dynamics_consistent());
        dynamic.reroute_unresolved = 0;
        dynamic.reroute_no_demand = 1;
        assert!(dynamic.dynamics_consistent());
        // Snapshot publications must trace to zero-crossings, and run
        // totals to publications.
        dynamic.snapshot_runs_published = 4;
        assert!(!dynamic.dynamics_consistent());
        dynamic.snapshot_publications = 1;
        assert!(dynamic.dynamics_consistent());
        dynamic.snapshot_publications = 2;
        assert!(
            !dynamic.dynamics_consistent(),
            "one crossing, two publications"
        );
        dynamic.snapshot_publications = 1;
        // Stranded drops count as drops: conservation keeps holding.
        dynamic.injected = 1;
        dynamic.dropped_stranded = 1;
        assert_eq!(dynamic.dropped(), 1);
        assert!(dynamic.conserves_packets());
    }

    #[test]
    fn multicast_report_rates() {
        let empty = MulticastReport {
            router: "test".into(),
            groups: 0,
            leaves: 0,
            delivered_leaves: 0,
            dropped_leaves: 0,
            tree_arcs: 0,
            unicast_hops: 0,
            max_depth: 0,
            link_load: vec![],
            multicast_forwarding_index: 0,
            unicast_forwarding_index: 0,
            latency_mean_ps: 0.0,
            latency_p50_ps: 0.0,
            latency_p99_ps: 0.0,
            latency_max_ps: 0.0,
            energy_total_pj: 0.0,
            all_budgets_close: true,
        };
        assert_eq!(empty.delivery_rate(), 1.0, "vacuously delivered");
        assert_eq!(empty.replication_saving(), 1.0);
        assert_eq!(empty.mean_tree_arcs(), 0.0);
        let busy = MulticastReport {
            groups: 2,
            leaves: 10,
            delivered_leaves: 9,
            dropped_leaves: 1,
            tree_arcs: 12,
            unicast_hops: 30,
            ..empty
        };
        assert_eq!(busy.delivery_rate(), 0.9);
        assert_eq!(busy.replication_saving(), 2.5);
        assert_eq!(busy.mean_tree_arcs(), 6.0);
    }

    #[test]
    fn class_stats_rates() {
        let stats = ClassStats {
            injected: 0,
            delivered: 0,
            dropped: 0,
            wait_mean_cycles: 0.0,
            wait_p50_cycles: 0,
            wait_p99_cycles: 0,
            wait_max_cycles: 0,
        };
        assert_eq!(stats.delivery_rate(), 1.0, "vacuously delivered");
        let stats = ClassStats {
            injected: 4,
            delivered: 3,
            dropped: 1,
            ..stats
        };
        assert_eq!(stats.delivery_rate(), 0.75);
    }
}
