//! Cycle-based discrete-event queueing simulation: congestion with
//! *dynamics*.
//!
//! The static engine ([`super::TrafficEngine`]) tallies how much load
//! oblivious routing piles on each link — the forwarding-index view of
//! the paper. What it cannot show is what an optical fabric actually
//! does when a link is oversubscribed: packets wait in finite buffers,
//! buffers fill, upstream traffic backs up or gets dropped, and
//! throughput saturates. On wavelength-routed fabrics that contention
//! — not path length — bounds achievable throughput (cf. the all-optical
//! BCube and conjugate-network papers in PAPERS.md).
//!
//! The model here is the standard synchronous abstraction of that
//! story:
//!
//! * every directed link (one transceiver beam) owns a FIFO buffer of
//!   `buffers` packets and `wavelengths` parallel channels;
//! * each cycle, every link drains up to `wavelengths` packets from
//!   its buffer head; a packet arriving at its destination leaves the
//!   network, any other packet asks the router for its next link;
//! * a full downstream buffer either blocks the packet in place
//!   (head-of-line [`ContentionPolicy::Backpressure`]) or discards it
//!   ([`ContentionPolicy::TailDrop`]);
//! * injection offers `offered_per_cycle` new packets per cycle from
//!   a single shared source stream, in workload order, subject to the
//!   same two policies. Under backpressure the stream stalls as a
//!   unit when its head packet's first-hop buffer is full — one
//!   injection port, not one queue per source (per-source injection
//!   queues are a ROADMAP item). Both routers in a comparison face
//!   the identical injection model.
//!
//! Everything is deterministic: links are serviced in arc order, ties
//! in the adaptive router resolve by candidate order, and the same
//! seed yields the same report. The engine publishes live buffer
//! occupancy through [`LinkOccupancy`] (an
//! [`otis_core::CongestionMap`]), which is what lets an
//! [`otis_core::AdaptiveRouter`] steer *this* simulation's packets
//! around *this* simulation's queues.

use super::report::{percentile_u64, QueueingReport};
use otis_core::{CongestionMap, DigraphFamily, Router};
use otis_digraph::Digraph;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// What happens upstream when a downstream buffer is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContentionPolicy {
    /// The packet waits where it is, blocking its FIFO (and, at the
    /// source, stalling injection). Lossless, but cyclic fabrics can
    /// deadlock under saturation — the run detects a wedged cycle and
    /// reports it.
    Backpressure,
    /// The packet is discarded and counted (`dropped_full`). Lossy,
    /// deadlock-free — the usual optical-switch behavior when no
    /// buffer wavelength is free.
    TailDrop,
}

impl std::str::FromStr for ContentionPolicy {
    type Err = String;

    fn from_str(raw: &str) -> Result<Self, String> {
        match raw {
            "backpressure" => Ok(ContentionPolicy::Backpressure),
            "taildrop" | "tail-drop" => Ok(ContentionPolicy::TailDrop),
            other => Err(format!(
                "unknown contention policy {other:?} (valid: backpressure|taildrop)"
            )),
        }
    }
}

/// Knobs of the queueing model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueConfig {
    /// FIFO buffer capacity per directed link, packets. Must be ≥ 1.
    pub buffers: usize,
    /// Wavelength channels per link: packets drained per link per
    /// cycle. Must be ≥ 1.
    pub wavelengths: usize,
    /// Full-buffer behavior.
    pub policy: ContentionPolicy,
    /// Hop budget per packet (TTL); `None` = `max(64, 2n)`. Bounds
    /// adaptive deroutes and misrouting routers alike.
    pub hop_limit: Option<u32>,
    /// Hard cap on simulated cycles; packets still buffered then are
    /// reported as `in_flight`.
    pub max_cycles: u64,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            buffers: 16,
            wavelengths: 1,
            policy: ContentionPolicy::TailDrop,
            hop_limit: None,
            max_cycles: 10_000_000,
        }
    }
}

/// Live per-link buffer occupancy, shared between a running
/// [`QueueingEngine`] and any [`otis_core::AdaptiveRouter`] steering
/// packets through it.
///
/// Cloning is cheap (two `Arc`s); all clones observe the same counts.
#[derive(Debug, Clone)]
pub struct LinkOccupancy {
    g: Arc<Digraph>,
    counts: Arc<[AtomicU32]>,
}

impl LinkOccupancy {
    /// Occupancy of the `arc`-th link (arc order of the digraph).
    pub fn arc_occupancy(&self, arc: usize) -> usize {
        self.counts[arc].load(Ordering::Relaxed) as usize
    }
}

impl CongestionMap for LinkOccupancy {
    fn queued(&self, from: u64, to: u64) -> usize {
        for arc in self.g.arc_range(from as u32) {
            if self.g.arc_target(arc) == to as u32 {
                return self.counts[arc].load(Ordering::Relaxed) as usize;
            }
        }
        0
    }
}

/// A packet in flight. `offered_cycle` is when the packet's injection
/// credit accrued, not when a stalled source finally bought it a
/// buffer slot — so queueing delay includes source stalling (the
/// open-loop measurement convention; clocking from injection instead
/// would hide exactly the congestion being measured).
#[derive(Debug, Clone, Copy)]
struct Packet {
    dst: u64,
    offered_cycle: u64,
    hops: u32,
}

/// Cycle-accurate queueing simulator over one fabric digraph.
///
/// Reusable across runs ([`QueueingEngine::run`] carries no state
/// over), but runs must not overlap: the occupancy counters are a
/// single shared scoreboard.
pub struct QueueingEngine {
    g: Arc<Digraph>,
    config: QueueConfig,
    counts: Arc<[AtomicU32]>,
}

impl QueueingEngine {
    /// Engine over a materialized fabric digraph.
    pub fn new(g: Digraph, config: QueueConfig) -> Self {
        assert!(
            config.buffers >= 1,
            "need at least one buffer slot per link"
        );
        assert!(
            config.wavelengths >= 1,
            "need at least one wavelength channel per link"
        );
        let counts: Vec<AtomicU32> = (0..g.arc_count()).map(|_| AtomicU32::new(0)).collect();
        QueueingEngine {
            g: Arc::new(g),
            config,
            counts: counts.into(),
        }
    }

    /// Engine over any family (materializes it first).
    pub fn from_family<F: DigraphFamily>(family: &F, config: QueueConfig) -> Self {
        Self::new(family.digraph(), config)
    }

    /// The fabric's node count.
    pub fn node_count(&self) -> u64 {
        self.g.node_count() as u64
    }

    /// Number of directed links (arcs) simulated.
    pub fn link_count(&self) -> usize {
        self.g.arc_count()
    }

    /// The engine's configuration.
    pub fn config(&self) -> &QueueConfig {
        &self.config
    }

    /// A live view of this engine's buffer occupancy — hand it to an
    /// [`otis_core::AdaptiveRouter`] *before* calling
    /// [`QueueingEngine::run`] and the router adapts to the queues the
    /// run builds up.
    pub fn occupancy(&self) -> LinkOccupancy {
        LinkOccupancy {
            g: Arc::clone(&self.g),
            counts: Arc::clone(&self.counts),
        }
    }

    /// The arc `from → to`, if present.
    fn arc_of(&self, from: u64, to: u64) -> Option<usize> {
        self.g
            .arc_range(from as u32)
            .find(|&arc| self.g.arc_target(arc) == to as u32)
    }

    /// Inject `workload` at `offered_per_cycle` packets per cycle
    /// (fabric-wide), simulate until every injected packet is
    /// delivered or dropped (or the run deadlocks / hits
    /// `max_cycles`), and report the dynamics.
    pub fn run(
        &self,
        router: &dyn Router,
        workload: &[(u64, u64)],
        offered_per_cycle: f64,
    ) -> QueueingReport {
        assert!(
            offered_per_cycle > 0.0,
            "offered load must be positive, got {offered_per_cycle}"
        );
        let n = self.node_count();
        assert_eq!(
            router.node_count(),
            n,
            "router covers {} nodes but the fabric has {n}",
            router.node_count()
        );
        let arcs = self.g.arc_count();
        let hop_limit = self
            .config
            .hop_limit
            .unwrap_or_else(|| (2 * n).max(64) as u32);
        let buffers = self.config.buffers;
        let wavelengths = self.config.wavelengths;

        let mut queues: Vec<VecDeque<Packet>> = (0..arcs).map(|_| VecDeque::new()).collect();
        for count in self.counts.iter() {
            count.store(0, Ordering::Relaxed);
        }
        let mut peak = vec![0u32; arcs];
        // Arrivals staged during the drain phase so a packet moves at
        // most one hop per cycle; `staged_len[arc]` counts them toward
        // the capacity check before they land in the FIFO.
        let mut staged: Vec<(usize, Packet)> = Vec::new();
        let mut staged_len = vec![0u32; arcs];

        let mut injected = 0usize;
        let mut delivered = 0usize;
        let mut dropped_full = 0usize;
        let mut dropped_unroutable = 0usize;
        let mut dropped_ttl = 0usize;
        let mut delivered_hops = 0u64;
        let mut max_hops = 0u32;
        let mut waits: Vec<u64> = Vec::with_capacity(workload.len());
        let mut deadlocked = false;

        let mut next_inject = 0usize;
        let mut credits = 0.0f64;
        let mut in_network = 0usize;
        let mut cycle = 0u64;
        // Cycle the `i`-th packet's injection credit accrues: credits
        // issued through cycle `c` total `(c+1)·offered`, so packet
        // `i` is covered once that reaches `i+1`. Without stalls this
        // is exactly the injection cycle.
        let offer_cycle =
            |i: usize| (((i + 1) as f64 / offered_per_cycle).ceil() as u64).saturating_sub(1);

        let bump = |counts: &Arc<[AtomicU32]>, arc: usize, delta: i32| {
            if delta >= 0 {
                counts[arc].fetch_add(delta as u32, Ordering::Relaxed);
            } else {
                counts[arc].fetch_sub((-delta) as u32, Ordering::Relaxed);
            }
        };

        while (next_inject < workload.len() || in_network > 0) && cycle < self.config.max_cycles {
            let mut activity = 0usize;

            // --- injection phase -------------------------------------
            credits += offered_per_cycle;
            while credits >= 1.0 && next_inject < workload.len() {
                let (src, dst) = workload[next_inject];
                if src == dst {
                    // Delivered without entering the network (any
                    // source-stall time still counts as waiting).
                    injected += 1;
                    delivered += 1;
                    waits.push(cycle - offer_cycle(next_inject).min(cycle));
                    next_inject += 1;
                    credits -= 1.0;
                    activity += 1;
                    continue;
                }
                let arc = router
                    .next_hop(src, dst)
                    .and_then(|next| self.arc_of(src, next));
                let Some(arc) = arc else {
                    // No route (or the router proposed a non-neighbor).
                    injected += 1;
                    dropped_unroutable += 1;
                    next_inject += 1;
                    credits -= 1.0;
                    activity += 1;
                    continue;
                };
                if queues[arc].len() < buffers {
                    queues[arc].push_back(Packet {
                        dst,
                        offered_cycle: offer_cycle(next_inject).min(cycle),
                        hops: 0,
                    });
                    bump(&self.counts, arc, 1);
                    peak[arc] = peak[arc].max(queues[arc].len() as u32);
                    in_network += 1;
                    injected += 1;
                    next_inject += 1;
                    credits -= 1.0;
                    activity += 1;
                } else {
                    match self.config.policy {
                        ContentionPolicy::TailDrop => {
                            injected += 1;
                            dropped_full += 1;
                            next_inject += 1;
                            credits -= 1.0;
                            activity += 1;
                        }
                        ContentionPolicy::Backpressure => break, // stall; keep credits
                    }
                }
            }
            if next_inject == workload.len() {
                credits = 0.0;
            }

            // --- drain phase -----------------------------------------
            // Every link moves up to `wavelengths` packets off its
            // buffer head. Moves land in `staged` and join the target
            // FIFO only after the phase, so no packet rides two links
            // in one cycle; occupancy counts update live so adaptive
            // routing sees the queues as they shift.
            for arc in 0..arcs {
                let arrive_at = self.g.arc_target(arc) as u64;
                for _ in 0..wavelengths {
                    let Some(&head) = queues[arc].front() else {
                        break;
                    };
                    let hops_after = head.hops + 1;
                    if head.dst == arrive_at {
                        queues[arc].pop_front();
                        bump(&self.counts, arc, -1);
                        in_network -= 1;
                        delivered += 1;
                        delivered_hops += hops_after as u64;
                        max_hops = max_hops.max(hops_after);
                        // Total time since offer minus one cycle per
                        // hop = cycles spent waiting (source stall
                        // plus buffer queueing).
                        waits.push(cycle + 1 - head.offered_cycle - hops_after as u64);
                        activity += 1;
                        continue;
                    }
                    if hops_after >= hop_limit {
                        queues[arc].pop_front();
                        bump(&self.counts, arc, -1);
                        in_network -= 1;
                        dropped_ttl += 1;
                        activity += 1;
                        continue;
                    }
                    let next_arc = router
                        .next_hop(arrive_at, head.dst)
                        .and_then(|next| self.arc_of(arrive_at, next));
                    let Some(next_arc) = next_arc else {
                        queues[arc].pop_front();
                        bump(&self.counts, arc, -1);
                        in_network -= 1;
                        dropped_unroutable += 1;
                        activity += 1;
                        continue;
                    };
                    if queues[next_arc].len() + (staged_len[next_arc] as usize) < buffers {
                        let mut packet = queues[arc].pop_front().expect("head exists");
                        bump(&self.counts, arc, -1);
                        packet.hops = hops_after;
                        staged_len[next_arc] += 1;
                        bump(&self.counts, next_arc, 1);
                        staged.push((next_arc, packet));
                        activity += 1;
                    } else {
                        match self.config.policy {
                            ContentionPolicy::TailDrop => {
                                queues[arc].pop_front();
                                bump(&self.counts, arc, -1);
                                in_network -= 1;
                                dropped_full += 1;
                                activity += 1;
                            }
                            ContentionPolicy::Backpressure => break, // head-of-line block
                        }
                    }
                }
            }
            for (arc, packet) in staged.drain(..) {
                queues[arc].push_back(packet);
                peak[arc] = peak[arc].max(queues[arc].len() as u32);
            }
            staged_len.fill(0);

            cycle += 1;
            if activity == 0 && in_network > 0 {
                // Packets are buffered but nothing moved, injected or
                // dropped: every head waits on a full buffer in a
                // cycle of full buffers. The queue state is static, so
                // no future cycle can differ — a backpressure
                // deadlock. (An idle network with activity 0 is just
                // injection pacing: credits below one packet.)
                deadlocked = true;
                break;
            }
        }

        let in_flight = in_network;
        waits.sort_unstable();
        let wait_mean_cycles = if waits.is_empty() {
            0.0
        } else {
            waits.iter().sum::<u64>() as f64 / waits.len() as f64
        };

        QueueingReport {
            router: router.name(),
            offered_per_cycle,
            cycles: cycle,
            injected,
            delivered,
            dropped_full,
            dropped_unroutable,
            dropped_ttl,
            in_flight,
            deadlocked,
            delivered_hops,
            max_hops,
            wait_mean_cycles,
            wait_p50_cycles: percentile_u64(&waits, 0.50),
            wait_p99_cycles: percentile_u64(&waits, 0.99),
            wait_max_cycles: waits.last().copied().unwrap_or(0),
            max_peak_occupancy: peak.iter().copied().max().unwrap_or(0),
            peak_occupancy: peak,
        }
    }

    /// Sweep offered load (packets per **node** per cycle) and measure
    /// delivered throughput at each point — the saturation curve of
    /// the fabric under this router.
    pub fn saturation_sweep(
        &self,
        router: &dyn Router,
        workload: &[(u64, u64)],
        loads_per_node: &[f64],
    ) -> SaturationSweep {
        let n = self.node_count() as f64;
        let points = loads_per_node
            .iter()
            .map(|&load| {
                let report = self.run(router, workload, load * n);
                SaturationPoint {
                    offered_per_node: load,
                    delivered_per_node: report.throughput_per_cycle() / n,
                    drop_rate: report.drop_rate(),
                    wait_p99_cycles: report.wait_p99_cycles,
                    deadlocked: report.deadlocked,
                }
            })
            .collect();
        SaturationSweep { points }
    }
}

/// One point of an offered-load sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaturationPoint {
    /// Offered load, packets per node per cycle.
    pub offered_per_node: f64,
    /// Delivered throughput, packets per node per cycle.
    pub delivered_per_node: f64,
    /// Fraction of injected packets dropped at this load.
    pub drop_rate: f64,
    /// 99th-percentile queueing delay at this load, cycles.
    pub wait_p99_cycles: u64,
    /// True iff this point's run wedged under backpressure.
    pub deadlocked: bool,
}

/// An offered-load sweep: the saturation curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SaturationSweep {
    /// One entry per offered load, in sweep order.
    pub points: Vec<SaturationPoint>,
}

impl SaturationSweep {
    /// Saturation-throughput estimate: the highest delivered
    /// throughput any offered load achieved (past saturation the curve
    /// plateaus or degrades, so the max is the knee).
    pub fn saturation_throughput_per_node(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.delivered_per_node)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otis_core::RoutingTable;

    /// The directed cycle C_n: one arc per node, fully deterministic.
    fn cycle(n: usize) -> Digraph {
        Digraph::from_fn(n, |u| [(u + 1) % n as u32])
    }

    fn config(buffers: usize, wavelengths: usize, policy: ContentionPolicy) -> QueueConfig {
        QueueConfig {
            buffers,
            wavelengths,
            policy,
            ..QueueConfig::default()
        }
    }

    #[test]
    fn single_packet_crosses_without_waiting() {
        let g = cycle(5);
        let router = RoutingTable::new(&g);
        let engine = QueueingEngine::new(g, QueueConfig::default());
        let report = engine.run(&router, &[(0, 3)], 1.0);
        assert_eq!(report.injected, 1);
        assert_eq!(report.delivered, 1);
        assert_eq!(report.dropped(), 0);
        assert_eq!(report.in_flight, 0);
        assert!(report.conserves_packets());
        assert_eq!(report.delivered_hops, 3);
        assert_eq!(report.max_hops, 3);
        // Uncontended: zero queueing delay, one cycle per hop.
        assert_eq!(report.wait_max_cycles, 0);
        assert_eq!(report.cycles, 3);
        assert!(!report.deadlocked);
    }

    #[test]
    fn wavelength_contention_serializes_a_shared_link() {
        // Three packets all need link 0→1 in the same cycle; one
        // wavelength drains one per cycle, so they wait 0, 1, 2 cycles.
        let g = cycle(4);
        let router = RoutingTable::new(&g);
        let engine = QueueingEngine::new(g, config(16, 1, ContentionPolicy::Backpressure));
        let report = engine.run(&router, &[(0, 1), (0, 1), (0, 1)], 3.0);
        assert_eq!(report.delivered, 3);
        assert!(report.conserves_packets());
        assert_eq!(report.wait_max_cycles, 2);
        assert_eq!(report.wait_p50_cycles, 1);
        assert_eq!(report.max_peak_occupancy, 3, "all three queued at once");
        // Two wavelengths halve the serialization.
        let g = cycle(4);
        let router = RoutingTable::new(&g);
        let engine = QueueingEngine::new(g, config(16, 2, ContentionPolicy::Backpressure));
        let report = engine.run(&router, &[(0, 1), (0, 1), (0, 1)], 3.0);
        assert_eq!(report.delivered, 3);
        assert_eq!(report.wait_max_cycles, 1);
    }

    #[test]
    fn tail_drop_discards_past_full_buffers() {
        // One buffer slot on the injection link: of three simultaneous
        // packets, the first queues, the other two tail-drop.
        let g = cycle(4);
        let router = RoutingTable::new(&g);
        let engine = QueueingEngine::new(g, config(1, 1, ContentionPolicy::TailDrop));
        let report = engine.run(&router, &[(0, 1), (0, 1), (0, 1)], 3.0);
        assert_eq!(report.delivered, 1);
        assert_eq!(report.dropped_full, 2);
        assert!(report.conserves_packets());
        assert_eq!(report.max_peak_occupancy, 1, "buffer never exceeds its cap");
    }

    #[test]
    fn backpressure_stalls_injection_instead_of_dropping() {
        let g = cycle(4);
        let router = RoutingTable::new(&g);
        let engine = QueueingEngine::new(g, config(1, 1, ContentionPolicy::Backpressure));
        let report = engine.run(&router, &[(0, 1), (0, 1), (0, 1)], 3.0);
        // Lossless: everything eventually delivers, the run just takes
        // longer than the tail-drop run.
        assert_eq!(report.delivered, 3);
        assert_eq!(report.dropped(), 0);
        assert!(report.conserves_packets());
        assert!(!report.deadlocked);
    }

    #[test]
    fn backpressure_ring_deadlock_is_detected_and_conserved() {
        // C_3 with single-slot buffers and every packet two hops from
        // home: all three buffers fill, each head needs the next full
        // buffer — a classic cyclic-dependency deadlock.
        let g = cycle(3);
        let router = RoutingTable::new(&g);
        let engine = QueueingEngine::new(g.clone(), config(1, 1, ContentionPolicy::Backpressure));
        let occupancy = engine.occupancy();
        let report = engine.run(&router, &[(0, 2), (1, 0), (2, 1)], 3.0);
        assert!(report.deadlocked, "{report:?}");
        assert_eq!(report.delivered, 0);
        assert_eq!(report.in_flight, 3);
        assert!(report.conserves_packets());
        // The occupancy view still shows the wedged buffers.
        assert_eq!(occupancy.queued(0, 1), 1);
        assert_eq!(occupancy.queued(1, 2), 1);
        assert_eq!(occupancy.queued(2, 0), 1);
        // The same scenario under tail-drop cannot wedge.
        let engine = QueueingEngine::new(g, config(1, 1, ContentionPolicy::TailDrop));
        let report = engine.run(&router, &[(0, 2), (1, 0), (2, 1)], 3.0);
        assert!(!report.deadlocked);
        assert!(report.conserves_packets());
        assert_eq!(report.in_flight, 0);
    }

    #[test]
    fn unroutable_packets_drop_at_injection() {
        let g = Digraph::from_fn(3, |u| if u == 0 { vec![1] } else { vec![] });
        let router = RoutingTable::new(&g);
        let engine = QueueingEngine::new(g, QueueConfig::default());
        let report = engine.run(&router, &[(0, 1), (2, 0), (1, 1)], 3.0);
        assert_eq!(report.delivered, 2, "the real route and the self-pair");
        assert_eq!(report.dropped_unroutable, 1);
        assert!(report.conserves_packets());
    }

    #[test]
    fn ttl_bounds_a_looping_packet() {
        // A blind router that always forwards around C_4 while the
        // packet's destination id exists nowhere on its walk: the hop
        // budget must retire it (as dropped_ttl, conserving packets)
        // instead of simulating forever.
        struct Forward;
        impl Router for Forward {
            fn node_count(&self) -> u64 {
                4
            }
            fn name(&self) -> String {
                "forward".into()
            }
            fn next_hop(&self, current: u64, _dst: u64) -> Option<u64> {
                Some((current + 1) % 4)
            }
        }
        let engine = QueueingEngine::new(
            cycle(4),
            QueueConfig {
                hop_limit: Some(6),
                ..QueueConfig::default()
            },
        );
        let report = engine.run(&Forward, &[(1, 7)], 1.0);
        assert_eq!(report.dropped_ttl, 1);
        assert_eq!(report.delivered, 0);
        assert!(report.conserves_packets());
    }

    #[test]
    fn saturation_sweep_finds_the_cycle_service_rate() {
        // On C_8 under uniform-ish traffic with one wavelength, each
        // link serves at most 1 packet/cycle; delivered throughput
        // must plateau once offered load exceeds capacity.
        let g = cycle(8);
        let router = RoutingTable::new(&g);
        let engine = QueueingEngine::new(g, config(8, 1, ContentionPolicy::TailDrop));
        let workload: Vec<(u64, u64)> = (0..400).map(|i| (i % 8, (i + 3) % 8)).collect();
        let sweep = engine.saturation_sweep(&router, &workload, &[0.05, 0.1, 0.3, 0.6, 1.0]);
        assert_eq!(sweep.points.len(), 5);
        let saturation = sweep.saturation_throughput_per_node();
        assert!(saturation > 0.0);
        // Per-node delivery can never exceed the per-node service
        // capacity of 1/3 (every packet holds its links 3 cycles).
        assert!(saturation <= 1.0 / 3.0 + 1e-9, "saturation {saturation}");
        // Low offered loads deliver what they offer; the top of the
        // sweep cannot (drops or stretched runs).
        let first = &sweep.points[0];
        assert!(first.delivered_per_node >= first.offered_per_node * 0.8);
    }
}
