//! Cycle-based discrete-event queueing simulation: congestion with
//! *dynamics*.
//!
//! The static engine ([`super::TrafficEngine`]) tallies how much load
//! oblivious routing piles on each link — the forwarding-index view of
//! the paper. What it cannot show is what an optical fabric actually
//! does when a link is oversubscribed: packets wait in finite buffers,
//! buffers fill, upstream traffic backs up or gets dropped, and
//! throughput saturates. On wavelength-routed fabrics that contention
//! — not path length — bounds achievable throughput (cf. the all-optical
//! BCube and conjugate-network papers in PAPERS.md).
//!
//! The model here is the standard synchronous abstraction of that
//! story:
//!
//! * every directed link (one transceiver beam) owns `vcs` virtual
//!   channels, each a FIFO of `buffers` packets, and `wavelengths`
//!   parallel drain channels shared by its VCs;
//! * each cycle, every link drains up to `wavelengths` packets off its
//!   VC FIFO heads, round-robin across classes; a packet arriving at
//!   its destination leaves the network, any other packet asks the
//!   router for its next link;
//! * a full downstream FIFO either blocks the packet in place —
//!   blocking only its own VC class
//!   ([`ContentionPolicy::Backpressure`]) — or discards it
//!   ([`ContentionPolicy::TailDrop`]);
//! * injection offers `offered_per_cycle` new packets per cycle
//!   (fabric-wide) through **independent per-source injection
//!   queues**: each source holds its own packets in workload order and
//!   a backpressured source stalls only itself, not its neighbors —
//!   the head-of-line isolation a shared stream cannot give;
//! * virtual channel classes follow the **dateline** discipline
//!   ([`otis_core::Dateline`]): packets inject on class 0 and are
//!   promoted one class each time they traverse a *wrap arc* — the
//!   dateline of the fabric's cycle decomposition, computed as a
//!   feedback arc set ([`otis_digraph::feedback::feedback_arcs`]), so
//!   every directed cycle of the fabric contains one. The
//!   channel-dependency graph is then acyclic by construction: within
//!   a class, dependencies ride the non-wrap subgraph, which is
//!   acyclic by definition of a feedback arc set; a wrap hop below
//!   the top class promotes out of the class; and the single
//!   remaining dependency — a top-class packet wrapping *again* — is
//!   never allowed to block (the deep-dateline-buffer escape valve,
//!   counted as `dateline_relief`). With `vcs ≥ 2` and
//!   `Backpressure`, the all-blocked state the deadlock detector
//!   looks for is therefore unreachable for any router; the wedges a
//!   single-channel run *detects* become `dateline_promotions`
//!   instead. Routes that wrap `k` times never need relief once
//!   `vcs > k` — a ring route wraps at most once, so two classes
//!   cover every pure ring with the valve shut.
//!
//! Everything is deterministic, and fair by rotation: the drain phase
//! starts from a different link each cycle (and from a different VC
//! class within a link), so no low-index link persistently wins the
//! wavelength channels; the injection phase rotates its starting
//! source the same way. The same seed yields the same report. The
//! engine publishes live per-VC buffer occupancy through
//! [`LinkOccupancy`] (an [`otis_core::CongestionMap`]), which is what
//! lets an [`otis_core::AdaptiveRouter`] steer *this* simulation's
//! packets around *this* simulation's queues — per VC class, when
//! built with [`otis_core::AdaptiveRouter::with_dateline`].

use super::report::{percentile_u64, ClassBreakdown, ClassStats, QueueingReport};
use otis_core::{CongestionMap, Dateline, DigraphFamily, Router};
use otis_digraph::Digraph;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// What happens upstream when a downstream buffer is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContentionPolicy {
    /// The packet waits where it is, blocking its VC FIFO (and, at the
    /// source, stalling that source's injection queue). Lossless; with
    /// `vcs = 1` cyclic fabrics can deadlock under saturation (the run
    /// detects the wedged cycle and reports it), while `vcs ≥ 2`
    /// dateline channels dissolve the ring dependencies instead.
    Backpressure,
    /// The packet is discarded and counted (`dropped_full`). Lossy,
    /// deadlock-free — the usual optical-switch behavior when no
    /// buffer wavelength is free.
    TailDrop,
}

impl std::str::FromStr for ContentionPolicy {
    type Err = String;

    fn from_str(raw: &str) -> Result<Self, String> {
        match raw {
            "backpressure" => Ok(ContentionPolicy::Backpressure),
            "taildrop" | "tail-drop" => Ok(ContentionPolicy::TailDrop),
            other => Err(format!(
                "unknown contention policy {other:?} (valid: backpressure|taildrop)"
            )),
        }
    }
}

/// Knobs of the queueing model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueConfig {
    /// FIFO buffer capacity per virtual channel, packets. Must be ≥ 1.
    pub buffers: usize,
    /// Wavelength channels per link: packets drained per link per
    /// cycle, shared by the link's VCs. Must be ≥ 1.
    pub wavelengths: usize,
    /// Virtual channels per directed link (dateline classes). Must be
    /// `1..=255`; `1` reproduces the single-FIFO fabric (and its
    /// backpressure deadlocks), `≥ 2` makes backpressure lossless on
    /// the ring decompositions these fabrics are built from.
    pub vcs: usize,
    /// Full-buffer behavior.
    pub policy: ContentionPolicy,
    /// Hop budget per packet (TTL); `None` = `max(64, 2n)`. Bounds
    /// adaptive deroutes and misrouting routers alike.
    pub hop_limit: Option<u32>,
    /// Hard cap on simulated cycles; packets still buffered then are
    /// reported as `in_flight`.
    pub max_cycles: u64,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            buffers: 16,
            wavelengths: 1,
            vcs: 1,
            policy: ContentionPolicy::TailDrop,
            hop_limit: None,
            max_cycles: 10_000_000,
        }
    }
}

/// Live per-VC buffer occupancy, shared between a running
/// [`QueueingEngine`] and any [`otis_core::AdaptiveRouter`] steering
/// packets through it.
///
/// Cloning is cheap (two `Arc`s); all clones observe the same counts.
#[derive(Debug, Clone)]
pub struct LinkOccupancy {
    g: Arc<Digraph>,
    /// One counter per (arc, VC class), arc-major.
    counts: Arc<[AtomicU32]>,
    vcs: usize,
}

impl LinkOccupancy {
    /// Virtual channels per link this view resolves.
    pub fn vcs(&self) -> usize {
        self.vcs
    }

    /// Occupancy of the `arc`-th link (arc order of the digraph),
    /// summed over its VC classes.
    pub fn arc_occupancy(&self, arc: usize) -> usize {
        (0..self.vcs)
            .map(|vc| self.counts[arc * self.vcs + vc].load(Ordering::Relaxed) as usize)
            .sum()
    }

    /// Occupancy of one VC FIFO of the `arc`-th link. Classes this
    /// view does not have (`vc ≥ vcs`) read `0` — a router configured
    /// with more dateline classes than the engine must not read a
    /// neighboring link's counter.
    pub fn channel_occupancy(&self, arc: usize, vc: usize) -> usize {
        if vc >= self.vcs {
            return 0;
        }
        self.counts[arc * self.vcs + vc].load(Ordering::Relaxed) as usize
    }

    /// The arc `from → to`, if present (`None` off-fabric: the
    /// congestion contract reads unknown links as empty).
    fn arc_of(&self, from: u64, to: u64) -> Option<usize> {
        arc_of(&self.g, from, to)
    }
}

/// The arc `from → to` of `g`, if present — `None` for off-fabric
/// endpoints (u64-safe: no truncation before the range check), so
/// probes against router-proposed hops need no pre-validation.
fn arc_of(g: &Digraph, from: u64, to: u64) -> Option<usize> {
    let n = g.node_count() as u64;
    if from >= n || to >= n {
        return None;
    }
    g.arc_between(from as u32, to as u32)
}

impl CongestionMap for LinkOccupancy {
    fn queued(&self, from: u64, to: u64) -> usize {
        self.arc_of(from, to)
            .map_or(0, |arc| self.arc_occupancy(arc))
    }

    fn queued_vc(&self, from: u64, to: u64, vc: u8) -> usize {
        self.arc_of(from, to)
            .map_or(0, |arc| self.channel_occupancy(arc, vc as usize))
    }
}

/// A packet in flight. `offered_cycle` is when the packet's injection
/// credit accrued, not when a stalled source finally bought it a
/// buffer slot — so queueing delay includes source stalling (the
/// open-loop measurement convention; clocking from injection instead
/// would hide exactly the congestion being measured).
#[derive(Debug, Clone, Copy)]
struct Packet {
    dst: u64,
    offered_cycle: u64,
    hops: u32,
    /// Dateline VC class the packet currently occupies.
    vc: u8,
}

/// Cycle-accurate queueing simulator over one fabric digraph.
///
/// Reusable across runs ([`QueueingEngine::run`] carries no state
/// over), but runs must not overlap: the occupancy counters are a
/// single shared scoreboard.
pub struct QueueingEngine {
    g: Arc<Digraph>,
    config: QueueConfig,
    /// One counter per (arc, VC class), arc-major — the live
    /// occupancy scoreboard behind [`LinkOccupancy`].
    counts: Arc<[AtomicU32]>,
    /// The dateline wrap set (a feedback arc set of the fabric) and
    /// class discipline, computed once per engine.
    dateline: Dateline,
}

impl QueueingEngine {
    /// Engine over a materialized fabric digraph.
    pub fn new(g: Digraph, config: QueueConfig) -> Self {
        assert!(
            config.buffers >= 1,
            "need at least one buffer slot per virtual channel"
        );
        assert!(
            config.wavelengths >= 1,
            "need at least one wavelength channel per link"
        );
        assert!(
            (1..=u8::MAX as usize).contains(&config.vcs),
            "need 1..=255 virtual channels per link, got {}",
            config.vcs
        );
        let counts: Vec<AtomicU32> = (0..g.arc_count() * config.vcs)
            .map(|_| AtomicU32::new(0))
            .collect();
        let g = Arc::new(g);
        let dateline = Dateline::new(Arc::clone(&g), config.vcs);
        QueueingEngine {
            g,
            config,
            counts: counts.into(),
            dateline,
        }
    }

    /// Engine over any family (materializes it first).
    pub fn from_family<F: DigraphFamily>(family: &F, config: QueueConfig) -> Self {
        Self::new(family.digraph(), config)
    }

    /// The fabric's node count.
    pub fn node_count(&self) -> u64 {
        self.g.node_count() as u64
    }

    /// Number of directed links (arcs) simulated.
    pub fn link_count(&self) -> usize {
        self.g.arc_count()
    }

    /// The engine's configuration.
    pub fn config(&self) -> &QueueConfig {
        &self.config
    }

    /// The dateline VC discipline this engine runs (cheap to clone —
    /// the wrap set is shared) — hand it to
    /// [`otis_core::AdaptiveRouter::with_dateline`] so adaptive
    /// scoring charges exactly the FIFO a packet would join.
    pub fn dateline(&self) -> Dateline {
        self.dateline.clone()
    }

    /// A live view of this engine's buffer occupancy — hand it to an
    /// [`otis_core::AdaptiveRouter`] *before* calling
    /// [`QueueingEngine::run`] and the router adapts to the queues the
    /// run builds up.
    pub fn occupancy(&self) -> LinkOccupancy {
        LinkOccupancy {
            g: Arc::clone(&self.g),
            counts: Arc::clone(&self.counts),
            vcs: self.config.vcs,
        }
    }

    /// The arc `from → to`, if present.
    fn arc_of(&self, from: u64, to: u64) -> Option<usize> {
        arc_of(&self.g, from, to)
    }

    /// Inject `workload` at `offered_per_cycle` packets per cycle
    /// (fabric-wide) through per-source injection queues, simulate
    /// until every injected packet is delivered or dropped (or the
    /// run deadlocks / hits `max_cycles`), and report the dynamics.
    /// Every workload source must be a fabric node (`src <
    /// node_count`); destinations may be arbitrary (an off-fabric
    /// destination is an unroutable drop).
    pub fn run(
        &self,
        router: &dyn Router,
        workload: &[(u64, u64)],
        offered_per_cycle: f64,
    ) -> QueueingReport {
        self.run_classified(router, workload, offered_per_cycle, None)
    }

    /// As [`QueueingEngine::run`], additionally splitting delay,
    /// delivery and drops by traffic class — packets destined for
    /// `hot_dst` versus everything else
    /// ([`QueueingReport::class_stats`]). Pass the hotspot pattern's
    /// hot node ([`super::TrafficPattern::hot_node`]) and the
    /// tree-saturation story becomes visible per class: the hot
    /// quarter queueing into the saturated in-tree, the background
    /// three quarters suffering only collateral head-of-line damage.
    pub fn run_classified(
        &self,
        router: &dyn Router,
        workload: &[(u64, u64)],
        offered_per_cycle: f64,
        hot_dst: Option<u64>,
    ) -> QueueingReport {
        assert!(
            offered_per_cycle > 0.0,
            "offered load must be positive, got {offered_per_cycle}"
        );
        let n = self.node_count();
        assert_eq!(
            router.node_count(),
            n,
            "router covers {} nodes but the fabric has {n}",
            router.node_count()
        );
        let arcs = self.g.arc_count();
        let vcs = self.config.vcs;
        let channels = arcs * vcs;
        let dateline = &self.dateline;
        let hop_limit = self
            .config
            .hop_limit
            .unwrap_or_else(|| (2 * n).max(64) as u32);
        let buffers = self.config.buffers;
        let wavelengths = self.config.wavelengths;

        let mut queues: Vec<VecDeque<Packet>> = (0..channels).map(|_| VecDeque::new()).collect();
        for count in self.counts.iter() {
            count.store(0, Ordering::Relaxed);
        }
        let mut peak = vec![0u32; channels];
        // Arrivals staged during the drain phase so a packet moves at
        // most one hop per cycle; `staged_len[chan]` counts them
        // toward the capacity check before they land in the FIFO.
        let mut staged: Vec<(usize, Packet)> = Vec::new();
        let mut staged_len = vec![0u32; channels];
        // Per-(link, class) head-of-line block flags, reused across
        // the drain loop.
        let mut vc_blocked = vec![false; vcs];

        // Per-source injection queues: each source owns its packets in
        // workload order, so a backpressured source stalls only
        // itself. `source_ids` lists the sources that have traffic at
        // all, in node order; the injection scan rotates over it.
        let mut sources: Vec<VecDeque<usize>> = vec![VecDeque::new(); n as usize];
        for (index, &(src, _)) in workload.iter().enumerate() {
            assert!(
                src < n,
                "workload source {src} is not a fabric node (fabric has {n})"
            );
            sources[src as usize].push_back(index);
        }
        let source_ids: Vec<usize> = (0..n as usize)
            .filter(|&src| !sources[src].is_empty())
            .collect();

        let mut injected = 0usize;
        let mut pending = workload.len();
        let mut delivered = 0usize;
        let mut dropped_full = 0usize;
        let mut dropped_unroutable = 0usize;
        let mut dropped_ttl = 0usize;
        let mut delivered_hops = 0u64;
        let mut max_hops = 0u32;
        let mut waits: Vec<u64> = Vec::with_capacity(workload.len());
        let mut deadlocked = false;
        let mut dateline_promotions = 0u64;
        let mut dateline_relief = 0u64;
        let mut source_stall_cycles = 0u64;
        let mut delivered_per_link = vec![0u64; arcs];

        // Per-class (background = 0, hot = 1) accounting, populated
        // only when the run is classified.
        let classified = hot_dst.is_some();
        let class_of = |dst: u64| usize::from(hot_dst == Some(dst));
        let mut class_injected = [0usize; 2];
        let mut class_delivered = [0usize; 2];
        let mut class_dropped = [0usize; 2];
        let mut class_waits: [Vec<u64>; 2] = [Vec::new(), Vec::new()];

        let mut in_network = 0usize;
        let mut cycle = 0u64;
        // Cycle the `i`-th packet's injection credit accrues: credits
        // issued through cycle `c` total `(c+1)·offered`, so packet
        // `i` is covered once that reaches `i+1`. Without stalls this
        // is exactly the injection cycle.
        let offer_cycle =
            |i: usize| (((i + 1) as f64 / offered_per_cycle).ceil() as u64).saturating_sub(1);

        let bump = |counts: &Arc<[AtomicU32]>, chan: usize, delta: i32| {
            if delta >= 0 {
                counts[chan].fetch_add(delta as u32, Ordering::Relaxed);
            } else {
                counts[chan].fetch_sub((-delta) as u32, Ordering::Relaxed);
            }
        };

        while (pending > 0 || in_network > 0) && cycle < self.config.max_cycles {
            let mut activity = 0usize;

            // --- injection phase -------------------------------------
            // Every source offers its own queue head (packets whose
            // credit has accrued), independently: under backpressure a
            // full first-hop FIFO stalls that source alone. The
            // starting source rotates each cycle so no low-numbered
            // source persistently injects into contended buffers
            // first. Skipped entirely once every source has drained —
            // the post-injection tail only moves in-network packets.
            let scan_count = if pending == 0 { 0 } else { source_ids.len() };
            let source_start = if source_ids.is_empty() {
                0
            } else {
                cycle as usize % source_ids.len()
            };
            for scan in 0..scan_count {
                let src = source_ids[(source_start + scan) % source_ids.len()];
                while let Some(&index) = sources[src].front() {
                    if offer_cycle(index) > cycle {
                        // Not offered yet — and queues hold workload
                        // order, so nothing behind it is either.
                        break;
                    }
                    let (_, dst) = workload[index];
                    let class = class_of(dst);
                    if src as u64 == dst {
                        // Delivered without entering the network (any
                        // source-stall time still counts as waiting).
                        sources[src].pop_front();
                        pending -= 1;
                        injected += 1;
                        delivered += 1;
                        class_injected[class] += 1;
                        class_delivered[class] += 1;
                        let wait = cycle - offer_cycle(index);
                        waits.push(wait);
                        if classified {
                            class_waits[class].push(wait);
                        }
                        activity += 1;
                        continue;
                    }
                    let arc = router
                        .next_hop_on_vc(src as u64, dst, 0)
                        .and_then(|next| self.arc_of(src as u64, next));
                    let Some(arc) = arc else {
                        // No route (or the router proposed a non-neighbor).
                        sources[src].pop_front();
                        pending -= 1;
                        injected += 1;
                        dropped_unroutable += 1;
                        class_injected[class] += 1;
                        class_dropped[class] += 1;
                        activity += 1;
                        continue;
                    };
                    // A packet starts at class 0 and, like any other
                    // hop, is promoted if its very first arc crosses
                    // the dateline — so the class it joins is exactly
                    // the one a dateline-aware adaptive scorer charged
                    // for this hop.
                    let vc0 = dateline.next_class_arc(0, arc);
                    let chan = arc * vcs + vc0 as usize;
                    if queues[chan].len() < buffers {
                        sources[src].pop_front();
                        pending -= 1;
                        if vc0 > 0 {
                            dateline_promotions += 1;
                        }
                        queues[chan].push_back(Packet {
                            dst,
                            offered_cycle: offer_cycle(index),
                            hops: 0,
                            vc: vc0,
                        });
                        bump(&self.counts, chan, 1);
                        peak[chan] = peak[chan].max(queues[chan].len() as u32);
                        in_network += 1;
                        injected += 1;
                        class_injected[class] += 1;
                        activity += 1;
                    } else {
                        match self.config.policy {
                            ContentionPolicy::TailDrop => {
                                sources[src].pop_front();
                                pending -= 1;
                                injected += 1;
                                dropped_full += 1;
                                class_injected[class] += 1;
                                class_dropped[class] += 1;
                                activity += 1;
                            }
                            ContentionPolicy::Backpressure => {
                                // This source stalls; the others go on.
                                source_stall_cycles += 1;
                                break;
                            }
                        }
                    }
                }
            }

            // --- drain phase -----------------------------------------
            // Every link moves up to `wavelengths` packets off its VC
            // FIFO heads, one per class per round so no class hogs the
            // channels; a blocked head blocks only its own class.
            // Moves land in `staged` and join the target FIFO only
            // after the phase, so no packet rides two links in one
            // cycle; occupancy counts update live so adaptive routing
            // sees the queues as they shift. Both starting offsets —
            // which link drains first and which class within it —
            // rotate each cycle, so under contention every link gets
            // the same long-run first claim on downstream buffer
            // space (a fixed order starves high-index links).
            let link_start = if arcs == 0 { 0 } else { cycle as usize % arcs };
            let vc_start = cycle as usize % vcs;
            for step in 0..arcs {
                let arc = (link_start + step) % arcs;
                let arrive_at = self.g.arc_target(arc) as u64;
                let mut budget = wavelengths;
                vc_blocked.fill(false);
                'link: loop {
                    let mut progressed = false;
                    for offset in 0..vcs {
                        if budget == 0 {
                            break 'link;
                        }
                        let vc = (vc_start + offset) % vcs;
                        if vc_blocked[vc] {
                            continue;
                        }
                        let chan = arc * vcs + vc;
                        let Some(&head) = queues[chan].front() else {
                            vc_blocked[vc] = true;
                            continue;
                        };
                        let hops_after = head.hops + 1;
                        if head.dst == arrive_at {
                            queues[chan].pop_front();
                            bump(&self.counts, chan, -1);
                            in_network -= 1;
                            delivered += 1;
                            class_delivered[class_of(head.dst)] += 1;
                            delivered_per_link[arc] += 1;
                            delivered_hops += hops_after as u64;
                            max_hops = max_hops.max(hops_after);
                            // Total time since offer minus one cycle
                            // per hop = cycles spent waiting (source
                            // stall plus buffer queueing).
                            let wait = cycle + 1 - head.offered_cycle - hops_after as u64;
                            waits.push(wait);
                            if classified {
                                class_waits[class_of(head.dst)].push(wait);
                            }
                            activity += 1;
                            budget -= 1;
                            progressed = true;
                            continue;
                        }
                        if hops_after >= hop_limit {
                            queues[chan].pop_front();
                            bump(&self.counts, chan, -1);
                            in_network -= 1;
                            dropped_ttl += 1;
                            class_dropped[class_of(head.dst)] += 1;
                            activity += 1;
                            budget -= 1;
                            progressed = true;
                            continue;
                        }
                        let next_arc = router
                            .next_hop_on_vc(arrive_at, head.dst, head.vc)
                            .and_then(|next| self.arc_of(arrive_at, next));
                        let Some(next_arc) = next_arc else {
                            queues[chan].pop_front();
                            bump(&self.counts, chan, -1);
                            in_network -= 1;
                            dropped_unroutable += 1;
                            class_dropped[class_of(head.dst)] += 1;
                            activity += 1;
                            budget -= 1;
                            progressed = true;
                            continue;
                        };
                        let next_vc = dateline.next_class_arc(head.vc, next_arc);
                        let next_chan = next_arc * vcs + next_vc as usize;
                        // The one move the class order cannot rank — a
                        // top-class packet wrapping again — is never
                        // allowed to block (deep dateline buffers):
                        // that waiver is what makes the dependency
                        // graph acyclic outright, so `Backpressure`
                        // with `vcs ≥ 2` provably cannot reach the
                        // all-blocked state the deadlock detector
                        // looks for. Tail-drop never blocks, so it
                        // neither needs nor gets the valve: its full
                        // buffers keep dropping.
                        let has_room =
                            queues[next_chan].len() + (staged_len[next_chan] as usize) < buffers;
                        let relief = !has_room
                            && self.config.policy == ContentionPolicy::Backpressure
                            && dateline.needs_relief(head.vc, next_arc);
                        if relief {
                            dateline_relief += 1;
                        }
                        if has_room || relief {
                            let mut packet = queues[chan].pop_front().expect("head exists");
                            bump(&self.counts, chan, -1);
                            packet.hops = hops_after;
                            if next_vc > packet.vc {
                                dateline_promotions += 1;
                            }
                            packet.vc = next_vc;
                            staged_len[next_chan] += 1;
                            bump(&self.counts, next_chan, 1);
                            staged.push((next_chan, packet));
                            activity += 1;
                            budget -= 1;
                            progressed = true;
                        } else {
                            match self.config.policy {
                                ContentionPolicy::TailDrop => {
                                    queues[chan].pop_front();
                                    bump(&self.counts, chan, -1);
                                    in_network -= 1;
                                    dropped_full += 1;
                                    class_dropped[class_of(head.dst)] += 1;
                                    activity += 1;
                                    budget -= 1;
                                    progressed = true;
                                }
                                // Head-of-line block — this class only.
                                ContentionPolicy::Backpressure => vc_blocked[vc] = true,
                            }
                        }
                    }
                    if !progressed {
                        break;
                    }
                }
            }
            for (chan, packet) in staged.drain(..) {
                queues[chan].push_back(packet);
                peak[chan] = peak[chan].max(queues[chan].len() as u32);
            }
            staged_len.fill(0);

            cycle += 1;
            if activity == 0 && in_network > 0 {
                // Packets are buffered but nothing moved, injected or
                // dropped: every head waits on a full FIFO in a cycle
                // of full FIFOs. The queue state is static, so no
                // future cycle can differ — a backpressure deadlock.
                // (An idle network with activity 0 is just injection
                // pacing: no packet's credit has accrued yet.)
                deadlocked = true;
                break;
            }
        }

        let in_flight = in_network;
        waits.sort_unstable();
        let wait_mean = |waits: &[u64]| {
            if waits.is_empty() {
                0.0
            } else {
                waits.iter().sum::<u64>() as f64 / waits.len() as f64
            }
        };
        let wait_mean_cycles = wait_mean(&waits);

        let class_stats = hot_dst.map(|_| {
            let mut build = |class: usize| {
                class_waits[class].sort_unstable();
                let waits = &class_waits[class];
                ClassStats {
                    injected: class_injected[class],
                    delivered: class_delivered[class],
                    dropped: class_dropped[class],
                    wait_mean_cycles: wait_mean(waits),
                    wait_p50_cycles: percentile_u64(waits, 0.50),
                    wait_p99_cycles: percentile_u64(waits, 0.99),
                    wait_max_cycles: waits.last().copied().unwrap_or(0),
                }
            };
            ClassBreakdown {
                hot: build(1),
                background: build(0),
            }
        });

        // Collapse per-channel peaks into the two views the report
        // carries: deepest FIFO per link, deepest FIFO per class.
        let peak_occupancy: Vec<u32> = (0..arcs)
            .map(|arc| (0..vcs).map(|vc| peak[arc * vcs + vc]).max().unwrap_or(0))
            .collect();
        let vc_peak_occupancy: Vec<u32> = (0..vcs)
            .map(|vc| (0..arcs).map(|arc| peak[arc * vcs + vc]).max().unwrap_or(0))
            .collect();

        QueueingReport {
            router: router.name(),
            offered_per_cycle,
            cycles: cycle,
            injected,
            delivered,
            dropped_full,
            dropped_unroutable,
            dropped_ttl,
            in_flight,
            deadlocked,
            vcs,
            dateline_promotions,
            dateline_relief,
            source_stall_cycles,
            delivered_hops,
            max_hops,
            wait_mean_cycles,
            wait_p50_cycles: percentile_u64(&waits, 0.50),
            wait_p99_cycles: percentile_u64(&waits, 0.99),
            wait_max_cycles: waits.last().copied().unwrap_or(0),
            max_peak_occupancy: peak_occupancy.iter().copied().max().unwrap_or(0),
            peak_occupancy,
            vc_peak_occupancy,
            delivered_per_link,
            class_stats,
        }
    }

    /// Sweep offered load (packets per **node** per cycle) and measure
    /// delivered throughput at each point — the saturation curve of
    /// the fabric under this router.
    pub fn saturation_sweep(
        &self,
        router: &dyn Router,
        workload: &[(u64, u64)],
        loads_per_node: &[f64],
    ) -> SaturationSweep {
        let n = self.node_count() as f64;
        let points = loads_per_node
            .iter()
            .map(|&load| {
                let report = self.run(router, workload, load * n);
                SaturationPoint {
                    offered_per_node: load,
                    delivered_per_node: report.throughput_per_cycle() / n,
                    drop_rate: report.drop_rate(),
                    wait_p99_cycles: report.wait_p99_cycles,
                    deadlocked: report.deadlocked,
                }
            })
            .collect();
        SaturationSweep { points }
    }
}

/// One point of an offered-load sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaturationPoint {
    /// Offered load, packets per node per cycle.
    pub offered_per_node: f64,
    /// Delivered throughput, packets per node per cycle.
    pub delivered_per_node: f64,
    /// Fraction of injected packets dropped at this load.
    pub drop_rate: f64,
    /// 99th-percentile queueing delay at this load, cycles.
    pub wait_p99_cycles: u64,
    /// True iff this point's run wedged under backpressure.
    pub deadlocked: bool,
}

/// An offered-load sweep: the saturation curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SaturationSweep {
    /// One entry per offered load, in sweep order.
    pub points: Vec<SaturationPoint>,
}

impl SaturationSweep {
    /// Saturation-throughput estimate: the highest delivered
    /// throughput any offered load achieved (past saturation the curve
    /// plateaus or degrades, so the max is the knee).
    pub fn saturation_throughput_per_node(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.delivered_per_node)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otis_core::RoutingTable;

    /// The directed cycle C_n: one arc per node, fully deterministic.
    fn cycle(n: usize) -> Digraph {
        Digraph::from_fn(n, |u| [(u + 1) % n as u32])
    }

    fn config(buffers: usize, wavelengths: usize, policy: ContentionPolicy) -> QueueConfig {
        QueueConfig {
            buffers,
            wavelengths,
            policy,
            ..QueueConfig::default()
        }
    }

    #[test]
    fn single_packet_crosses_without_waiting() {
        let g = cycle(5);
        let router = RoutingTable::new(&g);
        let engine = QueueingEngine::new(g, QueueConfig::default());
        let report = engine.run(&router, &[(0, 3)], 1.0);
        assert_eq!(report.injected, 1);
        assert_eq!(report.delivered, 1);
        assert_eq!(report.dropped(), 0);
        assert_eq!(report.in_flight, 0);
        assert!(report.conserves_packets());
        assert_eq!(report.delivered_hops, 3);
        assert_eq!(report.max_hops, 3);
        // Uncontended: zero queueing delay, one cycle per hop.
        assert_eq!(report.wait_max_cycles, 0);
        assert_eq!(report.cycles, 3);
        assert!(!report.deadlocked);
        assert_eq!(report.vcs, 1);
        assert_eq!(report.dateline_promotions, 0);
        assert_eq!(report.source_stall_cycles, 0);
        // The final hop 2→3 is the third arc.
        assert_eq!(report.delivered_per_link, vec![0, 0, 1, 0, 0]);
    }

    #[test]
    fn wavelength_contention_serializes_a_shared_link() {
        // Three packets all need link 0→1 in the same cycle; one
        // wavelength drains one per cycle, so they wait 0, 1, 2 cycles.
        let g = cycle(4);
        let router = RoutingTable::new(&g);
        let engine = QueueingEngine::new(g, config(16, 1, ContentionPolicy::Backpressure));
        let report = engine.run(&router, &[(0, 1), (0, 1), (0, 1)], 3.0);
        assert_eq!(report.delivered, 3);
        assert!(report.conserves_packets());
        assert_eq!(report.wait_max_cycles, 2);
        assert_eq!(report.wait_p50_cycles, 1);
        assert_eq!(report.max_peak_occupancy, 3, "all three queued at once");
        // Two wavelengths halve the serialization.
        let g = cycle(4);
        let router = RoutingTable::new(&g);
        let engine = QueueingEngine::new(g, config(16, 2, ContentionPolicy::Backpressure));
        let report = engine.run(&router, &[(0, 1), (0, 1), (0, 1)], 3.0);
        assert_eq!(report.delivered, 3);
        assert_eq!(report.wait_max_cycles, 1);
    }

    #[test]
    fn tail_drop_discards_past_full_buffers() {
        // One buffer slot on the injection link: of three simultaneous
        // packets, the first queues, the other two tail-drop.
        let g = cycle(4);
        let router = RoutingTable::new(&g);
        let engine = QueueingEngine::new(g, config(1, 1, ContentionPolicy::TailDrop));
        let report = engine.run(&router, &[(0, 1), (0, 1), (0, 1)], 3.0);
        assert_eq!(report.delivered, 1);
        assert_eq!(report.dropped_full, 2);
        assert!(report.conserves_packets());
        assert_eq!(report.max_peak_occupancy, 1, "buffer never exceeds its cap");
    }

    #[test]
    fn backpressure_stalls_injection_instead_of_dropping() {
        let g = cycle(4);
        let router = RoutingTable::new(&g);
        let engine = QueueingEngine::new(g, config(1, 1, ContentionPolicy::Backpressure));
        let report = engine.run(&router, &[(0, 1), (0, 1), (0, 1)], 3.0);
        // Lossless: everything eventually delivers, the run just takes
        // longer than the tail-drop run.
        assert_eq!(report.delivered, 3);
        assert_eq!(report.dropped(), 0);
        assert!(report.conserves_packets());
        assert!(!report.deadlocked);
        assert!(
            report.source_stall_cycles > 0,
            "the single-slot buffer must have stalled the source"
        );
    }

    #[test]
    fn backpressure_ring_deadlock_is_detected_and_conserved() {
        // C_3 with single-slot buffers and every packet two hops from
        // home: all three buffers fill, each head needs the next full
        // buffer — a classic cyclic-dependency deadlock.
        let g = cycle(3);
        let router = RoutingTable::new(&g);
        let engine = QueueingEngine::new(g.clone(), config(1, 1, ContentionPolicy::Backpressure));
        let occupancy = engine.occupancy();
        let report = engine.run(&router, &[(0, 2), (1, 0), (2, 1)], 3.0);
        assert!(report.deadlocked, "{report:?}");
        assert_eq!(report.delivered, 0);
        assert_eq!(report.in_flight, 3);
        assert!(report.conserves_packets());
        // The occupancy view still shows the wedged buffers.
        assert_eq!(occupancy.queued(0, 1), 1);
        assert_eq!(occupancy.queued(1, 2), 1);
        assert_eq!(occupancy.queued(2, 0), 1);
        // The same scenario under tail-drop cannot wedge.
        let engine = QueueingEngine::new(g, config(1, 1, ContentionPolicy::TailDrop));
        let report = engine.run(&router, &[(0, 2), (1, 0), (2, 1)], 3.0);
        assert!(!report.deadlocked);
        assert!(report.conserves_packets());
        assert_eq!(report.in_flight, 0);
    }

    #[test]
    fn dateline_vcs_dissolve_the_ring_deadlock() {
        // The exact scenario the previous test proves wedges with one
        // channel: two dateline classes cut the dependency ring. The
        // packet wrapping 2→0 is promoted to class 1, so its wait is
        // on a FIFO no class-0 packet occupies — and the run drains.
        let g = cycle(3);
        let router = RoutingTable::new(&g);
        let engine = QueueingEngine::new(
            g,
            QueueConfig {
                vcs: 2,
                ..config(1, 1, ContentionPolicy::Backpressure)
            },
        );
        let report = engine.run(&router, &[(0, 2), (1, 0), (2, 1)], 3.0);
        assert!(!report.deadlocked, "{report:?}");
        assert_eq!(report.delivered, 3);
        assert_eq!(report.dropped(), 0);
        assert_eq!(report.in_flight, 0);
        assert!(report.conserves_packets());
        assert_eq!(report.vcs, 2);
        assert!(
            report.dateline_promotions >= 1,
            "the wrap hop must promote, got {report:?}"
        );
        // Both classes saw traffic: the wrap pushed packets upstairs.
        assert_eq!(report.vc_peak_occupancy.len(), 2);
        assert!(report.vc_peak_occupancy[0] >= 1);
        assert!(report.vc_peak_occupancy[1] >= 1);
    }

    #[test]
    fn per_source_queues_isolate_backpressure_stalls() {
        // Source 0 offers six packets into a single-slot buffer — it
        // will stall for cycles. Source 2's lone packet is offered
        // *last* in workload order; under the old shared injection
        // stream it would wait behind all of source 0's stalls, but
        // per-source queues inject it immediately. Classify on its
        // destination to read the two waits separately.
        let g = cycle(4);
        let router = RoutingTable::new(&g);
        let engine = QueueingEngine::new(g, config(1, 1, ContentionPolicy::Backpressure));
        let mut workload = vec![(0u64, 1u64); 6];
        workload.push((2, 3));
        let report = engine.run_classified(&router, &workload, 7.0, Some(3));
        assert!(report.conserves_packets());
        assert_eq!(report.delivered, 7);
        let stats = report.class_stats.as_ref().expect("classified run");
        assert_eq!(stats.hot.injected, 1);
        assert_eq!(stats.background.injected, 6);
        assert_eq!(
            stats.hot.wait_max_cycles, 0,
            "source 2 must not inherit source 0's stall: {stats:?}"
        );
        assert!(
            stats.background.wait_max_cycles >= 5,
            "source 0 serializes through its single-slot buffer: {stats:?}"
        );
        assert!(report.source_stall_cycles > 0);
    }

    #[test]
    fn classified_run_splits_the_counters_exactly() {
        let g = cycle(4);
        let router = RoutingTable::new(&g);
        let engine = QueueingEngine::new(g, config(4, 1, ContentionPolicy::TailDrop));
        let workload = [(0, 2), (1, 2), (3, 2), (1, 0), (2, 1), (3, 3)];
        let report = engine.run_classified(&router, &workload, 2.0, Some(2));
        assert!(report.conserves_packets());
        let stats = report.class_stats.as_ref().expect("classified run");
        assert_eq!(stats.hot.injected, 3);
        assert_eq!(stats.background.injected, 3);
        assert_eq!(
            stats.hot.injected + stats.background.injected,
            report.injected
        );
        assert_eq!(
            stats.hot.delivered + stats.background.delivered,
            report.delivered
        );
        assert_eq!(
            stats.hot.dropped + stats.background.dropped,
            report.dropped()
        );
        // The unclassified run reports no breakdown.
        let report = engine.run(&router, &workload, 2.0);
        assert!(report.class_stats.is_none());
    }

    #[test]
    fn unroutable_packets_drop_at_injection() {
        let g = Digraph::from_fn(3, |u| if u == 0 { vec![1] } else { vec![] });
        let router = RoutingTable::new(&g);
        let engine = QueueingEngine::new(g, QueueConfig::default());
        let report = engine.run(&router, &[(0, 1), (2, 0), (1, 1)], 3.0);
        assert_eq!(report.delivered, 2, "the real route and the self-pair");
        assert_eq!(report.dropped_unroutable, 1);
        assert!(report.conserves_packets());
    }

    #[test]
    fn ttl_bounds_a_looping_packet() {
        // A blind router that always forwards around C_4 while the
        // packet's destination id exists nowhere on its walk: the hop
        // budget must retire it (as dropped_ttl, conserving packets)
        // instead of simulating forever.
        struct Forward;
        impl Router for Forward {
            fn node_count(&self) -> u64 {
                4
            }
            fn name(&self) -> String {
                "forward".into()
            }
            fn next_hop(&self, current: u64, _dst: u64) -> Option<u64> {
                Some((current + 1) % 4)
            }
        }
        let engine = QueueingEngine::new(
            cycle(4),
            QueueConfig {
                hop_limit: Some(6),
                ..QueueConfig::default()
            },
        );
        let report = engine.run(&Forward, &[(1, 7)], 1.0);
        assert_eq!(report.dropped_ttl, 1);
        assert_eq!(report.delivered, 0);
        assert!(report.conserves_packets());
    }

    #[test]
    fn occupancy_resolves_individual_vc_classes() {
        // A 2-VC engine's occupancy view: per-class and per-link
        // reads agree, a fully drained run leaves every class of
        // every link empty, and off-fabric or out-of-range probes
        // read 0 instead of a neighboring counter.
        let g = cycle(3);
        let router = RoutingTable::new(&g);
        let engine = QueueingEngine::new(
            g,
            QueueConfig {
                vcs: 2,
                ..config(1, 1, ContentionPolicy::Backpressure)
            },
        );
        let occupancy = engine.occupancy();
        assert_eq!(occupancy.vcs(), 2);
        let report = engine.run(&router, &[(0, 2), (1, 0), (2, 1)], 3.0);
        assert!(!report.deadlocked);
        // Drained run: every class of every link is empty again.
        for arc in 0..3 {
            assert_eq!(occupancy.arc_occupancy(arc), 0);
            assert_eq!(occupancy.channel_occupancy(arc, 0), 0);
            assert_eq!(occupancy.channel_occupancy(arc, 1), 0);
        }
        assert_eq!(occupancy.queued(0, 1), 0);
        assert_eq!(occupancy.queued_vc(0, 1, 0), 0);
        assert_eq!(occupancy.queued_vc(9, 9, 0), 0, "unknown links are empty");
        assert_eq!(
            occupancy.queued_vc(0, 1, 7),
            0,
            "classes beyond the engine's vcs are empty, not a neighbor's counter"
        );
    }

    #[test]
    fn saturation_sweep_finds_the_cycle_service_rate() {
        // On C_8 under uniform-ish traffic with one wavelength, each
        // link serves at most 1 packet/cycle; delivered throughput
        // must plateau once offered load exceeds capacity.
        let g = cycle(8);
        let router = RoutingTable::new(&g);
        let engine = QueueingEngine::new(g, config(8, 1, ContentionPolicy::TailDrop));
        let workload: Vec<(u64, u64)> = (0..400).map(|i| (i % 8, (i + 3) % 8)).collect();
        let sweep = engine.saturation_sweep(&router, &workload, &[0.05, 0.1, 0.3, 0.6, 1.0]);
        assert_eq!(sweep.points.len(), 5);
        let saturation = sweep.saturation_throughput_per_node();
        assert!(saturation > 0.0);
        // Per-node delivery can never exceed the per-node service
        // capacity of 1/3 (every packet holds its links 3 cycles).
        assert!(saturation <= 1.0 / 3.0 + 1e-9, "saturation {saturation}");
        // Low offered loads deliver what they offer; the top of the
        // sweep cannot (drops or stretched runs).
        let first = &sweep.points[0];
        assert!(first.delivered_per_node >= first.offered_per_node * 0.8);
    }
}
