//! Packet-level simulation of a multi-hop OTIS interconnect.
//!
//! A processing node of `H(p,q,d)` that wants to reach a non-neighbor
//! must route in several hops; each hop is one physical pass through
//! the OTIS bench (transmitter → two lenslets → receiver). The
//! simulator moves packets hop by hop, chooses the transmitter
//! implementing each graph arc, traces its beam through
//! [`crate::geometry`], charges the [`crate::power`] budget, and
//! reports per-packet accounting.
//!
//! This is the "run the network" half of the reproduction: the
//! `network_simulation` example routes real traffic over the paper's
//! `Θ(√n)`-lens de Bruijn layout and the prior-art `O(n)`-lens II
//! layout and compares them on physics, not just lens counts.

use crate::geometry::{Bench, BenchParams};
use crate::power::{optical_budget, OpticalBudget, OpticalLinkParams};
use crate::HDigraph;
use otis_core::{DigraphFamily, Router};
use serde::{Deserialize, Serialize};

/// One hop of a delivered packet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HopRecord {
    /// Sending node.
    pub from: u64,
    /// Receiving node.
    pub to: u64,
    /// Which of the sender's `d` transmitters carried the hop.
    pub transceiver: u32,
    /// Beam path length through the bench, mm.
    pub path_length_mm: f64,
    /// Link budget of the hop.
    pub budget: OpticalBudget,
}

/// Accounting for one simulated packet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PacketReport {
    /// The hops taken, in order.
    pub hops: Vec<HopRecord>,
    /// End-to-end latency, ps (sum of hop latencies + per-hop
    /// store-and-forward overhead).
    pub latency_ps: f64,
    /// Total energy, pJ.
    pub energy_pj: f64,
}

impl PacketReport {
    /// Number of hops.
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// True iff every hop's link budget closed.
    pub fn delivered(&self) -> bool {
        self.hops.iter().all(|h| h.budget.closes())
    }
}

/// Error routing a packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The router proposed a next node that is not an out-neighbor.
    NotANeighbor { from: u64, proposed: u64 },
    /// The router reported no way forward: `dst` is unreachable from
    /// `from` (e.g. the packet hit a dead end in a faulted fabric).
    Unreachable { from: u64, dst: u64 },
    /// The hop limit was exceeded (routing loop).
    HopLimit { limit: usize },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::NotANeighbor { from, proposed } => {
                write!(
                    f,
                    "router proposed {proposed}, not an out-neighbor of {from}"
                )
            }
            SimError::Unreachable { from, dst } => {
                write!(f, "no route from {from} to {dst}")
            }
            SimError::HopLimit { limit } => write!(f, "hop limit {limit} exceeded"),
        }
    }
}

impl std::error::Error for SimError {}

/// The simulated interconnect: an `H(p,q,d)` node graph over a
/// geometric bench and a link-power model.
#[derive(Debug, Clone)]
pub struct OtisSimulator {
    h: HDigraph,
    bench: Bench,
    link_params: OpticalLinkParams,
    /// Store-and-forward overhead added per hop (deserialization,
    /// switching, reserialization), ps.
    pub hop_overhead_ps: f64,
}

impl OtisSimulator {
    /// Simulator over `h` with explicit bench and link parameters.
    pub fn new(h: HDigraph, bench_params: BenchParams, link_params: OpticalLinkParams) -> Self {
        let bench = Bench::new(*h.otis(), bench_params);
        OtisSimulator {
            h,
            bench,
            link_params,
            hop_overhead_ps: 200.0,
        }
    }

    /// Simulator with default physical parameters, bench scaled to
    /// the system's transverse extent (see [`Bench::scaled_params`]).
    pub fn with_defaults(h: HDigraph) -> Self {
        let params = Bench::scaled_params(h.otis());
        OtisSimulator::new(h, params, OpticalLinkParams::default())
    }

    /// The node digraph being simulated.
    pub fn h(&self) -> &HDigraph {
        &self.h
    }

    /// The geometric bench.
    pub fn bench(&self) -> &Bench {
        &self.bench
    }

    /// Full physical accounting of the beam realizing the arc carried
    /// by transceiver `t_index` (global transmitter index): beam path
    /// length and link budget. The batched traffic engine calls this
    /// once per transceiver up front instead of once per hop.
    pub fn link_budget(&self, t_index: u64) -> (f64, OpticalBudget) {
        let trace = self.bench.trace(self.h.otis().transmitter(t_index));
        let budget = optical_budget(&self.link_params, trace.path_length);
        (trace.path_length, budget)
    }

    /// Send one packet from `src` along the route chosen by `router`:
    /// given the current node and the destination, `router` names the
    /// next node (an out-neighbor), or `None` when no way forward
    /// exists. Returns the full accounting, or an error if the route
    /// dead-ends or the router misbehaves.
    pub fn send(
        &self,
        src: u64,
        dst: u64,
        mut router: impl FnMut(u64, u64) -> Option<u64>,
    ) -> Result<PacketReport, SimError> {
        let n = self.h.node_count();
        assert!(src < n && dst < n, "nodes out of range");
        let hop_limit = (n as usize).max(64);
        let mut hops = Vec::new();
        let mut current = src;
        while current != dst {
            if hops.len() >= hop_limit {
                return Err(SimError::HopLimit { limit: hop_limit });
            }
            let next = router(current, dst).ok_or(SimError::Unreachable { from: current, dst })?;
            // Which transceiver realizes the arc current → next?
            let transceiver = (0..self.h.degree())
                .find(|&k| self.h.out_neighbor(current, k) == next)
                .ok_or(SimError::NotANeighbor {
                    from: current,
                    proposed: next,
                })?;
            let t_index = current * self.h.degree() as u64 + transceiver as u64;
            let trace = self.bench.trace(self.h.otis().transmitter(t_index));
            debug_assert_eq!(
                self.h
                    .node_of_receiver(self.h.otis().receiver_index(trace.to)),
                next,
                "geometry disagrees with the node graph"
            );
            let budget = optical_budget(&self.link_params, trace.path_length);
            hops.push(HopRecord {
                from: current,
                to: next,
                transceiver,
                path_length_mm: trace.path_length,
                budget,
            });
            current = next;
        }
        let latency_ps: f64 = hops
            .iter()
            .map(|h| h.budget.latency_ps + self.hop_overhead_ps)
            .sum();
        let energy_pj: f64 = hops.iter().map(|h| h.budget.energy_pj).sum();
        Ok(PacketReport {
            hops,
            latency_ps,
            energy_pj,
        })
    }

    /// Send along the route chosen by any [`Router`] — the arithmetic
    /// tableless routers, a precomputed [`otis_core::RoutingTable`],
    /// or the fault-aware router from [`crate::faults`].
    pub fn send_via(
        &self,
        router: &dyn Router,
        src: u64,
        dst: u64,
    ) -> Result<PacketReport, SimError> {
        self.send(src, dst, |current, dst| router.next_hop(current, dst))
    }

    /// Send via BFS shortest paths, recomputed per call: the
    /// no-precomputation baseline (one reverse-BFS per packet). For
    /// batches, build an [`otis_core::RoutingTable`] once and use
    /// [`OtisSimulator::send_via`] — or better, the batched
    /// [`crate::traffic`] engine.
    pub fn send_shortest(&self, src: u64, dst: u64) -> Result<PacketReport, SimError> {
        let g = self.h.digraph();
        // Parents on some shortest path toward dst: BFS on the
        // reverse graph from dst gives next-hop-to-dst for every node.
        let rev = otis_digraph::ops::reverse(&g);
        let dist_to_dst = otis_digraph::bfs::distances(&rev, dst as u32);
        self.send(src, dst, move |current, _| {
            let here = dist_to_dst[current as usize];
            if here == otis_digraph::INFINITY {
                return None;
            }
            g.out_neighbors(current as u32)
                .iter()
                .find(|&&v| dist_to_dst[v as usize] == here - 1)
                .map(|&v| v as u64)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simulator() -> OtisSimulator {
        // H(4,8,2) ≅ B(2,4): 16 nodes, degree 2, diameter 4.
        OtisSimulator::with_defaults(HDigraph::new(4, 8, 2))
    }

    #[test]
    fn single_hop_to_neighbor() {
        let sim = simulator();
        let dst = sim.h().out_neighbor(3, 1);
        let report = sim.send_shortest(3, dst).unwrap();
        assert_eq!(report.hop_count(), 1);
        assert!(report.delivered());
        assert_eq!(report.hops[0].from, 3);
        assert_eq!(report.hops[0].to, dst);
    }

    #[test]
    fn zero_hop_self_delivery() {
        let sim = simulator();
        let report = sim.send_shortest(5, 5).unwrap();
        assert_eq!(report.hop_count(), 0);
        assert_eq!(report.latency_ps, 0.0);
        assert!(report.delivered());
    }

    #[test]
    fn all_pairs_deliver_within_diameter() {
        let sim = simulator();
        let g = sim.h().digraph();
        let n = sim.h().node_count();
        for src in 0..n {
            let dist = otis_digraph::bfs::distances(&g, src as u32);
            for dst in 0..n {
                let report = sim.send_shortest(src, dst).unwrap();
                assert_eq!(
                    report.hop_count() as u32,
                    dist[dst as usize],
                    "shortest routing must match BFS ({src} → {dst})"
                );
                assert!(report.hop_count() <= 4, "diameter of B(2,4) is 4");
                assert!(report.delivered());
            }
        }
    }

    #[test]
    fn latency_and_energy_scale_with_hops() {
        let sim = simulator();
        let one = sim.send_shortest(0, sim.h().out_neighbor(0, 1)).unwrap();
        // Find a pair at distance ≥ 3 for contrast.
        let g = sim.h().digraph();
        let dist = otis_digraph::bfs::distances(&g, 0);
        let far = dist.iter().position(|&d| d >= 3).expect("diameter 4 graph") as u64;
        let many = sim.send_shortest(0, far).unwrap();
        assert!(many.latency_ps > one.latency_ps);
        assert!(many.energy_pj > one.energy_pj);
        assert!(
            (many.energy_pj / many.hop_count() as f64 - one.energy_pj / one.hop_count() as f64)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn bad_router_caught() {
        let sim = simulator();
        // Router that always proposes node 5 (usually not a neighbor).
        let far = 9u64;
        let result = sim.send(far, 0, |_, _| Some(5));
        // Either it's rejected as a non-neighbor, or it happens to be
        // one and the packet loops to the hop limit — both are errors
        // unless 5 is genuinely on a path; assert the specific case:
        let neighbors = sim.h().out_neighbors(far);
        if neighbors.contains(&5) {
            assert!(matches!(result, Err(SimError::HopLimit { .. })));
        } else {
            assert_eq!(
                result,
                Err(SimError::NotANeighbor {
                    from: far,
                    proposed: 5
                })
            );
        }
    }

    #[test]
    fn send_via_table_router_matches_bfs() {
        let sim = simulator();
        let router = otis_core::RoutingTable::from_family(sim.h());
        let g = sim.h().digraph();
        for src in 0..sim.h().node_count() {
            let dist = otis_digraph::bfs::distances(&g, src as u32);
            for dst in 0..sim.h().node_count() {
                let report = sim.send_via(&router, src, dst).unwrap();
                assert_eq!(
                    report.hop_count() as u32,
                    dist[dst as usize],
                    "{src} → {dst}"
                );
                assert!(report.delivered());
            }
        }
    }

    #[test]
    fn dead_end_reports_unreachable() {
        let sim = simulator();
        let result = sim.send(3, 7, |_, _| None);
        assert_eq!(result, Err(SimError::Unreachable { from: 3, dst: 7 }));
    }

    #[test]
    fn geometry_consistency_debug_checked() {
        // send() debug-asserts that the traced beam lands on the node
        // the graph promises; run a bunch of sends to exercise it.
        let sim = simulator();
        for src in 0..sim.h().node_count() {
            for k in 0..sim.h().degree() {
                let dst = sim.h().out_neighbor(src, k);
                sim.send_shortest(src, dst).unwrap();
            }
        }
    }
}
