//! Optical / electrical link budgets.
//!
//! The paper's motivation rests on Feldman et al. [16] ("the
//! break-even line length where optical communication lines become
//! more effective than their electrical counterparts is less than
//! 1 cm") and Yayla et al. [33]. This module reproduces that
//! comparison with a transparent first-order model so the
//! `lens_scaling` bench and the `optical_design` example can report
//! energy and margin numbers alongside the lens counts.
//!
//! All constants are stated per-link and documented; nothing here
//! pretends to be device-exact — the *shape* (optics flat in length,
//! electrical growing with length, crossover below 1 cm) is what the
//! tests pin down.

use serde::{Deserialize, Serialize};

/// Optical link parameters (a VCSEL → lenslet ×2 → detector chain).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpticalLinkParams {
    /// Launched optical power, mW (low-threshold VCSEL class [15]).
    pub tx_power_mw: f64,
    /// Transmission of each lens surface (two lenses, four surfaces).
    pub lens_transmission: f64,
    /// Geometric coupling efficiency onto the detector.
    pub coupling_efficiency: f64,
    /// Receiver sensitivity at the design bitrate, mW (transimpedance
    /// receiver class [5]).
    pub rx_sensitivity_mw: f64,
    /// Laser + driver energy per bit, pJ.
    pub tx_energy_pj: f64,
    /// Receiver energy per bit, pJ.
    pub rx_energy_pj: f64,
    /// E/O + O/E conversion latency, ps.
    pub conversion_latency_ps: f64,
}

impl Default for OpticalLinkParams {
    fn default() -> Self {
        OpticalLinkParams {
            tx_power_mw: 1.0,
            lens_transmission: 0.96,
            coupling_efficiency: 0.8,
            rx_sensitivity_mw: 0.02,
            tx_energy_pj: 1.5,
            rx_energy_pj: 1.0,
            conversion_latency_ps: 150.0,
        }
    }
}

/// Electrical line parameters (on-board microstrip / on-chip wire
/// blend used for the break-even comparison).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ElectricalLinkParams {
    /// Driver + termination energy independent of length, pJ/bit.
    pub fixed_energy_pj: f64,
    /// Energy per millimetre of line, pJ/(bit·mm) (CV² charging).
    pub energy_per_mm_pj: f64,
    /// Propagation delay per millimetre, ps/mm (≈ c/2 in FR4 ≈ 6.7,
    /// plus repeater overhead folded in).
    pub delay_per_mm_ps: f64,
}

impl Default for ElectricalLinkParams {
    fn default() -> Self {
        ElectricalLinkParams {
            fixed_energy_pj: 0.4,
            energy_per_mm_pj: 0.25,
            delay_per_mm_ps: 9.0,
        }
    }
}

/// Budget outcome for one optical link through an OTIS bench.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpticalBudget {
    /// Power arriving at the detector, mW.
    pub received_power_mw: f64,
    /// Link margin in dB over receiver sensitivity (negative = dead
    /// link).
    pub margin_db: f64,
    /// Total energy per bit, pJ.
    pub energy_pj: f64,
    /// End-to-end latency (conversions + flight), ps.
    pub latency_ps: f64,
}

impl OpticalBudget {
    /// True iff the detector sees at least its sensitivity.
    pub fn closes(&self) -> bool {
        self.margin_db >= 0.0
    }
}

/// Evaluate an optical link of the given free-space path length (mm).
///
/// Loss model: four lens surfaces (`lens_transmission⁴`) times the
/// coupling efficiency; free space itself is lossless at these scales.
pub fn optical_budget(params: &OpticalLinkParams, path_length_mm: f64) -> OpticalBudget {
    let transmission = params.lens_transmission.powi(4) * params.coupling_efficiency;
    let received = params.tx_power_mw * transmission;
    let margin_db = 10.0 * (received / params.rx_sensitivity_mw).log10();
    const C_MM_PER_PS: f64 = 0.299_792_458;
    OpticalBudget {
        received_power_mw: received,
        margin_db,
        energy_pj: params.tx_energy_pj + params.rx_energy_pj,
        latency_ps: params.conversion_latency_ps + path_length_mm / C_MM_PER_PS,
    }
}

/// Energy per bit (pJ) of an electrical line of the given length (mm).
pub fn electrical_energy_pj(params: &ElectricalLinkParams, length_mm: f64) -> f64 {
    params.fixed_energy_pj + params.energy_per_mm_pj * length_mm
}

/// Latency (ps) of an electrical line of the given length (mm).
pub fn electrical_latency_ps(params: &ElectricalLinkParams, length_mm: f64) -> f64 {
    params.delay_per_mm_ps * length_mm
}

/// The break-even line length (mm) above which the optical link costs
/// less energy per bit than the electrical line. Solves
/// `fixed + slope·L = optical_energy` for `L`; `None` if optics never
/// wins (optical energy below the electrical fixed cost never
/// happens with sane parameters).
pub fn break_even_length_mm(
    optical: &OpticalLinkParams,
    electrical: &ElectricalLinkParams,
) -> Option<f64> {
    let optical_energy = optical.tx_energy_pj + optical.rx_energy_pj;
    let excess = optical_energy - electrical.fixed_energy_pj;
    (excess >= 0.0).then(|| excess / electrical.energy_per_mm_pj)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_link_closes_with_healthy_margin() {
        let budget = optical_budget(&OpticalLinkParams::default(), 38.0);
        assert!(budget.closes());
        assert!(
            budget.margin_db > 10.0,
            "margin {} dB too thin",
            budget.margin_db
        );
        assert!(budget.received_power_mw < 1.0, "lenses must lose something");
    }

    #[test]
    fn dead_link_detected() {
        let params = OpticalLinkParams {
            rx_sensitivity_mw: 5.0, // absurdly deaf receiver
            ..OpticalLinkParams::default()
        };
        assert!(!optical_budget(&params, 38.0).closes());
    }

    #[test]
    fn optical_energy_flat_in_length_electrical_grows() {
        let opt = OpticalLinkParams::default();
        let ele = ElectricalLinkParams::default();
        let short = optical_budget(&opt, 10.0);
        let long = optical_budget(&opt, 100.0);
        assert_eq!(
            short.energy_pj, long.energy_pj,
            "optical energy length-independent"
        );
        assert!(electrical_energy_pj(&ele, 100.0) > electrical_energy_pj(&ele, 10.0));
    }

    #[test]
    fn break_even_below_one_centimetre() {
        // Feldman et al. [16]: break-even < 1 cm = 10 mm.
        let break_even = break_even_length_mm(
            &OpticalLinkParams::default(),
            &ElectricalLinkParams::default(),
        )
        .expect("break-even exists");
        assert!(
            break_even < 10.0,
            "break-even {break_even} mm not below 1 cm"
        );
        assert!(
            break_even > 1.0,
            "break-even {break_even} mm implausibly small"
        );
        // And at the break-even point the two energies agree.
        let opt = optical_budget(&OpticalLinkParams::default(), break_even).energy_pj;
        let ele = electrical_energy_pj(&ElectricalLinkParams::default(), break_even);
        assert!((opt - ele).abs() < 1e-9);
    }

    #[test]
    fn latency_grows_with_path() {
        let opt = OpticalLinkParams::default();
        assert!(optical_budget(&opt, 100.0).latency_ps > optical_budget(&opt, 10.0).latency_ps);
        let ele = ElectricalLinkParams::default();
        assert!(electrical_latency_ps(&ele, 30.0) > electrical_latency_ps(&ele, 3.0));
        // At bench scale (~38 mm) optics is latency-competitive:
        // flight 127 ps + conversions 150 ps < electrical 342 ps.
        assert!(optical_budget(&opt, 38.0).latency_ps < electrical_latency_ps(&ele, 38.0));
    }
}
