//! Property tests pinning every `Router` implementation to BFS ground
//! truth, across the paper's whole family zoo (B, K, II, RRK) and on
//! faulted fabrics.
//!
//! The contract under test: for every pair `(src, dst)`, a router's
//! route exists iff BFS says `dst` is reachable, has exactly the BFS
//! distance, and walks real arcs of the digraph it routes over.

use otis_core::{
    BfsRouter, DeBruijn, DeBruijnRouter, DigraphFamily, ImaseItoh, Kautz, KautzRouter, Router,
    RoutingTable, Rrk,
};
use otis_digraph::{bfs, Digraph, INFINITY};
use otis_optics::faults::{surviving_digraph, FaultAwareRouter, FaultSet};
use otis_optics::HDigraph;
use proptest::prelude::*;

/// Check one router against BFS on `g` for a sampled pair, returning
/// an error message on disagreement (proptest-friendly).
fn check_pair(router: &dyn Router, g: &Digraph, src: u64, dst: u64) -> Result<(), String> {
    let expected = bfs::distances(g, src as u32)[dst as usize];
    match router.route(src, dst) {
        None => {
            if expected != INFINITY {
                return Err(format!(
                    "{}: no route {src}→{dst} but BFS distance is {expected}",
                    router.name()
                ));
            }
        }
        Some(path) => {
            if expected == INFINITY {
                return Err(format!("{}: routed unreachable {src}→{dst}", router.name()));
            }
            if path.len() as u32 - 1 != expected {
                return Err(format!(
                    "{}: route {src}→{dst} has {} hops, BFS says {expected}",
                    router.name(),
                    path.len() - 1
                ));
            }
            for pair in path.windows(2) {
                if !g.has_arc(pair[0] as u32, pair[1] as u32) {
                    return Err(format!(
                        "{}: hop {} → {} is not an arc",
                        router.name(),
                        pair[0],
                        pair[1]
                    ));
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arithmetic and table routers agree with BFS on random B(d,D).
    #[test]
    fn debruijn_routers_match_bfs(d in 2u32..5, dim in 1u32..5, seed in any::<u64>()) {
        let b = DeBruijn::new(d, dim);
        let g = b.digraph();
        let n = b.node_count();
        let arithmetic = DeBruijnRouter::new(b);
        let table = RoutingTable::new(&g);
        let src = seed % n;
        let dst = (seed >> 17) % n;
        prop_assert_eq!(check_pair(&arithmetic, &g, src, dst), Ok(()));
        prop_assert_eq!(check_pair(&table, &g, src, dst), Ok(()));
        prop_assert_eq!(arithmetic.distance(src, dst), table.distance(src, dst));
    }

    /// Arithmetic and table routers agree with BFS on random K(d,D).
    #[test]
    fn kautz_routers_match_bfs(d in 2u32..4, dim in 1u32..4, seed in any::<u64>()) {
        let k = Kautz::new(d, dim);
        let g = k.digraph();
        let n = k.node_count();
        let arithmetic = KautzRouter::new(k);
        let table = RoutingTable::new(&g);
        let src = seed % n;
        let dst = (seed >> 17) % n;
        prop_assert_eq!(check_pair(&arithmetic, &g, src, dst), Ok(()));
        prop_assert_eq!(check_pair(&table, &g, src, dst), Ok(()));
        prop_assert_eq!(arithmetic.distance(src, dst), table.distance(src, dst));
    }

    /// The table router handles II/RRK at *generic* sizes (where no
    /// arithmetic router exists), matching BFS exactly.
    #[test]
    fn table_router_matches_bfs_on_ii_and_rrk(n in 2u64..120, d in 2u32..4, seed in any::<u64>()) {
        let src = seed % n;
        let dst = (seed >> 17) % n;
        let ii = ImaseItoh::new(d, n).digraph();
        prop_assert_eq!(check_pair(&RoutingTable::new(&ii), &ii, src, dst), Ok(()));
        let rrk = Rrk::new(d, n).digraph();
        prop_assert_eq!(check_pair(&RoutingTable::new(&rrk), &rrk, src, dst), Ok(()));
    }

    /// The per-packet BFS baseline is itself correct (it had better
    /// be, it is the ground-truth-shaped competitor).
    #[test]
    fn bfs_router_matches_bfs(dim in 2u32..5, seed in any::<u64>()) {
        let b = DeBruijn::new(2, dim);
        let g = b.digraph();
        let n = b.node_count();
        let baseline = BfsRouter::new(&g);
        prop_assert_eq!(check_pair(&baseline, &g, seed % n, (seed >> 17) % n), Ok(()));
    }

    /// Fault-aware routing on a degraded fabric: whenever a path
    /// survives, the router delivers on a shortest surviving route;
    /// when none survives, it reports unreachable.
    #[test]
    fn fault_aware_router_delivers_iff_path_survives(
        dead in proptest::collection::vec(0u64..128, 0..=10),
        lens in 0u64..8,
        seed in any::<u64>(),
    ) {
        // H(8,16,2) ≅ B(2,6): 64 nodes, 128 beams, 8 first-array lenses.
        let h = HDigraph::new(8, 16, 2);
        let faults = FaultSet {
            dead_transmitters: dead,
            dead_lens1: vec![lens],
            ..FaultSet::none()
        };
        let survivors = surviving_digraph(&h, &faults);
        let router = FaultAwareRouter::new(&h, faults);
        let n = h.node_count();
        let src = seed % n;
        let dst = (seed >> 17) % n;
        prop_assert_eq!(check_pair(&router, &survivors, src, dst), Ok(()));
        // And the router never uses a dead beam: already enforced by
        // check_pair walking `survivors`' arcs.
    }
}

/// Exhaustive (non-property) agreement sweep on one instance of every
/// family, so a plain `cargo test` pins the full matrix at least once.
#[test]
fn all_routers_agree_exhaustively_on_small_instances() {
    let b = DeBruijn::new(2, 4);
    let g = b.digraph();
    let routers: Vec<Box<dyn Router>> = vec![
        Box::new(DeBruijnRouter::new(b)),
        Box::new(RoutingTable::new(&g)),
        Box::new(BfsRouter::new(&g)),
    ];
    for router in &routers {
        for src in 0..16 {
            for dst in 0..16 {
                check_pair(router.as_ref(), &g, src, dst).unwrap();
            }
        }
    }

    let k = Kautz::new(2, 3);
    let kg = k.digraph();
    let kautz_routers: Vec<Box<dyn Router>> = vec![
        Box::new(KautzRouter::new(k)),
        Box::new(RoutingTable::new(&kg)),
    ];
    for router in &kautz_routers {
        for src in 0..kg.node_count() as u64 {
            for dst in 0..kg.node_count() as u64 {
                check_pair(router.as_ref(), &kg, src, dst).unwrap();
            }
        }
    }
}

/// A lens failure that disconnects whole groups: the fault-aware
/// router must refuse exactly the dead pairs and still deliver the
/// rest.
#[test]
fn fault_aware_router_on_disconnected_fabric() {
    let h = HDigraph::new(16, 32, 2);
    // First-array lens 3 kills all out-arcs of group 3's nodes.
    let faults = FaultSet {
        dead_lens1: vec![3],
        ..FaultSet::none()
    };
    let survivors = surviving_digraph(&h, &faults);
    let router = FaultAwareRouter::new(&h, faults);
    let mut delivered = 0u32;
    let mut refused = 0u32;
    for src in (0..h.node_count()).step_by(3) {
        let dist = bfs::distances(&survivors, src as u32);
        for dst in (0..h.node_count()).step_by(7) {
            check_pair(&router, &survivors, src, dst).unwrap();
            if dist[dst as usize] == INFINITY {
                refused += 1;
            } else {
                delivered += 1;
            }
        }
    }
    assert!(delivered > 0, "most pairs still deliver");
    assert!(refused > 0, "a dead lens strands some pairs");
}
