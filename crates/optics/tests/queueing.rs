//! Integration tests of the queueing engine: packet conservation
//! pinned as a property across the paper's whole family zoo (B, K,
//! II, RRK), with and without hardware faults — and the adaptive-
//! routing acceptance result on hotspot traffic past saturation.

use otis_core::{
    AdaptiveRouter, DeBruijn, DeBruijnRouter, DigraphFamily, ImaseItoh, Kautz, Router,
    RoutingTable, Rrk,
};
use otis_digraph::Digraph;
use otis_optics::faults::{surviving_digraph, FaultAwareRouter, FaultSet};
use otis_optics::traffic::{generate_workload, TrafficPattern};
use otis_optics::{ContentionPolicy, HDigraph, QueueConfig, QueueingEngine};
use proptest::prelude::*;

/// Run a workload through the queueing engine and assert the core
/// invariants every configuration must uphold: packet conservation
/// (injected = delivered + dropped + in-flight at horizon), buffer
/// caps respected, and wait-percentile ordering.
fn check_conservation(
    g: Digraph,
    router: &dyn Router,
    workload: &[(u64, u64)],
    config: QueueConfig,
    offered_per_cycle: f64,
) -> Result<(), String> {
    let engine = QueueingEngine::new(g, config);
    let report = engine.run(router, workload, offered_per_cycle);
    prop_assert!(
        report.conserves_packets(),
        "injected {} != delivered {} + dropped {} + in_flight {} ({})",
        report.injected,
        report.delivered,
        report.dropped(),
        report.in_flight,
        report.router,
    );
    // The horizon was generous and injection finite, so everything
    // offered was injected unless the run wedged or timed out.
    if !report.deadlocked && report.cycles < config.max_cycles {
        prop_assert_eq!(report.injected, workload.len());
        prop_assert_eq!(report.in_flight, 0);
    }
    prop_assert!(report.max_peak_occupancy as usize <= config.buffers);
    prop_assert!(report.wait_p50_cycles <= report.wait_p99_cycles);
    prop_assert!(report.wait_p99_cycles <= report.wait_max_cycles);
    Ok(())
}

/// A small config space exercised by the property tests.
fn config_from(buffers: usize, wavelengths: usize, tail_drop: bool) -> QueueConfig {
    QueueConfig {
        buffers,
        wavelengths,
        policy: if tail_drop {
            ContentionPolicy::TailDrop
        } else {
            ContentionPolicy::Backpressure
        },
        hop_limit: None,
        max_cycles: 100_000,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Conservation on de Bruijn fabrics, oblivious and adaptive.
    #[test]
    fn conservation_on_debruijn(
        dim in 3u32..6,
        buffers in 1usize..8,
        wavelengths in 1usize..3,
        tail_drop in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let b = DeBruijn::new(2, dim);
        let n = b.node_count();
        let workload = generate_workload(TrafficPattern::Uniform, n, 2, 300, seed);
        let config = config_from(buffers, wavelengths, tail_drop);
        let router = DeBruijnRouter::new(b);
        check_conservation(b.digraph(), &router, &workload, config, 0.4 * n as f64)?;
        // Adaptive on the same fabric: the engine must conserve even
        // when the router reacts to the queues mid-flight.
        let engine = QueueingEngine::from_family(&b, config);
        let adaptive = AdaptiveRouter::new(DeBruijnRouter::new(b), engine.occupancy());
        let report = engine.run(&adaptive, &workload, 0.4 * n as f64);
        prop_assert!(report.conserves_packets(), "{report:?}");
    }

    /// Conservation on Kautz fabrics.
    #[test]
    fn conservation_on_kautz(
        dim in 2u32..5,
        buffers in 1usize..8,
        tail_drop in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let k = Kautz::new(2, dim);
        let n = k.node_count();
        let workload = generate_workload(TrafficPattern::Uniform, n, 2, 300, seed);
        let router = RoutingTable::from_family(&k);
        check_conservation(
            k.digraph(),
            &router,
            &workload,
            config_from(buffers, 1, tail_drop),
            0.3 * n as f64,
        )?;
    }

    /// Conservation on II and RRK fabrics at generic (non-power) sizes.
    #[test]
    fn conservation_on_ii_and_rrk(
        n in 10u64..80,
        buffers in 1usize..8,
        tail_drop in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let workload = generate_workload(TrafficPattern::Uniform, n, 2, 200, seed);
        let ii = ImaseItoh::new(2, n);
        check_conservation(
            ii.digraph(),
            &RoutingTable::from_family(&ii),
            &workload,
            config_from(buffers, 1, tail_drop),
            0.3 * n as f64,
        )?;
        let rrk = Rrk::new(2, n);
        check_conservation(
            rrk.digraph(),
            &RoutingTable::from_family(&rrk),
            &workload,
            config_from(buffers, 1, tail_drop),
            0.3 * n as f64,
        )?;
    }

    /// Conservation on a *faulted* fabric: the engine simulates the
    /// surviving digraph, the fault-aware router routes over it, and
    /// adaptivity composes on top — packets must still balance, with
    /// pairs stranded by dead hardware accounted as unroutable drops.
    #[test]
    fn conservation_with_faults(
        dead in proptest::collection::vec(0u64..128, 0..=8),
        buffers in 1usize..8,
        tail_drop in any::<bool>(),
        seed in any::<u64>(),
    ) {
        // H(8,16,2) ≅ B(2,6): 64 nodes, 128 beams.
        let h = HDigraph::new(8, 16, 2);
        let faults = FaultSet {
            dead_transmitters: dead,
            ..FaultSet::none()
        };
        let survivors = surviving_digraph(&h, &faults);
        let router = FaultAwareRouter::new(&h, faults.clone());
        let n = h.node_count();
        let workload = generate_workload(TrafficPattern::Uniform, n, 2, 300, seed);
        let config = config_from(buffers, 1, tail_drop);
        check_conservation(survivors.clone(), &router, &workload, config, 0.3 * n as f64)?;
        // Adaptive over the fault-aware router: candidates come from
        // the surviving table, so no packet is ever offered a dead
        // beam; conservation must hold all the same.
        let engine = QueueingEngine::new(survivors, config);
        let adaptive = FaultAwareRouter::new(&h, faults).adaptive(engine.occupancy());
        let report = engine.run(&adaptive, &workload, 0.3 * n as f64);
        prop_assert!(report.conserves_packets(), "{report:?}");
    }
}

/// The tentpole acceptance result: on hotspot traffic at an offered
/// load far past the oblivious saturation point (~0.03 packets per
/// node per cycle here), contention-aware adaptive routing delivers
/// strictly more packets per cycle *and* a strictly lower p99
/// queueing delay than oblivious shortest-path routing. Oblivious
/// routing tree-saturates: the hot node's shortest-path in-tree backs
/// up under backpressure and head-of-line blocking strangles the 75%
/// of traffic that never wanted the hot node at all.
#[test]
fn adaptive_beats_oblivious_on_saturated_hotspot() {
    let b = DeBruijn::new(2, 8);
    let n = b.node_count(); // 256
    let workload = generate_workload(TrafficPattern::Hotspot, n, 2, 100_000, 0x0715);
    let config = QueueConfig {
        buffers: 32,
        wavelengths: 1,
        policy: ContentionPolicy::Backpressure,
        hop_limit: None,
        // Fixed measurement window: throughput = delivered packets
        // per cycle over the same horizon for both routers.
        max_cycles: 1000,
    };
    let offered = 0.3 * n as f64;

    let engine = QueueingEngine::from_family(&b, config);
    let oblivious = DeBruijnRouter::new(b);
    let oblivious_report = engine.run(&oblivious, &workload, offered);

    let engine = QueueingEngine::from_family(&b, config);
    let adaptive = AdaptiveRouter::new(DeBruijnRouter::new(b), engine.occupancy());
    let adaptive_report = engine.run(&adaptive, &workload, offered);

    assert!(oblivious_report.conserves_packets());
    assert!(adaptive_report.conserves_packets());
    assert!(
        adaptive_report.throughput_per_cycle() > oblivious_report.throughput_per_cycle(),
        "adaptive {:.2} pkt/cycle must beat oblivious {:.2}",
        adaptive_report.throughput_per_cycle(),
        oblivious_report.throughput_per_cycle()
    );
    assert!(
        adaptive_report.wait_p99_cycles < oblivious_report.wait_p99_cycles,
        "adaptive p99 {} cycles must undercut oblivious {}",
        adaptive_report.wait_p99_cycles,
        oblivious_report.wait_p99_cycles
    );
    // The margin is not marginal: tree saturation costs oblivious
    // routing most of its capacity.
    assert!(
        adaptive_report.throughput_per_cycle() > 1.5 * oblivious_report.throughput_per_cycle(),
        "expected a decisive win, got {:.2} vs {:.2}",
        adaptive_report.throughput_per_cycle(),
        oblivious_report.throughput_per_cycle()
    );
}

/// The saturation sweep brackets the knee: throughput climbs with
/// offered load, then plateaus once the hot tree saturates.
#[test]
fn hotspot_sweep_saturates() {
    let b = DeBruijn::new(2, 6);
    let n = b.node_count(); // 64
    let workload = generate_workload(TrafficPattern::Hotspot, n, 2, 50_000, 9);
    let config = QueueConfig {
        buffers: 16,
        wavelengths: 1,
        policy: ContentionPolicy::TailDrop,
        hop_limit: None,
        max_cycles: 800,
    };
    let engine = QueueingEngine::from_family(&b, config);
    let router = RoutingTable::from_family(&b);
    let sweep = engine.saturation_sweep(&router, &workload, &[0.01, 0.05, 0.2, 0.5, 1.0]);
    let saturation = sweep.saturation_throughput_per_node();
    assert!(saturation > 0.0);
    // Low load delivers what it offers...
    let first = &sweep.points[0];
    assert!(first.delivered_per_node >= first.offered_per_node * 0.9);
    assert!(
        first.wait_p99_cycles <= 2,
        "an uncongested fabric sees at most stray collisions, got p99 {}",
        first.wait_p99_cycles
    );
    // ...while the top of the sweep cannot (hot-node in-capacity is 2
    // packets/cycle total), so delivery saturates well below offer.
    let last = sweep.points.last().unwrap();
    assert!(last.delivered_per_node < last.offered_per_node / 2.0);
    assert!(last.drop_rate > 0.0, "past saturation, tail-drop must drop");
    assert!(
        last.wait_p99_cycles > 0,
        "past saturation, packets must queue"
    );
}

/// Adaptive routing composed through `FaultAwareRouter`: on a degraded
/// fabric every adaptive choice must still ride surviving beams only,
/// so no packet is ever dropped as unroutable mid-flight when the
/// surviving digraph is strongly connected.
#[test]
fn adaptive_on_faulted_fabric_uses_only_surviving_beams() {
    let h = HDigraph::new(16, 32, 2); // ≅ B(2,8)
    let faults = FaultSet {
        dead_transmitters: vec![3, 200, 401],
        ..FaultSet::none()
    };
    let survivors = surviving_digraph(&h, &faults);
    assert!(otis_digraph::connectivity::is_strongly_connected(
        &survivors
    ));
    let n = h.node_count();
    let workload = generate_workload(TrafficPattern::Uniform, n, 2, 5_000, 21);
    let config = QueueConfig {
        buffers: 8,
        wavelengths: 1,
        policy: ContentionPolicy::TailDrop,
        hop_limit: None,
        max_cycles: 100_000,
    };
    let engine = QueueingEngine::new(survivors, config);
    let adaptive = FaultAwareRouter::new(&h, faults).adaptive(engine.occupancy());
    let report = engine.run(&adaptive, &workload, 0.2 * n as f64);
    assert!(report.conserves_packets());
    assert_eq!(
        report.dropped_unroutable, 0,
        "a strongly connected survivor digraph routes every pair"
    );
    assert!(report.delivered > 0);
}
