//! Integration tests of the queueing engine: packet conservation
//! pinned as a property across the paper's whole family zoo (B, K,
//! II, RRK), with and without hardware faults and virtual channels —
//! the adaptive-routing acceptance result on hotspot traffic past
//! saturation — and the deadlock-freedom acceptance result: the
//! saturating backpressure run that wedges with `vcs = 1` completes
//! lossless with `vcs = 2` dateline channels.

use otis_core::{
    AdaptiveRouter, DeBruijn, DeBruijnRouter, DigraphFamily, ImaseItoh, Kautz, Router,
    RoutingTable, Rrk,
};
use otis_digraph::Digraph;
use otis_optics::faults::{surviving_digraph, FaultAwareRouter, FaultSet};
use otis_optics::traffic::{
    generate_multicast_workload, generate_workload, ReferenceEngine, TrafficPattern,
};
use otis_optics::{ContentionPolicy, HDigraph, QueueConfig, QueueingEngine, WorkloadSource};
use proptest::prelude::*;

/// Run a workload through the queueing engine and assert the core
/// invariants every configuration must uphold: packet conservation
/// (injected = delivered + dropped + in-flight at horizon, across all
/// VC classes and per-source injection queues), buffer caps respected
/// outside dateline relief, and wait-percentile ordering.
fn check_conservation(
    g: Digraph,
    router: &dyn Router,
    workload: &[(u64, u64)],
    config: QueueConfig,
    offered_per_cycle: f64,
) -> Result<(), String> {
    let engine = QueueingEngine::new(g, config);
    let report = engine.run(router, workload, offered_per_cycle);
    prop_assert!(
        report.conserves_packets(),
        "injected {} != delivered {} + dropped {} + in_flight {} ({})",
        report.injected,
        report.delivered,
        report.dropped(),
        report.in_flight,
        report.router,
    );
    // The horizon was generous and injection finite, so everything
    // offered was injected unless the run wedged or timed out —
    // including the packets parked in per-source queues.
    if !report.deadlocked && report.cycles < config.max_cycles {
        prop_assert_eq!(report.injected, workload.len());
        prop_assert_eq!(report.in_flight, 0);
    }
    // Buffer caps hold everywhere the dateline escape valve did not
    // engage; with relief, only wrap channels' top class may exceed.
    if report.dateline_relief == 0 {
        prop_assert!(report.max_peak_occupancy as usize <= config.buffers);
    }
    for (vc, &peak) in report.vc_peak_occupancy.iter().enumerate() {
        if vc + 1 < config.vcs {
            prop_assert!(
                peak as usize <= config.buffers,
                "class {vc} of {} exceeded its cap: {peak} > {}",
                config.vcs,
                config.buffers
            );
        }
    }
    prop_assert!(report.wait_p50_cycles <= report.wait_p99_cycles);
    prop_assert!(report.wait_p99_cycles <= report.wait_max_cycles);
    if config.vcs == 1 {
        prop_assert_eq!(report.dateline_promotions, 0);
        prop_assert_eq!(report.dateline_relief, 0);
    }
    Ok(())
}

/// A small config space exercised by the property tests.
fn config_from(buffers: usize, wavelengths: usize, vcs: usize, tail_drop: bool) -> QueueConfig {
    QueueConfig {
        buffers,
        wavelengths,
        vcs,
        policy: if tail_drop {
            ContentionPolicy::TailDrop
        } else {
            ContentionPolicy::Backpressure
        },
        hop_limit: None,
        drain_threads: 0,
        max_cycles: 100_000,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Conservation on de Bruijn fabrics, oblivious and adaptive,
    /// across virtual-channel counts.
    #[test]
    fn conservation_on_debruijn(
        dim in 3u32..6,
        buffers in 1usize..8,
        wavelengths in 1usize..3,
        vcs in 1usize..4,
        tail_drop in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let b = DeBruijn::new(2, dim);
        let n = b.node_count();
        let workload = generate_workload(TrafficPattern::Uniform, n, 2, 300, seed);
        let config = config_from(buffers, wavelengths, vcs, tail_drop);
        let router = DeBruijnRouter::new(b);
        check_conservation(b.digraph(), &router, &workload, config, 0.4 * n as f64)?;
        // Adaptive on the same fabric, scoring per VC class: the
        // engine must conserve even when the router reacts to the
        // queues mid-flight.
        let engine = QueueingEngine::from_family(&b, config);
        let adaptive = AdaptiveRouter::new(DeBruijnRouter::new(b), engine.occupancy())
            .with_dateline(engine.dateline());
        let report = engine.run(&adaptive, &workload, 0.4 * n as f64);
        prop_assert!(report.conserves_packets(), "{report:?}");
    }

    /// Conservation on Kautz fabrics.
    #[test]
    fn conservation_on_kautz(
        dim in 2u32..5,
        buffers in 1usize..8,
        vcs in 1usize..3,
        tail_drop in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let k = Kautz::new(2, dim);
        let n = k.node_count();
        let workload = generate_workload(TrafficPattern::Uniform, n, 2, 300, seed);
        let router = RoutingTable::from_family(&k);
        check_conservation(
            k.digraph(),
            &router,
            &workload,
            config_from(buffers, 1, vcs, tail_drop),
            0.3 * n as f64,
        )?;
    }

    /// Conservation on II and RRK fabrics at generic (non-power) sizes.
    #[test]
    fn conservation_on_ii_and_rrk(
        n in 10u64..80,
        buffers in 1usize..8,
        tail_drop in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let workload = generate_workload(TrafficPattern::Uniform, n, 2, 200, seed);
        let ii = ImaseItoh::new(2, n);
        check_conservation(
            ii.digraph(),
            &RoutingTable::from_family(&ii),
            &workload,
            config_from(buffers, 1, 2, tail_drop),
            0.3 * n as f64,
        )?;
        let rrk = Rrk::new(2, n);
        check_conservation(
            rrk.digraph(),
            &RoutingTable::from_family(&rrk),
            &workload,
            config_from(buffers, 1, 1, tail_drop),
            0.3 * n as f64,
        )?;
    }

    /// Conservation on a *faulted* fabric: the engine simulates the
    /// surviving digraph, the fault-aware router routes over it, and
    /// adaptivity composes on top — packets must still balance, with
    /// pairs stranded by dead hardware accounted as unroutable drops.
    #[test]
    fn conservation_with_faults(
        dead in proptest::collection::vec(0u64..128, 0..=8),
        buffers in 1usize..8,
        vcs in 1usize..3,
        tail_drop in any::<bool>(),
        seed in any::<u64>(),
    ) {
        // H(8,16,2) ≅ B(2,6): 64 nodes, 128 beams.
        let h = HDigraph::new(8, 16, 2);
        let faults = FaultSet {
            dead_transmitters: dead,
            ..FaultSet::none()
        };
        let survivors = surviving_digraph(&h, &faults);
        let router = FaultAwareRouter::new(&h, faults.clone());
        let n = h.node_count();
        let workload = generate_workload(TrafficPattern::Uniform, n, 2, 300, seed);
        let config = config_from(buffers, 1, vcs, tail_drop);
        check_conservation(survivors.clone(), &router, &workload, config, 0.3 * n as f64)?;
        // Adaptive over the fault-aware router: candidates come from
        // the surviving table, so no packet is ever offered a dead
        // beam; conservation must hold all the same.
        let engine = QueueingEngine::new(survivors, config);
        let adaptive = FaultAwareRouter::new(&h, faults)
            .adaptive(engine.occupancy())
            .with_dateline(engine.dateline());
        let report = engine.run(&adaptive, &workload, 0.3 * n as f64);
        prop_assert!(report.conserves_packets(), "{report:?}");
    }

    /// The deadlock-freedom property the dateline channels exist for:
    /// backpressure runs with `vcs ≥ 2` never report deadlock — on
    /// de Bruijn, Kautz, and pure-ring fabrics, at saturating offered
    /// load, with tight buffers, oblivious or adaptive. (The same
    /// fabrics at `vcs = 1` wedge routinely; see the acceptance test
    /// below.) Packet conservation must hold across all VC classes
    /// and per-source queues throughout.
    #[test]
    fn backpressure_with_vcs_never_deadlocks(
        dim in 3u32..7,
        buffers in 1usize..5,
        vcs in 2usize..4,
        adaptive in any::<bool>(),
        hotspot in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let b = DeBruijn::new(2, dim);
        let n = b.node_count();
        let pattern = if hotspot { TrafficPattern::Hotspot } else { TrafficPattern::Uniform };
        let workload = generate_workload(pattern, n, 2, 500, seed);
        let config = QueueConfig {
            buffers,
            wavelengths: 1,
            vcs,
            policy: ContentionPolicy::Backpressure,
            hop_limit: None,
            drain_threads: 0,
            max_cycles: 1_000_000,
        };
        let engine = QueueingEngine::from_family(&b, config);
        let report = if adaptive {
            let router = AdaptiveRouter::new(DeBruijnRouter::new(b), engine.occupancy())
                .with_dateline(engine.dateline());
            engine.run(&router, &workload, n as f64) // 1 packet/node/cycle: saturating
        } else {
            engine.run(&DeBruijnRouter::new(b), &workload, n as f64)
        };
        prop_assert!(!report.deadlocked, "{report:?}");
        prop_assert!(report.conserves_packets(), "{report:?}");
        // Lossless and finite: everything offered was delivered.
        prop_assert_eq!(report.delivered, workload.len());
        prop_assert_eq!(report.in_flight, 0);
        prop_assert_eq!(report.dropped(), 0);

        // Kautz at a comparable size, same saturation.
        let k = Kautz::new(2, dim.saturating_sub(1).max(2));
        let kn = k.node_count();
        let workload = generate_workload(TrafficPattern::Uniform, kn, 2, 400, seed);
        let engine = QueueingEngine::from_family(&k, config);
        let report = engine.run(&RoutingTable::from_family(&k), &workload, kn as f64);
        prop_assert!(!report.deadlocked, "{report:?}");
        prop_assert!(report.conserves_packets());
        prop_assert_eq!(report.delivered, workload.len());

        // The pure ring C_n — the canonical dateline case: routes
        // wrap at most once, so 2 classes never even need the
        // escape valve.
        let ring_n = 3 + (seed % 13) as usize;
        let ring = Digraph::from_fn(ring_n, |u| [(u + 1) % ring_n as u32]);
        let router = RoutingTable::new(&ring);
        let workload: Vec<(u64, u64)> = (0..200)
            .map(|i| {
                let src = i as u64 % ring_n as u64;
                (src, (src + 1 + (i as u64 % (ring_n as u64 - 1))) % ring_n as u64)
            })
            .collect();
        let engine = QueueingEngine::new(ring, config);
        let report = engine.run(&router, &workload, ring_n as f64);
        prop_assert!(!report.deadlocked, "{report:?}");
        prop_assert!(report.conserves_packets());
        prop_assert_eq!(report.delivered, workload.len());
        prop_assert_eq!(report.dateline_relief, 0, "ring routes wrap once at most");
    }
}

/// The tentpole acceptance result for PR 3: a saturating backpressure
/// run on B(2,8) hotspot traffic that *deadlocks* with a single
/// channel per link completes — lossless, every packet delivered —
/// with two dateline virtual channels. The old engine could only
/// detect the wedge; the VC fabric is deadlock-free by construction.
#[test]
fn vcs_2_complete_the_b28_hotspot_run_that_deadlocks_at_vcs_1() {
    let b = DeBruijn::new(2, 8);
    let n = b.node_count(); // 256
    let workload = generate_workload(TrafficPattern::Hotspot, n, 2, 20_000, 0x0715);
    let config = |vcs: usize| QueueConfig {
        buffers: 4,
        wavelengths: 1,
        vcs,
        policy: ContentionPolicy::Backpressure,
        hop_limit: None,
        drain_threads: 0,
        max_cycles: 200_000,
    };
    let offered = 0.5 * n as f64; // ~10× past the oblivious saturation point

    let engine = QueueingEngine::from_family(&b, config(1));
    let wedged = engine.run(&DeBruijnRouter::new(b), &workload, offered);
    assert!(wedged.deadlocked, "single-channel saturation must wedge");
    assert!(wedged.conserves_packets());
    assert!(wedged.in_flight > 0, "a wedge strands packets");
    assert_eq!(wedged.dateline_promotions, 0);

    let engine = QueueingEngine::from_family(&b, config(2));
    let lossless = engine.run(&DeBruijnRouter::new(b), &workload, offered);
    assert!(!lossless.deadlocked, "{lossless:?}");
    assert!(lossless.conserves_packets());
    assert_eq!(
        lossless.delivered,
        workload.len(),
        "lossless: all delivered"
    );
    assert_eq!(lossless.dropped(), 0);
    assert_eq!(lossless.in_flight, 0);
    assert!(
        lossless.dateline_promotions > 0,
        "saturation must push packets across the dateline"
    );
    // The deadlock-freedom evidence: the wedges the single-channel
    // run fell into became promotions (and, for double-wrapping
    // routes, relief moves) instead.
    assert!(lossless.vc_peak_occupancy[0] as usize <= config(2).buffers);
}

/// The offered-load sweep rides through the old deadlock point: every
/// point of a saturating backpressure sweep on B(2,8) hotspot
/// completes deadlock-free with two virtual channels.
#[test]
fn backpressure_sweep_sustains_loads_past_the_old_deadlock_point() {
    let b = DeBruijn::new(2, 8);
    let n = b.node_count();
    let workload = generate_workload(TrafficPattern::Hotspot, n, 2, 8_000, 7);
    let config = QueueConfig {
        buffers: 4,
        wavelengths: 1,
        vcs: 2,
        policy: ContentionPolicy::Backpressure,
        hop_limit: None,
        drain_threads: 0,
        max_cycles: 200_000,
    };
    let engine = QueueingEngine::from_family(&b, config);
    let router = DeBruijnRouter::new(b);
    let loads = [0.02, 0.1, 0.5, 1.0];
    let sweep = engine.saturation_sweep(&router, &workload, &loads);
    for point in &sweep.points {
        assert!(
            !point.deadlocked,
            "load {} wedged: {point:?}",
            point.offered_per_node
        );
        assert_eq!(point.drop_rate, 0.0, "backpressure is lossless");
    }
    // The same sweep at vcs = 1 wedges at its saturating points —
    // the "old deadlock point" the VC fabric rides past.
    let engine = QueueingEngine::from_family(&b, QueueConfig { vcs: 1, ..config });
    let sweep = engine.saturation_sweep(&router, &workload, &loads);
    assert!(
        sweep.points.iter().any(|p| p.deadlocked),
        "the single-channel sweep was expected to wedge somewhere"
    );
}

/// Drain fairness: on a symmetric ring under saturating contention,
/// the rotating drain offset must spread deliveries evenly across
/// links. (With the old fixed arc-index order, links adjacent to the
/// scan boundary persistently won the downstream buffer space and
/// high-index links starved.)
#[test]
fn drain_rotation_keeps_symmetric_ring_links_fair() {
    let n = 16usize;
    let ring = Digraph::from_fn(n, |u| [(u + 1) % n as u32]);
    let router = RoutingTable::new(&ring);
    // Every node sends two-hop packets, interleaved round-robin so
    // every source faces identical offered load; saturate for a
    // fixed window.
    let packets = 12_000usize;
    let workload: Vec<(u64, u64)> = (0..packets)
        .map(|i| {
            let src = (i % n) as u64;
            (src, (src + 2) % n as u64)
        })
        .collect();
    let config = QueueConfig {
        buffers: 2,
        wavelengths: 1,
        vcs: 1,
        policy: ContentionPolicy::TailDrop,
        hop_limit: None,
        drain_threads: 0,
        max_cycles: 1_500,
    };
    let engine = QueueingEngine::new(ring, config);
    let report = engine.run(&router, &workload, n as f64);
    assert!(report.conserves_packets());
    let per_link = &report.delivered_per_link;
    let min = per_link.iter().min().copied().unwrap();
    let max = per_link.iter().max().copied().unwrap();
    assert!(max > 0, "the window must deliver something");
    assert!(
        min * 10 >= max * 8,
        "symmetric ring links must deliver within 20% of each other, got {per_link:?}"
    );
}

/// Per-class statistics: on saturated hotspot traffic the hot class
/// (packets aimed at the hot node) must show the tree-saturation
/// delay while the background class rides cheaper paths — and the
/// two classes must partition every counter exactly.
#[test]
fn hotspot_classes_split_the_tree_saturation_story() {
    let b = DeBruijn::new(2, 6);
    let n = b.node_count(); // 64
    let pattern = TrafficPattern::Hotspot;
    let workload = generate_workload(pattern, n, 2, 40_000, 11);
    let hot = pattern.hot_node(n).expect("hotspot has a hot node");
    // Offered so that only the hot in-tree saturates: the hot node
    // accepts 2 packets/cycle against 0.25 · 16 = 4/cycle offered,
    // while the background's 12/cycle spread over 128 links stays
    // comfortable. Tail-drop makes the asymmetry stark: the full
    // buffers are the hot in-tree's.
    let config = QueueConfig {
        buffers: 16,
        wavelengths: 1,
        vcs: 2,
        policy: ContentionPolicy::TailDrop,
        hop_limit: None,
        drain_threads: 0,
        max_cycles: 1_500,
    };
    let engine = QueueingEngine::from_family(&b, config);
    let router = RoutingTable::from_family(&b);
    let report = engine.run_classified(&router, &workload, 0.25 * n as f64, Some(hot));
    assert!(report.conserves_packets());
    // Tail-drop never blocks, so it gets no dateline relief and its
    // buffer caps hold exactly, even with multiple VCs at saturation.
    assert_eq!(report.dateline_relief, 0);
    assert!(report.max_peak_occupancy as usize <= config.buffers);
    let stats = report.class_stats.as_ref().expect("classified run");
    // The split partitions the totals exactly.
    assert_eq!(
        stats.hot.injected + stats.background.injected,
        report.injected
    );
    assert_eq!(
        stats.hot.delivered + stats.background.delivered,
        report.delivered
    );
    assert_eq!(
        stats.hot.dropped + stats.background.dropped,
        report.dropped()
    );
    // A quarter of hotspot traffic aims at the hot node.
    assert!(stats.hot.injected * 3 >= report.injected / 2);
    assert!(stats.hot.injected <= report.injected / 2);
    // The hot in-tree has 2 packets/cycle of delivery capacity
    // against ~4 offered: the drops concentrate on the hot class
    // (measured ~44% delivered vs ~96% background) and the hot
    // median delay dwarfs the background's (~51 vs ~2 cycles).
    assert!(
        stats.hot.delivery_rate() < 0.75 * stats.background.delivery_rate(),
        "drops must concentrate on the saturated class: hot {:.2} vs background {:.2}",
        stats.hot.delivery_rate(),
        stats.background.delivery_rate()
    );
    assert!(
        stats.hot.wait_p50_cycles >= 4 * stats.background.wait_p50_cycles.max(1),
        "tree saturation should dominate the hot class: hot p50 {} vs background p50 {}",
        stats.hot.wait_p50_cycles,
        stats.background.wait_p50_cycles
    );
    assert!(
        stats.hot.wait_mean_cycles > stats.background.wait_mean_cycles,
        "hot mean {} vs background mean {}",
        stats.hot.wait_mean_cycles,
        stats.background.wait_mean_cycles
    );
}

/// The tentpole acceptance result of PR 2, still standing under the
/// VC fabric: on hotspot traffic at an offered load far past the
/// oblivious saturation point, contention-aware adaptive routing
/// delivers strictly more packets per cycle *and* a strictly lower
/// p99 queueing delay than oblivious shortest-path routing.
#[test]
fn adaptive_beats_oblivious_on_saturated_hotspot() {
    let b = DeBruijn::new(2, 8);
    let n = b.node_count(); // 256
                            // The throughput win is seed-robust (1.6–2.1× across every seed
                            // tried); the p99 comparison is the statistical part, so this
                            // seed is one where the margin is wide, not hairline.
    let workload = generate_workload(TrafficPattern::Hotspot, n, 2, 100_000, 0x0716);
    let config = QueueConfig {
        buffers: 32,
        wavelengths: 1,
        vcs: 1,
        policy: ContentionPolicy::Backpressure,
        hop_limit: None,
        drain_threads: 0,
        // Fixed measurement window: throughput = delivered packets
        // per cycle over the same horizon for both routers.
        max_cycles: 1000,
    };
    let offered = 0.3 * n as f64;

    let engine = QueueingEngine::from_family(&b, config);
    let oblivious = DeBruijnRouter::new(b);
    let oblivious_report = engine.run(&oblivious, &workload, offered);

    let engine = QueueingEngine::from_family(&b, config);
    let adaptive = AdaptiveRouter::new(DeBruijnRouter::new(b), engine.occupancy());
    let adaptive_report = engine.run(&adaptive, &workload, offered);

    assert!(oblivious_report.conserves_packets());
    assert!(adaptive_report.conserves_packets());
    assert!(
        adaptive_report.throughput_per_cycle() > oblivious_report.throughput_per_cycle(),
        "adaptive {:.2} pkt/cycle must beat oblivious {:.2}",
        adaptive_report.throughput_per_cycle(),
        oblivious_report.throughput_per_cycle()
    );
    assert!(
        adaptive_report.wait_p99_cycles < oblivious_report.wait_p99_cycles,
        "adaptive p99 {} cycles must undercut oblivious {}",
        adaptive_report.wait_p99_cycles,
        oblivious_report.wait_p99_cycles
    );
    // The margin is not marginal: tree saturation costs oblivious
    // routing most of its capacity.
    assert!(
        adaptive_report.throughput_per_cycle() > 1.5 * oblivious_report.throughput_per_cycle(),
        "expected a decisive win, got {:.2} vs {:.2}",
        adaptive_report.throughput_per_cycle(),
        oblivious_report.throughput_per_cycle()
    );
}

/// The saturation sweep brackets the knee: throughput climbs with
/// offered load, then plateaus once the hot tree saturates.
#[test]
fn hotspot_sweep_saturates() {
    let b = DeBruijn::new(2, 6);
    let n = b.node_count(); // 64
    let workload = generate_workload(TrafficPattern::Hotspot, n, 2, 50_000, 9);
    let config = QueueConfig {
        buffers: 16,
        wavelengths: 1,
        vcs: 1,
        policy: ContentionPolicy::TailDrop,
        hop_limit: None,
        drain_threads: 0,
        max_cycles: 800,
    };
    let engine = QueueingEngine::from_family(&b, config);
    let router = RoutingTable::from_family(&b);
    let sweep = engine.saturation_sweep(&router, &workload, &[0.01, 0.05, 0.2, 0.5, 1.0]);
    let saturation = sweep.saturation_throughput_per_node();
    assert!(saturation > 0.0);
    // Low load delivers what it offers...
    let first = &sweep.points[0];
    assert!(first.delivered_per_node >= first.offered_per_node * 0.9);
    assert!(
        first.wait_p99_cycles <= 2,
        "an uncongested fabric sees at most stray collisions, got p99 {}",
        first.wait_p99_cycles
    );
    // ...while the top of the sweep cannot (hot-node in-capacity is 2
    // packets/cycle total), so delivery saturates well below offer.
    let last = sweep.points.last().unwrap();
    assert!(last.delivered_per_node < last.offered_per_node / 2.0);
    assert!(last.drop_rate > 0.0, "past saturation, tail-drop must drop");
    assert!(
        last.wait_p99_cycles > 0,
        "past saturation, packets must queue"
    );
}

/// Adaptive routing composed through `FaultAwareRouter`: on a degraded
/// fabric every adaptive choice must still ride surviving beams only,
/// so no packet is ever dropped as unroutable mid-flight when the
/// surviving digraph is strongly connected.
#[test]
fn adaptive_on_faulted_fabric_uses_only_surviving_beams() {
    let h = HDigraph::new(16, 32, 2); // ≅ B(2,8)
    let faults = FaultSet {
        dead_transmitters: vec![3, 200, 401],
        ..FaultSet::none()
    };
    let survivors = surviving_digraph(&h, &faults);
    assert!(otis_digraph::connectivity::is_strongly_connected(
        &survivors
    ));
    let n = h.node_count();
    let workload = generate_workload(TrafficPattern::Uniform, n, 2, 5_000, 21);
    let config = QueueConfig {
        buffers: 8,
        wavelengths: 1,
        vcs: 2,
        policy: ContentionPolicy::TailDrop,
        hop_limit: None,
        drain_threads: 0,
        max_cycles: 100_000,
    };
    let engine = QueueingEngine::new(survivors, config);
    let adaptive = FaultAwareRouter::new(&h, faults)
        .adaptive(engine.occupancy())
        .with_dateline(engine.dateline());
    let report = engine.run(&adaptive, &workload, 0.2 * n as f64);
    assert!(report.conserves_packets());
    assert_eq!(
        report.dropped_unroutable, 0,
        "a strongly connected survivor digraph routes every pair"
    );
    assert!(report.delivered > 0);
}

// --- PR 4: arena + worklist + parallel drain pins ---------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole determinism contract: identical seed and config
    /// yield a byte-identical `QueueingReport` at 1, 2 and 8 drain
    /// threads — oblivious and adaptive, tail-drop and backpressure,
    /// across VC counts. Sharding is by downstream-node ownership over
    /// phase-stable state, so the thread count may only change wall
    /// clock, never a single report byte.
    #[test]
    fn drain_thread_count_never_changes_the_report(
        dim in 3u32..6,
        buffers in 1usize..6,
        vcs in 1usize..3,
        tail_drop in any::<bool>(),
        adaptive in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let b = DeBruijn::new(2, dim);
        let n = b.node_count();
        let pattern = TrafficPattern::Hotspot;
        let workload = generate_workload(pattern, n, 2, 400, seed);
        let hot = pattern.hot_node(n);
        let report_at = |threads: usize| {
            let config = QueueConfig {
                buffers,
                wavelengths: 1,
                vcs,
                policy: if tail_drop {
                    ContentionPolicy::TailDrop
                } else {
                    ContentionPolicy::Backpressure
                },
                hop_limit: None,
                max_cycles: 50_000,
                drain_threads: threads,
            };
            let engine = QueueingEngine::from_family(&b, config);
            let report = if adaptive {
                let router = AdaptiveRouter::new(DeBruijnRouter::new(b), engine.occupancy())
                    .with_dateline(engine.dateline());
                engine.run_classified(&router, &workload, 0.5 * n as f64, hot)
            } else {
                engine.run_classified(&DeBruijnRouter::new(b), &workload, 0.5 * n as f64, hot)
            };
            serde_json::to_string(&report).expect("report serializes")
        };
        let single = report_at(1);
        prop_assert_eq!(&single, &report_at(2), "2 drain threads diverged");
        prop_assert_eq!(&single, &report_at(8), "8 drain threads diverged");
    }

    /// Arena recycling under churn: single-slot buffers force constant
    /// alloc/free turnover (tail-drop) or long blocking chains
    /// (backpressure + VCs); packets must balance exactly and the
    /// engine's internal arena-vs-in-flight audit must hold (it
    /// asserts at the end of every run).
    #[test]
    fn arena_recycling_conserves_packets_under_churn(
        dim in 3u32..6,
        tail_drop in any::<bool>(),
        threads in 1usize..5,
        seed in any::<u64>(),
    ) {
        let b = DeBruijn::new(2, dim);
        let n = b.node_count();
        let workload = generate_workload(TrafficPattern::Uniform, n, 2, 2_000, seed);
        let config = QueueConfig {
            buffers: 1,
            wavelengths: 1,
            vcs: if tail_drop { 1 } else { 2 },
            policy: if tail_drop {
                ContentionPolicy::TailDrop
            } else {
                ContentionPolicy::Backpressure
            },
            hop_limit: None,
            max_cycles: 500_000,
            drain_threads: threads,
        };
        let engine = QueueingEngine::from_family(&b, config);
        let report = engine.run(&DeBruijnRouter::new(b), &workload, n as f64);
        prop_assert!(report.conserves_packets(), "{report:?}");
        prop_assert_eq!(report.injected, workload.len());
        prop_assert_eq!(report.in_flight, 0);
        if !tail_drop {
            prop_assert_eq!(report.delivered, workload.len(), "backpressure is lossless");
        }
    }

    /// The rewritten engine against the frozen pre-arena reference:
    /// with buffers far deeper than any queue the load builds (no
    /// full-buffer event can ever fire), every arbitration-insensitive
    /// quantity must agree exactly — same packets injected, same
    /// packets delivered over the same routes, zero loss both. The
    /// fields that *may* shift are the queueing-delay ones: when two
    /// packets enter one FIFO in the same cycle, the rewrite orders
    /// them by the staging node's drain order where the old engine
    /// used its global scan order — a re-specified (still
    /// deterministic) tie-break, so individual waits can move by a
    /// cycle while the physics stays put; the means must still agree
    /// closely.
    #[test]
    fn rewrite_matches_reference_engine_when_uncontended(
        dim in 3u32..6,
        wavelengths in 1usize..3,
        vcs in 1usize..3,
        seed in any::<u64>(),
    ) {
        let b = DeBruijn::new(2, dim);
        let n = b.node_count();
        let workload = generate_workload(TrafficPattern::Uniform, n, 2, 300, seed);
        let config = QueueConfig {
            buffers: 512, // deeper than 300 packets can ever stack
            wavelengths,
            vcs,
            policy: ContentionPolicy::Backpressure,
            hop_limit: None,
            max_cycles: 100_000,
            drain_threads: 1,
        };
        let offered = 0.2 * n as f64;
        let new_engine = QueueingEngine::from_family(&b, config);
        let new = new_engine.run(&DeBruijnRouter::new(b), &workload, offered);
        let reference = ReferenceEngine::from_family(&b, config);
        let old = reference.run(&DeBruijnRouter::new(b), &workload, offered);
        prop_assert_eq!(new.injected, old.injected);
        prop_assert_eq!(new.delivered, old.delivered);
        prop_assert_eq!(new.delivered, workload.len());
        prop_assert_eq!(new.dropped(), 0);
        prop_assert_eq!(old.dropped(), 0);
        // Oblivious routes are pair-determined, so total hops cannot
        // depend on the engine.
        prop_assert_eq!(new.delivered_hops, old.delivered_hops);
        prop_assert_eq!(new.max_hops, old.max_hops);
        prop_assert_eq!(new.dateline_promotions, old.dateline_promotions);
        prop_assert!(!new.deadlocked && !old.deadlocked);
        prop_assert!(
            (new.wait_mean_cycles - old.wait_mean_cycles).abs()
                <= 0.05 + 0.2 * old.wait_mean_cycles,
            "mean wait drifted: {} vs {}",
            new.wait_mean_cycles,
            old.wait_mean_cycles
        );
    }
}

// --- PR 5: multicast trees, replication, and the differential battery -------

/// The leaf-conservation invariants every multicast configuration must
/// uphold: `injected_leaves = delivered + dropped + in_flight`, full
/// injection on completed runs, buffer caps outside dateline relief.
fn check_multicast_conservation(
    report: &otis_optics::QueueingReport,
    total_leaves: usize,
    config: QueueConfig,
) -> Result<(), String> {
    prop_assert!(
        report.conserves_packets(),
        "injected {} != delivered {} + dropped {} + in_flight {} ({})",
        report.injected,
        report.delivered,
        report.dropped(),
        report.in_flight,
        report.router,
    );
    if !report.deadlocked && report.cycles < config.max_cycles {
        prop_assert_eq!(report.injected, total_leaves);
        prop_assert_eq!(report.in_flight, 0);
    }
    if report.dateline_relief == 0 {
        prop_assert!(report.max_peak_occupancy as usize <= config.buffers);
    }
    for (vc, &peak) in report.vc_peak_occupancy.iter().enumerate() {
        if vc + 1 < config.vcs {
            prop_assert!(
                peak as usize <= config.buffers,
                "class {vc} exceeded its cap: {peak} > {}",
                config.buffers
            );
        }
    }
    prop_assert!(report.wait_p50_cycles <= report.wait_p99_cycles);
    prop_assert!(report.wait_p99_cycles <= report.wait_max_cycles);
    if config.vcs == 1 {
        prop_assert_eq!(report.dateline_promotions, 0);
        prop_assert_eq!(report.dateline_relief, 0);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The leaf-conservation law across fabrics × policies × VC counts
    /// × fanouts: `injected_leaves = delivered + dropped + in_flight`,
    /// with replication at branches, self-requests at the source, and
    /// unroutable leaves at injection all balancing exactly.
    #[test]
    fn multicast_leaf_conservation_across_fabrics(
        dim in 3u32..6,
        buffers in 1usize..6,
        vcs in 1usize..3,
        tail_drop in any::<bool>(),
        fanout in 1u32..12,
        pattern_pick in 0usize..3,
        seed in any::<u64>(),
    ) {
        let config = config_from(buffers, 1, vcs, tail_drop);
        let b = DeBruijn::new(2, dim);
        let n = b.node_count();
        let pattern = match pattern_pick {
            0 => TrafficPattern::Broadcast,
            1 => TrafficPattern::Multicast { fanout },
            _ => TrafficPattern::HotspotMulticast { fanout },
        };
        let groups = generate_multicast_workload(pattern, n, 2, 60, seed);
        let total: usize = groups.iter().map(|g| g.dsts.len()).sum();
        let engine = QueueingEngine::from_family(&b, config);
        let report = engine.run_multicast(&DeBruijnRouter::new(b), &groups, 0.2 * n as f64);
        check_multicast_conservation(&report, total, config)?;
        prop_assert_eq!(report.multicast_groups, groups.len());
        // Lossless backpressure with dateline VCs delivers everything.
        if !tail_drop && vcs >= 2 {
            prop_assert!(!report.deadlocked, "{report:?}");
            prop_assert_eq!(report.delivered, total);
        }

        // Kautz at a comparable size, table-routed (trees built from
        // the generic table router, not de Bruijn arithmetic).
        let k = Kautz::new(2, dim.saturating_sub(1).max(2));
        let kn = k.node_count();
        let groups = generate_multicast_workload(
            TrafficPattern::Multicast { fanout },
            kn,
            2,
            40,
            seed,
        );
        let total: usize = groups.iter().map(|g| g.dsts.len()).sum();
        let engine = QueueingEngine::from_family(&k, config);
        let report = engine.run_multicast(&RoutingTable::from_family(&k), &groups, 0.2 * kn as f64);
        check_multicast_conservation(&report, total, config)?;
    }

    /// The differential battery of this PR: the arena engine against
    /// the frozen [`ReferenceEngine`] under the same replication rule,
    /// on uncontended runs (groups offered far enough apart that no
    /// two trees ever coexist, buffers deeper than any tree) — the
    /// reports must be **byte-identical**, and stay byte-identical at
    /// 1, 2 and 8 drain threads.
    #[test]
    fn multicast_rewrite_matches_reference_when_uncontended(
        dim in 3u32..6,
        fanout in 1u32..10,
        vcs in 1usize..3,
        hotspot_rooted in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let b = DeBruijn::new(2, dim);
        let n = b.node_count();
        let pattern = if hotspot_rooted {
            TrafficPattern::HotspotMulticast { fanout }
        } else {
            TrafficPattern::Multicast { fanout }
        };
        let groups = generate_multicast_workload(pattern, n, 2, 25, seed);
        // One group every dim + 4 cycles: a tree lives at most `dim`
        // cycles uncontended, so trees never overlap and neither
        // engine ever sees a full buffer or a shared channel.
        let offered = 1.0 / (dim as f64 + 4.0);
        let config = |threads: usize| QueueConfig {
            buffers: 512,
            wavelengths: 1,
            vcs,
            policy: ContentionPolicy::Backpressure,
            hop_limit: None,
            max_cycles: 1_000_000,
            drain_threads: threads,
        };
        let reference = ReferenceEngine::from_family(&b, config(1));
        let expected = reference.run_multicast(&DeBruijnRouter::new(b), &groups, offered);
        prop_assert!(expected.conserves_packets());
        prop_assert_eq!(expected.dropped(), 0);
        let expected = serde_json::to_string(&expected).expect("report serializes");
        for threads in [1usize, 2, 8] {
            let engine = QueueingEngine::from_family(&b, config(threads));
            let report = engine.run_multicast(&DeBruijnRouter::new(b), &groups, offered);
            let json = serde_json::to_string(&report).expect("report serializes");
            prop_assert_eq!(
                &json,
                &expected,
                "arena engine at {} drain threads diverged from the reference",
                threads
            );
        }
    }

    /// Thread-count determinism under *contention*: saturating
    /// multicast backpressure and tail-drop runs report byte-identical
    /// at 1, 2 and 8 drain threads (the uncontended case is covered by
    /// the differential above; this one exercises blocked branches,
    /// parking and relief).
    #[test]
    fn multicast_drain_threads_never_change_the_report(
        dim in 3u32..6,
        buffers in 1usize..4,
        vcs in 1usize..3,
        tail_drop in any::<bool>(),
        fanout in 2u32..10,
        seed in any::<u64>(),
    ) {
        let b = DeBruijn::new(2, dim);
        let n = b.node_count();
        let groups = generate_multicast_workload(
            TrafficPattern::HotspotMulticast { fanout },
            n,
            2,
            120,
            seed,
        );
        let report_at = |threads: usize| {
            let config = QueueConfig {
                buffers,
                wavelengths: 1,
                vcs,
                policy: if tail_drop {
                    ContentionPolicy::TailDrop
                } else {
                    ContentionPolicy::Backpressure
                },
                hop_limit: None,
                max_cycles: 50_000,
                drain_threads: threads,
            };
            let engine = QueueingEngine::from_family(&b, config);
            let report = engine.run_multicast(&DeBruijnRouter::new(b), &groups, 0.5 * n as f64);
            serde_json::to_string(&report).expect("report serializes")
        };
        let single = report_at(1);
        prop_assert_eq!(&single, &report_at(2), "2 drain threads diverged");
        prop_assert_eq!(&single, &report_at(8), "8 drain threads diverged");
    }
}

/// The acceptance result of this PR: a full broadcast from the hotspot
/// root on `B(2,8)` — 255 leaves per tree, every tree the same
/// saturated out-tree — runs **lossless** under backpressure with two
/// dateline virtual channels: the all-or-nothing branch blocking adds
/// multi-channel waits, and the dateline argument still dissolves
/// every dependency cycle.
#[test]
fn broadcast_from_the_hotspot_root_is_lossless_on_b28_with_vcs2() {
    let b = DeBruijn::new(2, 8);
    let n = b.node_count(); // 256
    let groups = generate_multicast_workload(
        TrafficPattern::HotspotMulticast { fanout: 255 },
        n,
        2,
        300,
        0x0715,
    );
    assert!(groups.iter().all(|g| g.root == 128 && g.dsts.len() == 255));
    let config = QueueConfig {
        buffers: 4,
        wavelengths: 1,
        vcs: 2,
        policy: ContentionPolicy::Backpressure,
        hop_limit: None,
        drain_threads: 0,
        max_cycles: 500_000,
    };
    let engine = QueueingEngine::from_family(&b, config);
    let report = engine.run_multicast(&DeBruijnRouter::new(b), &groups, 1.0);
    assert!(!report.deadlocked, "{report:?}");
    assert!(report.conserves_packets());
    assert_eq!(report.injected, 300 * 255, "every leaf injected");
    assert_eq!(
        report.delivered,
        300 * 255,
        "lossless: every leaf delivered"
    );
    assert_eq!(report.dropped(), 0);
    assert_eq!(report.in_flight, 0);
    assert_eq!(report.multicast_groups, 300);
    // Every tree crosses the fabric's wrap arcs somewhere: the
    // dateline must have been exercised, not avoided.
    assert!(report.dateline_promotions > 0);
    // Every link carries every broadcast tree from one root, so the
    // static multicast forwarding index is the group count... on the
    // 255-node out-tree each link carries at most one arc per tree.
    assert_eq!(report.multicast_forwarding_index, 300);
    // Replication did the heavy lifting: 255 leaves reached per tree
    // from at most 2 root copies.
    assert!(report.replicated_copies > report.multicast_groups as u64 * 200);
}

/// The multicast forwarding index measured by the batched engine is
/// consistent with the queueing engine's static tree count, and the
/// hotspot-rooted pattern concentrates it exactly where the unicast
/// hotspot pattern concentrates load.
#[test]
fn multicast_forwarding_index_agrees_across_engines() {
    let b = DeBruijn::new(2, 6);
    let n = b.node_count();
    let groups =
        generate_multicast_workload(TrafficPattern::Multicast { fanout: 6 }, n, 2, 200, 42);
    let config = QueueConfig {
        buffers: 64,
        wavelengths: 1,
        vcs: 1,
        policy: ContentionPolicy::TailDrop,
        hop_limit: None,
        drain_threads: 0,
        max_cycles: 100_000,
    };
    let engine = QueueingEngine::from_family(&b, config);
    let queueing = engine.run_multicast(&DeBruijnRouter::new(b), &groups, 0.1 * n as f64);
    // The batched engine on the same workload over the OTIS hosting of
    // the same fabric (H(8,16,2) ≅ B(2,6) via the identity here is not
    // available — route the de Bruijn fabric directly through the
    // simulator's H-digraph of the same shape).
    let sim =
        otis_optics::simulator::OtisSimulator::with_defaults(otis_optics::HDigraph::new(8, 16, 2));
    let batched_engine = otis_optics::TrafficEngine::new(&sim);
    let router = RoutingTable::from_family(sim.h());
    let batched = batched_engine.run_multicast(&router, &groups);
    assert_eq!(batched.delivered_leaves, queueing.delivered);
    // Different routers (H-table vs de Bruijn arithmetic) may tie-break
    // differently, but the indices measure the same congestion within
    // the tie-break wiggle.
    assert!(batched.multicast_forwarding_index >= 1);
    assert!(queueing.multicast_forwarding_index >= 1);
    assert!(batched.unicast_forwarding_index >= batched.multicast_forwarding_index);
}

/// The compressed-table router drives the queueing engine at a fabric
/// size the dense table cannot represent — and behaves exactly like
/// the arithmetic router it was derived from.
#[test]
fn compressed_table_runs_the_queueing_engine_past_the_dense_cap() {
    let b = DeBruijn::new(2, 14); // 16384 nodes, 2× the dense cap
    let n = b.node_count();
    let table = RoutingTable::from_debruijn(&b);
    assert!(table.is_compressed());
    let workload = generate_workload(TrafficPattern::Uniform, n, 2, 20_000, 5);
    let config = QueueConfig {
        buffers: 8,
        wavelengths: 1,
        vcs: 1,
        policy: ContentionPolicy::TailDrop,
        hop_limit: None,
        max_cycles: 100_000,
        drain_threads: 0,
    };
    let engine = QueueingEngine::from_family(&b, config);
    let table_report = engine.run(&table, &workload, 0.05 * n as f64);
    assert!(table_report.conserves_packets());
    assert_eq!(table_report.injected, workload.len());
    // The arithmetic router must agree on everything but its name:
    // the compressed runs are its routing function, tabulated.
    let arithmetic_report = engine.run(&DeBruijnRouter::new(b), &workload, 0.05 * n as f64);
    let strip = |report: &otis_optics::QueueingReport| {
        let mut report = report.clone();
        report.router = String::new();
        serde_json::to_string(&report).expect("serializes")
    };
    assert_eq!(strip(&table_report), strip(&arithmetic_report));
}

// --- PR 6: streamed workloads — the materialization differential ------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Streaming is a memory optimization, not a semantics change:
    /// regenerating the workload chunk by chunk inside the engine must
    /// yield a byte-identical report to materializing the same source
    /// up front — at 1, 2 and 8 drain threads, oblivious and adaptive,
    /// both policies, across VC counts.
    #[test]
    fn streamed_run_is_byte_identical_to_materialized(
        dim in 3u32..6,
        buffers in 1usize..6,
        vcs in 1usize..3,
        tail_drop in any::<bool>(),
        adaptive in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let b = DeBruijn::new(2, dim);
        let n = b.node_count();
        let pattern = TrafficPattern::Hotspot;
        let source = WorkloadSource::new(pattern, n, 2, 500, seed);
        let materialized = source.materialize();
        prop_assert_eq!(materialized.len(), source.len());
        let hot = pattern.hot_node(n);
        for threads in [1usize, 2, 8] {
            let config = QueueConfig {
                buffers,
                wavelengths: 1,
                vcs,
                policy: if tail_drop {
                    ContentionPolicy::TailDrop
                } else {
                    ContentionPolicy::Backpressure
                },
                hop_limit: None,
                max_cycles: 50_000,
                drain_threads: threads,
            };
            let offered = 0.5 * n as f64;
            let run = |streamed: bool| -> String {
                let engine = QueueingEngine::from_family(&b, config);
                let report = if adaptive {
                    let router = AdaptiveRouter::new(DeBruijnRouter::new(b), engine.occupancy())
                        .with_dateline(engine.dateline());
                    if streamed {
                        engine.run_streamed_classified(&router, &source, offered, hot)
                    } else {
                        engine.run_classified(&router, &materialized, offered, hot)
                    }
                } else {
                    let router = DeBruijnRouter::new(b);
                    if streamed {
                        engine.run_streamed_classified(&router, &source, offered, hot)
                    } else {
                        engine.run_classified(&router, &materialized, offered, hot)
                    }
                };
                serde_json::to_string(&report).expect("report serializes")
            };
            prop_assert_eq!(
                run(true),
                run(false),
                "streamed diverged from materialized at {} drain threads",
                threads
            );
        }
    }
}

/// The chunk seam itself: a workload bigger than one 65,536-packet
/// chunk forces the streaming feed to regenerate mid-run (and the
/// static engine to fan chunks across workers), and neither engine may
/// show it in a single report byte.
#[test]
fn streamed_chunk_seam_is_invisible_to_the_report() {
    let b = DeBruijn::new(2, 6);
    let n = b.node_count();
    let source = WorkloadSource::new(TrafficPattern::Uniform, n, 2, 100_000, 0x0715);
    assert!(source.chunk_count() > 1, "must cross a chunk boundary");
    let materialized = source.materialize();
    let config = QueueConfig {
        buffers: 4,
        wavelengths: 1,
        vcs: 1,
        policy: ContentionPolicy::TailDrop,
        hop_limit: None,
        max_cycles: 100_000,
        drain_threads: 2,
    };
    let engine = QueueingEngine::from_family(&b, config);
    let router = DeBruijnRouter::new(b);
    let offered = 0.5 * n as f64;
    let streamed = engine.run_streamed(&router, &source, offered);
    let batched = engine.run(&router, &materialized, offered);
    assert_eq!(
        serde_json::to_string(&streamed).expect("serializes"),
        serde_json::to_string(&batched).expect("serializes"),
        "queueing engine: chunk seam leaked into the report"
    );
    // Same contract for the static (uncontended) engine, whose
    // streamed path routes chunks in parallel workers. Every count,
    // load vector and latency figure must agree exactly; the energy
    // total is a float sum whose chunk grouping differs between the
    // two paths, so it gets an epsilon instead of byte equality.
    let sim =
        otis_optics::simulator::OtisSimulator::with_defaults(otis_optics::HDigraph::new(8, 16, 2));
    let static_engine = otis_optics::TrafficEngine::new(&sim);
    let table = RoutingTable::from_family(sim.h());
    let mut streamed_static = static_engine.run_streamed(&table, &source);
    let mut batched_static = static_engine.run(&table, &materialized);
    assert!(
        (streamed_static.energy_total_pj - batched_static.energy_total_pj).abs()
            <= 1e-9 * batched_static.energy_total_pj.abs(),
        "energy drifted past summation-order noise: {} vs {}",
        streamed_static.energy_total_pj,
        batched_static.energy_total_pj
    );
    streamed_static.energy_total_pj = 0.0;
    batched_static.energy_total_pj = 0.0;
    assert_eq!(
        serde_json::to_string(&streamed_static).expect("serializes"),
        serde_json::to_string(&batched_static).expect("serializes"),
        "static engine: chunk seam leaked into the report"
    );
}

// ---------------------------------------------------------------
// Link dynamics: fades, flapping beams, failure storms, and online
// reroute with incremental next-hop repair.
// ---------------------------------------------------------------

use otis_core::DynamicRoutingTable;
use otis_optics::{DynamicsSpec, StrandedPolicy};

/// The tentpole acceptance run: a B(2,10) hotspot workload survives a
/// mid-run failure storm across a transceiver-plane slice plus a
/// single-beam fade on the hot in-tree. Routing repairs online
/// (strictly fewer runs patched than a full rebuild), the report
/// carries a nonzero time-to-reroute, the stranded packets re-place
/// through the surviving sibling beam, and delivery stays ≥ 90% with
/// conservation holding throughout.
#[test]
fn mid_run_storm_on_b210_hotspot_reroutes_and_delivers() {
    let b = DeBruijn::new(2, 10);
    let n = b.node_count();
    let g = b.digraph();
    let workload = generate_workload(TrafficPattern::Hotspot, n, 2, 6_000, 11);
    let config = QueueConfig {
        buffers: 4,
        wavelengths: 1,
        vcs: 2,
        policy: ContentionPolicy::Backpressure,
        hop_limit: None,
        drain_threads: 0,
        max_cycles: 100_000,
    };
    let mut engine = QueueingEngine::new(g.clone(), config);
    // At cycle 40 every out-beam of the four-node slice 300..=303
    // dies for 120 cycles; at cycle 50 the hot in-tree beam 256 → 512
    // fades to zero for 100 cycles (its sibling 256 → 513 survives,
    // so the stranded hot traffic has somewhere to go); plus one
    // flapping beam elsewhere.
    let spec: DynamicsSpec = "storm@40:300-303:120,fade@50:256>512:0:100,flap@60:7>14:10:10:3"
        .parse()
        .expect("valid dynamics spec");
    engine.set_dynamics(spec, StrandedPolicy::Reinject);
    let router = DynamicRoutingTable::new(&g);
    let report = engine.run_classified(&router, &workload, 0.4 * n as f64, Some(n / 2));

    assert!(!report.deadlocked, "{report:?}");
    assert!(report.dynamics_consistent(), "{report:?}");
    assert_eq!(report.in_flight, 0);
    // 8 storm deaths + 1 fade death + 3 flap deaths, each revived.
    assert_eq!(report.link_down_events, 12);
    assert_eq!(report.link_up_events, 12);
    // Deaths at nodes with a surviving sibling beam (the fade and the
    // flaps) resolve their reroute watch; a storm node loses *every*
    // out-beam, so its watch can only settle if traffic transits it
    // after revival — those may honestly stay unresolved.
    assert!(!report.time_to_reroute_cycles.is_empty(), "{report:?}");
    assert!(report.time_to_reroute_cycles.iter().all(|&t| t >= 1));
    assert!(report.reroute_unresolved <= 8, "{report:?}");
    // Online repair patched, and each event touched strictly fewer
    // runs than the full table holds.
    assert_eq!(report.repair_runs_patched.len(), 24);
    assert!(report.table_runs_total > 0);
    assert!(report
        .repair_runs_patched
        .iter()
        .all(|&runs| runs < report.table_runs_total));
    // The storm caught traffic mid-flight and the engine re-placed it.
    assert!(report.stranded_reinjected > 0, "{report:?}");
    // ≥ 90% delivered despite the storm window (the only losses are
    // packets stuck at — or sourced from — the dead slice).
    assert!(
        report.delivered * 10 >= report.injected * 9,
        "delivered {} of {}",
        report.delivered,
        report.injected
    );
    // After the run (all events revived), the repaired table answers
    // byte-identically to a from-scratch build of the full fabric.
    assert_eq!(router.dead_arc_count(), 0);
    assert_eq!(
        router.snapshot(),
        otis_digraph::repair::RepairableNextHopTable::new(&g).snapshot(),
        "post-revival repair drifted from the from-scratch table"
    );
}

/// Satellite 6 regression: a head parked behind a beam that then
/// fades to zero must deroute (or drop) instead of wedging. The hot
/// in-tree link 64 → 128 on B(2,8) dies permanently mid-run; the
/// wake-the-world crossing re-evaluates every parked channel and the
/// stranded queue re-places through the surviving in-beam.
#[test]
fn heads_blocked_behind_a_dying_beam_deroute_instead_of_wedging() {
    let b = DeBruijn::new(2, 8);
    let n = b.node_count();
    let g = b.digraph();
    let workload = generate_workload(TrafficPattern::Hotspot, n, 2, 4_000, 3);
    let config = QueueConfig {
        buffers: 2,
        wavelengths: 1,
        vcs: 2,
        policy: ContentionPolicy::Backpressure,
        hop_limit: None,
        drain_threads: 0,
        max_cycles: 100_000,
    };
    for policy in [StrandedPolicy::Reinject, StrandedPolicy::Drop] {
        let mut engine = QueueingEngine::new(g.clone(), config);
        engine.set_dynamics("fade@30:64>128".parse().expect("valid spec"), policy);
        let router = DynamicRoutingTable::new(&g);
        let report = engine.run_classified(&router, &workload, 0.5 * n as f64, Some(n / 2));
        assert!(!report.deadlocked, "{policy:?}: wedged — {report:?}");
        assert!(report.cycles < config.max_cycles, "{policy:?}: spun out");
        assert!(report.dynamics_consistent(), "{policy:?}: {report:?}");
        assert_eq!(report.in_flight, 0);
        assert_eq!(report.link_down_events, 1);
        let resolved = match policy {
            StrandedPolicy::Reinject => report.stranded_reinjected,
            StrandedPolicy::Drop => report.dropped_stranded as u64,
        };
        assert!(
            resolved > 0,
            "{policy:?}: nothing was queued on the dead beam"
        );
    }
}

/// A timeline whose only event sits far past the horizon must leave
/// the run byte-identical to the static engine — at every thread
/// count. The dynamics scaffolding (capacity gates, watches, penalty
/// slab) may cost cycles, never behavior.
#[test]
fn unfired_timeline_reproduces_the_static_report_at_1_2_8_threads() {
    let b = DeBruijn::new(2, 8);
    let n = b.node_count();
    let g = b.digraph();
    let workload = generate_workload(TrafficPattern::Uniform, n, 2, 3_000, 19);
    for threads in [1usize, 2, 8] {
        let config = QueueConfig {
            buffers: 4,
            wavelengths: 2,
            vcs: 2,
            policy: ContentionPolicy::Backpressure,
            hop_limit: None,
            drain_threads: threads,
            max_cycles: 100_000,
        };
        let router = DynamicRoutingTable::new(&g);
        let baseline =
            QueueingEngine::new(g.clone(), config).run(&router, &workload, 0.4 * n as f64);
        let mut engine = QueueingEngine::new(g.clone(), config);
        engine.set_dynamics(
            "fade@900000:0>1:0:5".parse().expect("valid spec"),
            StrandedPolicy::Reinject,
        );
        let report = engine.run(&router, &workload, 0.4 * n as f64);
        assert_eq!(baseline, report, "threads={threads}");
    }
}

/// Reports under *firing* dynamics are a pure function of the cycle
/// state, not the worker layout: the same storm at 1, 2 and 8 drain
/// threads yields identical reports (stranded resolution is
/// channel-sorted, watches resolve on cycle values, and events fire
/// on the sequential slot).
#[test]
fn dynamics_reports_are_thread_invariant() {
    let b = DeBruijn::new(2, 8);
    let n = b.node_count();
    let g = b.digraph();
    let workload = generate_workload(TrafficPattern::Hotspot, n, 2, 4_000, 23);
    let run = |threads: usize| {
        let config = QueueConfig {
            buffers: 4,
            wavelengths: 1,
            vcs: 2,
            policy: ContentionPolicy::Backpressure,
            hop_limit: None,
            drain_threads: threads,
            max_cycles: 100_000,
        };
        let mut engine = QueueingEngine::new(g.clone(), config);
        engine.set_dynamics(
            "storm@25:100-101:60,fade@45:64>128:0:90"
                .parse()
                .expect("valid spec"),
            StrandedPolicy::Reinject,
        );
        // Fresh router per run: repair mutates it.
        let router = DynamicRoutingTable::new(&g);
        engine.run_classified(&router, &workload, 0.5 * n as f64, Some(n / 2))
    };
    let single = run(1);
    assert!(single.link_down_events > 0 && single.dynamics_consistent());
    assert_eq!(single, run(2), "2 threads diverged");
    assert_eq!(single, run(8), "8 threads diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary seed-split fade timelines on B(2, dim) with vcs ≥ 2
    /// backpressure: the run never wedges, conserves packets through
    /// every death and revival, and drains to empty under both
    /// stranded policies.
    #[test]
    fn random_fade_timelines_conserve_and_never_wedge(
        dim in 4u32..7,
        seed in any::<u64>(),
        fades in 1usize..5,
        window in 1u64..120,
        duration in 1u64..60,
        reinject in any::<bool>(),
    ) {
        let b = DeBruijn::new(2, dim);
        let n = b.node_count();
        let g = b.digraph();
        let workload = generate_workload(TrafficPattern::Uniform, n, 2, 400, seed);
        let config = config_from(4, 1, 2, false);
        let mut engine = QueueingEngine::new(g.clone(), config);
        let spec: DynamicsSpec = format!("randfades@{seed}:{fades}:{window}:{duration}")
            .parse()
            .expect("valid spec");
        engine.set_dynamics(
            spec,
            if reinject { StrandedPolicy::Reinject } else { StrandedPolicy::Drop },
        );
        let router = DynamicRoutingTable::new(&g);
        let report = engine.run(&router, &workload, 0.3 * n as f64);
        prop_assert!(!report.deadlocked, "{report:?}");
        prop_assert!(report.dynamics_consistent(), "{report:?}");
        prop_assert_eq!(report.in_flight, 0);
    }

    /// The kill/revive battery at engine level: after a run whose
    /// timeline leaves some arcs permanently dead, the router's
    /// incrementally repaired table is byte-identical to a
    /// from-scratch build over the same dead set.
    #[test]
    fn engine_driven_repair_matches_from_scratch_build(
        dim in 4u32..6,
        seed in any::<u64>(),
        fades in proptest::collection::vec((any::<u64>(), any::<u64>(), 0u64..5), 1..4),
    ) {
        let b = DeBruijn::new(2, dim);
        let n = b.node_count();
        let g = b.digraph();
        let workload = generate_workload(TrafficPattern::Uniform, n, 2, 200, seed);
        // Permanent fades (no duration) on known de Bruijn links
        // (u → 2u + bit mod n): the dead set survives the run. Fade
        // cycles are pinned early (< 5) so every event fires before
        // the small workload drains and the run ends.
        let mut events = Vec::new();
        let mut dead = Vec::new();
        for &(u, bit, cycle) in &fades {
            let from = u % n;
            let to = (2 * from + bit % 2) % n;
            events.push(format!("fade@{cycle}:{from}>{to}"));
            dead.push(g.arc_between(from as u32, to as u32).expect("a de Bruijn link"));
        }
        dead.sort_unstable();
        dead.dedup();
        let spec: DynamicsSpec = events.join(",").parse().expect("valid spec");
        let config = config_from(4, 1, 2, false);
        let mut engine = QueueingEngine::new(g.clone(), config);
        engine.set_dynamics(spec, StrandedPolicy::Reinject);
        let router = DynamicRoutingTable::new(&g);
        let report = engine.run(&router, &workload, 0.3 * n as f64);
        prop_assert!(report.dynamics_consistent(), "{report:?}");
        prop_assert_eq!(router.dead_arc_count(), dead.len());
        let scratch = otis_digraph::repair::RepairableNextHopTable::with_dead_arcs(&g, &dead);
        prop_assert_eq!(
            router.snapshot(),
            scratch.snapshot(),
            "incremental repair drifted from the from-scratch survivor build"
        );
    }

    /// The epoch-snapshot read path against its oracle: the same
    /// random kill/revive timeline run with lock-free snapshot reads
    /// (the default) and with `set_snapshot_reads(false)` — every
    /// query through the router's own locked path — must produce
    /// byte-identical reports at 1, 2 and 8 drain threads. This is
    /// the differential that lets the engine erase the per-query
    /// RwLock without ever being able to change an answer.
    #[test]
    fn snapshot_reads_match_the_locked_oracle_at_1_2_8_threads(
        seed in any::<u64>(),
        fades in 1usize..5,
        window in 1u64..100,
        duration in 1u64..50,
    ) {
        let b = DeBruijn::new(2, 6);
        let n = b.node_count();
        let g = b.digraph();
        let workload = generate_workload(TrafficPattern::Uniform, n, 2, 500, seed);
        let spec = format!("randfades@{seed}:{fades}:{window}:{duration}");
        let mut baseline = None;
        for threads in [1usize, 2, 8] {
            for snapshot_reads in [true, false] {
                let config = QueueConfig {
                    buffers: 4,
                    wavelengths: 1,
                    vcs: 2,
                    policy: ContentionPolicy::Backpressure,
                    hop_limit: None,
                    drain_threads: threads,
                    max_cycles: 100_000,
                };
                let mut engine = QueueingEngine::new(g.clone(), config);
                engine.set_dynamics(spec.parse().expect("valid spec"), StrandedPolicy::Reinject);
                engine.set_snapshot_reads(snapshot_reads);
                // Fresh router per run: repair mutates it.
                let router = DynamicRoutingTable::new(&g);
                let report = engine.run(&router, &workload, 0.3 * n as f64);
                prop_assert!(report.dynamics_consistent(), "{report:?}");
                match &baseline {
                    None => baseline = Some(report),
                    Some(first) => prop_assert_eq!(
                        first,
                        &report,
                        "threads={} snapshot_reads={} diverged from the oracle",
                        threads,
                        snapshot_reads
                    ),
                }
            }
        }
    }
}

/// Rank-space dynamics on a relabeled (OTIS H-style) fabric, end to
/// end: the engine's timeline addresses one beam by its de Bruijn
/// rank (`rank:` prefix) and one by its outer fabric id, both repairs
/// execute in rank space through the witness-translated hook, and the
/// router's inner table lands byte-identical to a from-scratch build
/// of the rank-space survivor graph.
#[test]
fn relabeled_fabric_repairs_in_rank_space_and_matches_rebuild() {
    // A genuinely relabeled B(2,8): push every arc through bit
    // reversal, the witness of the relabeling.
    let dim = 8u32;
    let n = 1u64 << dim;
    let rev = |v: u32| v.reverse_bits() >> (32 - dim);
    let outer = Digraph::from_fn(n as usize, |u| {
        let r = rev(u);
        let mut out = [rev((2 * r) % n as u32), rev((2 * r + 1) % n as u32)];
        out.sort_unstable();
        out
    });
    let witness: Vec<u32> = (0..n as u32).map(rev).collect();
    let inner_g = DeBruijn::new(2, dim).digraph();
    let workload = generate_workload(TrafficPattern::Uniform, n, 2, 2_000, 11);
    let config = QueueConfig {
        buffers: 4,
        wavelengths: 1,
        vcs: 2,
        policy: ContentionPolicy::Backpressure,
        hop_limit: None,
        drain_threads: 0,
        max_cycles: 100_000,
    };
    let mut engine = QueueingEngine::new(outer.clone(), config);
    // Rank link 2>4 and outer link 192>96 (= rank link 3>6 through
    // bit reversal), both permanent deaths.
    engine
        .try_set_dynamics_relabeled(
            "fade@1:rank:2>4,fade@2:192>96".parse().expect("valid spec"),
            StrandedPolicy::Reinject,
            Some(&witness),
        )
        .expect("both addressings compile against the witness");
    let router =
        otis_core::RelabeledRouter::new(DynamicRoutingTable::new(&inner_g), witness.clone());
    let report = engine.run(&router, &workload, 0.3 * n as f64);
    assert!(report.dynamics_consistent(), "{report:?}");
    assert_eq!(report.link_down_events, 2, "both deaths fired");
    assert!(
        report.snapshot_publications > 0,
        "rank-space repairs must republish the read snapshot"
    );
    // The differential, in rank space: the inner table repaired
    // through the translated hook equals a from-scratch build over
    // the de Bruijn survivor graph with the same two arcs dead.
    let dead = [
        inner_g.arc_between(2, 4).expect("rank link 2>4"),
        inner_g.arc_between(3, 6).expect("rank link 3>6"),
    ];
    let scratch = otis_digraph::repair::RepairableNextHopTable::with_dead_arcs(&inner_g, &dead);
    assert_eq!(
        router.inner().snapshot(),
        scratch.snapshot(),
        "witness-translated repair drifted from the rank-space rebuild"
    );
}

/// A beam that dies, revives, and dies again — the double transition
/// that would expose any stale parked waiter left behind by the first
/// death's wake. The run must complete without wedging at every
/// thread count, with both deaths accounted and the final table
/// matching a rebuild with the beam dead.
#[test]
fn same_beam_kill_revive_kill_leaves_no_stale_waiters() {
    let b = DeBruijn::new(2, 8);
    let n = b.node_count();
    let g = b.digraph();
    let workload = generate_workload(TrafficPattern::Hotspot, n, 2, 4_000, 31);
    let arc = g.arc_between(64, 128).expect("a de Bruijn link");
    let run = |threads: usize| {
        let config = QueueConfig {
            buffers: 4,
            wavelengths: 1,
            vcs: 2,
            policy: ContentionPolicy::Backpressure,
            hop_limit: None,
            drain_threads: threads,
            max_cycles: 100_000,
        };
        let mut engine = QueueingEngine::new(g.clone(), config);
        // Dead at 10, back at 40, dead again at 70 — permanently.
        engine.set_dynamics(
            "fade@10:64>128:0:40,fade@70:64>128"
                .parse()
                .expect("valid spec"),
            StrandedPolicy::Reinject,
        );
        let router = DynamicRoutingTable::new(&g);
        let report = engine.run(&router, &workload, 0.5 * n as f64);
        assert!(!report.deadlocked, "threads={threads}: {report:?}");
        assert!(
            report.dynamics_consistent(),
            "threads={threads}: {report:?}"
        );
        assert_eq!(
            report.in_flight, 0,
            "threads={threads}: stale waiters wedged the drain"
        );
        assert_eq!(report.link_down_events, 2);
        assert_eq!(report.link_up_events, 1);
        let scratch = otis_digraph::repair::RepairableNextHopTable::with_dead_arcs(&g, &[arc]);
        assert_eq!(
            router.snapshot(),
            scratch.snapshot(),
            "threads={threads}: kill-revive-kill drifted from the rebuild"
        );
        report
    };
    let single = run(1);
    assert_eq!(single, run(2), "2 threads diverged");
    assert_eq!(single, run(8), "8 threads diverged");
}

/// The adaptive router consumes the fade penalty: a half-dead beam
/// reads as congested through [`LinkOccupancy`], and the wrapped
/// dynamic table keeps the whole stack conserving under a timeline.
#[test]
fn adaptive_over_dynamics_conserves_and_sees_fade_penalty() {
    let b = DeBruijn::new(2, 8);
    let n = b.node_count();
    let g = b.digraph();
    let workload = generate_workload(TrafficPattern::Hotspot, n, 2, 3_000, 5);
    let config = QueueConfig {
        buffers: 4,
        wavelengths: 2,
        vcs: 2,
        policy: ContentionPolicy::Backpressure,
        hop_limit: None,
        drain_threads: 0,
        max_cycles: 100_000,
    };
    let mut engine = QueueingEngine::new(g.clone(), config);
    engine.set_dynamics(
        "fade@20:64>128:1:200,storm@60:40-41:50"
            .parse()
            .expect("valid spec"),
        StrandedPolicy::Reinject,
    );
    let adaptive = AdaptiveRouter::new(DynamicRoutingTable::new(&g), engine.occupancy())
        .with_dateline(engine.dateline());
    let report = engine.run_classified(&adaptive, &workload, 0.4 * n as f64, Some(n / 2));
    assert!(!report.deadlocked, "{report:?}");
    assert!(report.dynamics_consistent(), "{report:?}");
    assert_eq!(report.in_flight, 0);
    // The partial fade is a capacity event but not a death.
    assert_eq!(report.link_down_events, 4);
    assert!(report.capacity_events >= 6);
}
