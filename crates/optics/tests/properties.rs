//! Property-based tests for the OTIS hardware model.

use otis_core::DigraphFamily;
use otis_optics::geometry::Bench;
use otis_optics::grid::GridBench;
use otis_optics::{HDigraph, Otis, Transmitter};
use proptest::prelude::*;

proptest! {
    /// The wiring law is a bijection for every (p, q).
    #[test]
    fn wiring_bijective(p in 1u64..20, q in 1u64..20) {
        let otis = Otis::new(p, q);
        let mut hit = vec![false; (p * q) as usize];
        for t in 0..p * q {
            let r = otis.connect_index(t);
            prop_assert!(!std::mem::replace(&mut hit[r as usize], true));
        }
    }

    /// connect/source_of are mutually inverse.
    #[test]
    fn wiring_invertible(p in 1u64..20, q in 1u64..20, seed in any::<u64>()) {
        let otis = Otis::new(p, q);
        let t = otis.transmitter(seed % (p * q));
        prop_assert_eq!(otis.source_of(otis.connect(t)), t);
    }

    /// Reversal: OTIS(q,p) routes the wire back.
    #[test]
    fn reversal_inverts(p in 1u64..16, q in 1u64..16, seed in any::<u64>()) {
        let otis = Otis::new(p, q);
        let rev = otis.reversed();
        let t = otis.transmitter(seed % (p * q));
        let r = otis.connect(t);
        let back = rev.connect(Transmitter { group: r.group, offset: r.offset });
        prop_assert_eq!((back.group, back.offset), (t.group, t.offset));
    }

    /// The global-index law t ↦ pq - 1 - transpose(t).
    #[test]
    fn global_law(p in 1u64..16, q in 1u64..16, seed in any::<u64>()) {
        let otis = Otis::new(p, q);
        let t = seed % (p * q);
        let (i, j) = (t / q, t % q);
        prop_assert_eq!(otis.connect_index(t), p * q - 1 - (j * p + i));
    }

    /// H(p,q,d) is d-regular with in-degree d, for every valid shape.
    #[test]
    fn h_digraph_regularity(p in 1u64..12, q in 1u64..12, d_seed in any::<u32>()) {
        let m = p * q;
        // pick a divisor of m as degree
        let divisors: Vec<u64> = (1..=m).filter(|x| m % x == 0).collect();
        let d = divisors[(d_seed as usize) % divisors.len()];
        prop_assume!(d <= 64 && m / d >= 1);
        let h = HDigraph::new(p, q, d as u32);
        let g = h.digraph();
        prop_assert_eq!(g.regular_degree(), Some(d as usize));
        prop_assert!(g.in_degrees().iter().all(|&deg| deg == d as usize));
    }

    /// 1-D beam traces always land on the wired receiver, and path
    /// lengths dominate the axial bench length.
    #[test]
    fn beam_traces_consistent(p in 1u64..10, q in 1u64..10, seed in any::<u64>()) {
        let otis = Otis::new(p, q);
        let bench = Bench::with_defaults(otis);
        let t = otis.transmitter(seed % (p * q));
        let trace = bench.trace(t);
        prop_assert_eq!(trace.to, otis.connect(t));
        prop_assert!(trace.path_length >= bench.bench_length());
        prop_assert!(trace.time_of_flight_ps() > 0.0);
    }

    /// 2-D traces agree with the wiring too, and are never shorter
    /// than the axial length.
    #[test]
    fn grid_traces_consistent(p in 1u64..10, q in 1u64..10, seed in any::<u64>()) {
        let otis = Otis::new(p, q);
        let bench = GridBench::with_defaults(otis);
        let t = otis.transmitter(seed % (p * q));
        let trace = bench.trace(t);
        prop_assert_eq!(trace.to, otis.connect(t));
        prop_assert!(trace.path_length >= bench.bench_length() - 1e-9);
    }

    /// Fault sets only ever remove arcs, never add or rewire.
    #[test]
    fn faults_shrink_monotonically(kill in proptest::collection::vec(0u64..64, 0..6)) {
        let h = HDigraph::new(4, 16, 2);
        let faults = otis_optics::faults::FaultSet {
            dead_transmitters: kill.clone(),
            ..otis_optics::faults::FaultSet::none()
        };
        let full = h.digraph();
        let survived = otis_optics::faults::surviving_digraph(&h, &faults);
        prop_assert!(survived.arc_count() <= full.arc_count());
        // Every surviving arc exists in the pristine digraph.
        for (u, v) in survived.arcs() {
            prop_assert!(full.has_arc(u, v));
        }
        // Distinct dead transmitters kill exactly that many beams.
        let mut unique = kill;
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(full.arc_count() - survived.arc_count(), unique.len());
    }
}
