use otis_core::{DeBruijn, DeBruijnRouter};
use otis_optics::{ContentionPolicy, QueueConfig, QueueingEngine};

#[test]
fn cross_worker_same_cycle_delivery() {
    let b = DeBruijn::new(2, 7); // 128 nodes, two 64-node shards
    let config = QueueConfig {
        buffers: 4,
        wavelengths: 1,
        vcs: 1,
        policy: ContentionPolicy::Backpressure,
        hop_limit: None,
        max_cycles: 1000,
        drain_threads: 2,
    };
    let engine = QueueingEngine::from_family(&b, config);
    let router = DeBruijnRouter::new(b);
    // src 64 (inject worker 1), dst 0 (drain worker 0), one hop.
    let workload = vec![(64u64, 0u64)];
    let report = engine.run(&router, &workload, 8.0);
    assert_eq!(report.delivered, 1);
}
