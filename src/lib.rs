//! # otis — De Bruijn isomorphisms and free-space optical networks
//!
//! Umbrella crate for the reproduction of Coudert, Ferreira &
//! Pérennes, *"De Bruijn Isomorphisms and Free Space Optical
//! Networks"*, IPDPS 2000. It re-exports every workspace crate under
//! one roof so examples, integration tests and downstream users can
//! write `use otis::core::DeBruijn;`.
//!
//! The layering, bottom-up:
//!
//! * [`util`] — hashing, scoped-thread parallelism, d-ary arithmetic;
//! * [`perm`] — permutation algebra on `Z_n` (cyclicity, orbits, `g(i) = f^i(j)`);
//! * [`words`] — words over `Z_d` and permutation actions on `Z_d^D`;
//! * [`digraph`] — compact CSR digraphs: BFS, diameter, SCC, products,
//!   line digraphs, isomorphism testing;
//! * [`core`] — the paper's families `B(d,D)`, `B_σ`, `K(d,D)`,
//!   `II(d,n)`, `RRK(d,n)`, `A(f,σ,j)` and every isomorphism
//!   (Propositions 3.2, 3.3, 3.9; Corollary 3.4; Remark 3.10);
//! * [`optics`] — the OTIS(p,q) architecture: wiring law, geometry and
//!   power simulation, `H(p,q,d)` digraphs, optical packet simulator;
//! * [`layout`] — OTIS layout theory (Propositions 4.1/4.3,
//!   Corollaries 4.2/4.4/4.5/4.6) and the Table 1 degree–diameter search.
//!
//! ## Quickstart
//!
//! ```
//! use otis::core::{DeBruijn, DigraphFamily};
//! use otis::layout::minimize_lenses;
//!
//! // The de Bruijn digraph B(2, 8): 256 nodes, degree 2, diameter 8.
//! let b = DeBruijn::new(2, 8);
//! assert_eq!(b.node_count(), 256);
//!
//! // The paper's headline: an OTIS layout with Θ(√n) lenses.
//! let best = minimize_lenses(2, 8).expect("even diameter always has a layout");
//! assert_eq!((best.p(), best.q()), (16, 32)); // 48 = Θ(√256) lenses
//! ```

#![forbid(unsafe_code)]

pub use otis_core as core;
pub use otis_digraph as digraph;
pub use otis_layout as layout;
pub use otis_optics as optics;
pub use otis_perm as perm;
pub use otis_util as util;
pub use otis_words as words;
