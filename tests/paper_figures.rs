//! End-to-end regeneration of every figure in the paper.
//!
//! The figures are small structural drawings; we regenerate each as a
//! machine-checked construction plus DOT text a human can render with
//! `dot -Tpng` to re-draw the figure.

use otis::core::{AlphabetDigraph, DeBruijn, DigraphFamily, ImaseItoh, Rrk};
use otis::digraph::{connectivity, dot, iso};
use otis::optics::{HDigraph, Otis, Transmitter};
use otis::perm::Perm;

/// Figure 1: `B(2,3)` — 8 nodes labeled by binary words.
#[test]
fn figure_1_debruijn_2_3() {
    let b = DeBruijn::new(2, 3);
    let g = b.digraph();
    assert_eq!(g.node_count(), 8);
    assert_eq!(g.regular_degree(), Some(2));
    assert_eq!(otis::digraph::bfs::diameter(&g), Some(3));

    // Regenerate the drawing: word labels exactly as in the figure.
    let space = *b.space();
    let rendered = dot::to_dot_with_labels(&g, "B_2_3", |u| space.unrank(u as u64).to_string());
    for label in ["000", "001", "010", "011", "100", "101", "110", "111"] {
        assert!(
            rendered.contains(&format!("label=\"{label}\"")),
            "missing node {label}"
        );
    }
    // Figure highlights: loops at 000 and 111, the 2-cycle 010 <-> 101.
    assert!(g.has_arc(0, 0) && g.has_arc(7, 7));
    assert!(g.has_arc(2, 5) && g.has_arc(5, 2));
}

/// Figure 2: `RRK(2,8)` drawn on the integer line 0..7.
#[test]
fn figure_2_rrk_2_8() {
    let g = Rrk::new(2, 8).digraph();
    assert_eq!(g.node_count(), 8);
    // Exact adjacency of the drawing: u -> 2u, 2u+1 (mod 8).
    for u in 0..8u32 {
        assert_eq!(
            g.out_neighbors(u),
            &[(2 * u) % 8, (2 * u + 1) % 8],
            "vertex {u}"
        );
    }
    // And it *is* Figure 1's digraph, on the nose (Remark 2.6).
    assert_eq!(g, DeBruijn::new(2, 3).digraph());
}

/// Figure 3: `II(2,8)` drawn on the integer line 0..7.
#[test]
fn figure_3_ii_2_8() {
    let g = ImaseItoh::new(2, 8).digraph();
    assert_eq!(g.node_count(), 8);
    for u in 0..8u32 {
        let expected = {
            let mut v = vec![(24 - 2 * u - 1) % 8, (24 - 2 * u - 2) % 8];
            v.sort_unstable();
            v
        };
        assert_eq!(g.out_neighbors(u), expected.as_slice(), "vertex {u}");
    }
    // Isomorphic to Figures 1 and 2 via the Proposition 3.3 witness.
    let witness = otis::core::iso::prop_3_3_witness(2, 3);
    assert_eq!(
        iso::check_witness(&g, &DeBruijn::new(2, 3).digraph(), &witness),
        Ok(())
    );
}

/// Figure 4: the orbit labeling `g(i) = fⁱ(2)` for the §3.3.1
/// permutation, drawn as the 6-cycle of `f`.
#[test]
fn figure_4_orbit_labeling() {
    let f = Perm::from_images(vec![3, 4, 5, 2, 0, 1]).unwrap();
    let g = f.orbit_labeling(2).unwrap();
    // The figure's values: g(0)=2, g(1)=5, g(2)=1, g(3)=4, g(4)=0, g(5)=3.
    assert_eq!(g.images(), &[2, 5, 1, 4, 0, 3]);
    // The figure draws f's single cycle through those labels:
    // g(0) -f-> g(1) -f-> … -f-> g(5) -f-> g(0).
    for i in 0..6u32 {
        assert_eq!(f.apply(g.apply(i)), g.apply((i + 1) % 6));
    }
    // →g⁻¹ as printed in the text: g⁻¹ = [4, 2, 0, 5, 3, 1].
    assert_eq!(g.inverse().images(), &[4, 2, 0, 5, 3, 1]);
}

/// Figure 5: the disconnected `H = A(f, Id, 1)` of §3.3.2 for d = 2.
#[test]
fn figure_5_disconnected_example() {
    let a = AlphabetDigraph::new(2, 3, Perm::complement(3), Perm::identity(2), 1);
    let g = a.digraph();
    let wcc = connectivity::weak_components(&g);
    // One C₂⊗B(2,1) (4 vertices: 001, 100, 011, 110) and two
    // C₁⊗B(2,1) (000, 010 and 101, 111).
    assert_eq!(wcc.count(), 3);
    assert_eq!(wcc.size_multiset(), vec![2, 2, 4]);

    let space = *a.space();
    let label_of = |name: &str| space.rank(&name.parse().unwrap()) as u32;
    // The figure's groups:
    assert_eq!(wcc.label(label_of("000")), wcc.label(label_of("010")));
    assert_eq!(wcc.label(label_of("101")), wcc.label(label_of("111")));
    assert_eq!(wcc.label(label_of("001")), wcc.label(label_of("100")));
    assert_eq!(wcc.label(label_of("011")), wcc.label(label_of("110")));
    assert_ne!(wcc.label(label_of("000")), wcc.label(label_of("101")));
    assert_ne!(wcc.label(label_of("000")), wcc.label(label_of("001")));

    // DOT regeneration with word labels.
    let rendered = dot::to_dot_with_labels(&g, "fig5", |u| space.unrank(u as u64).to_string());
    assert_eq!(rendered.matches("->").count(), 16, "8 vertices × degree 2");
}

/// Figure 6: the `OTIS(3,6)` wiring diagram — all 18 beams.
#[test]
fn figure_6_otis_3_6_wiring() {
    let otis = Otis::new(3, 6);
    // The figure shows transmitters (i,j) wired to receivers
    // (5-j, 2-i); verify the complete wiring table.
    let mut receivers_hit = Vec::new();
    for i in 0..3 {
        for j in 0..6 {
            let r = otis.connect(Transmitter {
                group: i,
                offset: j,
            });
            assert_eq!((r.group, r.offset), (5 - j, 2 - i));
            receivers_hit.push(otis.receiver_index(r));
        }
    }
    receivers_hit.sort_unstable();
    let all: Vec<u64> = (0..18).collect();
    assert_eq!(receivers_hit, all, "perfect one-to-one coverage");

    // The physical bench reproduces the same table beam by beam.
    let bench = otis::optics::geometry::Bench::with_defaults(otis);
    for trace in bench.trace_all() {
        assert_eq!(trace.to, otis.connect(trace.from));
    }
}

/// Figure 7: the transmitter/receiver wiring of `H(4,8,2)`.
#[test]
fn figure_7_h_4_8_2_wiring() {
    let h = HDigraph::new(4, 8, 2);
    assert_eq!(h.node_count(), 16);
    // The figure pairs 32 transmitters with 32 receivers. Each node's
    // two transmitters reach the receivers of its two out-neighbors.
    let g = h.digraph();
    for u in 0..16u64 {
        let mut via_graph: Vec<u64> = g
            .out_neighbors(u as u32)
            .iter()
            .map(|&v| v as u64)
            .collect();
        via_graph.sort_unstable();
        let mut via_wiring: Vec<u64> = (0..2u64)
            .map(|delta| h.node_of_receiver(h.otis().connect_index(2 * u + delta)))
            .collect();
        via_wiring.sort_unstable();
        assert_eq!(via_graph, via_wiring, "node {u}");
    }
}

/// Figure 8: `B(2,4)` relabeled with the `H(4,8,2)` adjacency
/// `Γ⁺(x₃x₂x₁x₀) = {x̄₁x̄₀αx̄₃}`, isomorphic to the plain `B(2,4)`.
#[test]
fn figure_8_b24_with_h_adjacency() {
    let spec = otis::layout::LayoutSpec::new(2, 2, 3);
    let h = spec.h_digraph().digraph();
    let b = DeBruijn::new(2, 4).digraph();
    let witness = spec.debruijn_witness().expect("f_{2,3} is cyclic");
    assert_eq!(iso::check_witness(&h, &b, &witness), Ok(()));
    // The figure is drawn on 16 binary words; regenerate labels.
    let space = otis::words::WordSpace::new(2, 4);
    let rendered = dot::to_dot_with_labels(&h, "fig8", |u| space.unrank(u as u64).to_string());
    assert!(rendered.contains("label=\"1111\""));
    assert_eq!(rendered.matches("->").count(), 32);
}
