//! Every numbered claim of the paper, machine-checked end-to-end.
//!
//! One test per claim, named after it, so `cargo test --test
//! paper_claims` reads as a checklist of the reproduction.

use otis::core::{
    enumerate, iso as core_iso, line, AlphabetDigraph, BSigma, DeBruijn, DigraphFamily, ImaseItoh,
    Kautz, PositionalSigma, Rrk,
};
use otis::digraph::{bfs, connectivity, iso, ops};
use otis::layout::{
    balanced_even_layout, ii_layout_lens_count, layout_permutation, minimize_lenses, LayoutSpec,
};
use otis::optics::HDigraph;
use otis::perm::{all_permutations, cyclic_permutations, factorial, Perm};

#[test]
fn definition_2_2_debruijn_basics() {
    for (d, dd) in [(2u32, 5u32), (3, 3)] {
        let b = DeBruijn::new(d, dd);
        assert_eq!(b.node_count(), (d as u64).pow(dd));
        assert_eq!(b.degree(), d);
        assert_eq!(bfs::diameter(&b.digraph()), Some(dd));
    }
}

#[test]
fn definition_2_3_remark_2_4_conjunction() {
    // B(2,3) ⊗ B(3,3) = B(6,3), with witness.
    let left = DeBruijn::new(2, 3);
    let right = DeBruijn::new(3, 3);
    let product = ops::conjunction(&left.digraph(), &right.digraph());
    let witness = otis::core::conjunction::conjunction_witness(&left, &right);
    let target = DeBruijn::new(6, 3).digraph();
    assert_eq!(iso::check_witness(&product, &target, &witness), Ok(()));
}

#[test]
fn remark_2_6_rrk_is_debruijn_at_powers() {
    for (d, dd) in [(2u32, 6u32), (3, 4), (5, 2)] {
        assert_eq!(
            Rrk::new(d, (d as u64).pow(dd)).digraph(),
            DeBruijn::new(d, dd).digraph()
        );
    }
}

#[test]
fn definition_2_7_kautz_shape() {
    let k = Kautz::new(2, 9);
    assert_eq!(k.node_count(), 768);
    assert_eq!(bfs::diameter(&Kautz::new(2, 4).digraph()), Some(4));
}

#[test]
fn imase_itoh_1983_kautz_isomorphism() {
    // II(d, d^{D-1}(d+1)) ≅ K(d, D) — cited below Definition 2.8,
    // rebuilt constructively through line digraphs.
    for (d, dd) in [(2u32, 4u32), (3, 3)] {
        let witness = line::kautz_imase_itoh_witness(d, dd);
        let n = (d as u64).pow(dd - 1) * (d as u64 + 1);
        assert_eq!(
            iso::check_witness(
                &Kautz::new(d, dd).digraph(),
                &ImaseItoh::new(d, n).digraph(),
                &witness
            ),
            Ok(())
        );
    }
}

#[test]
fn proposition_3_2_alphabet_twist() {
    for sigma in all_permutations(3) {
        let bs = BSigma::new(3, 3, sigma);
        let witness = core_iso::prop_3_2_witness(&bs);
        assert_eq!(
            iso::check_witness(&bs.digraph(), &DeBruijn::new(3, 3).digraph(), &witness),
            Ok(())
        );
    }
}

#[test]
fn proposition_3_2_notice_per_position_twists() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let sigmas: Vec<Perm> = (0..4).map(|_| Perm::random(2, &mut rng)).collect();
    let ps = PositionalSigma::new(2, 4, sigmas);
    let witness = core_iso::positional_sigma_witness(&ps);
    assert_eq!(
        iso::check_witness(&ps.digraph(), &DeBruijn::new(2, 4).digraph(), &witness),
        Ok(())
    );
}

#[test]
fn proposition_3_3_and_corollary_3_4() {
    for (d, dd) in [(2u32, 4u32), (3, 3)] {
        let n = (d as u64).pow(dd);
        // II = B_C exactly …
        assert_eq!(
            ImaseItoh::new(d, n).digraph(),
            BSigma::complemented(d, dd).digraph()
        );
        // … and the triple B ≅ RRK ≅ II (Corollary 3.4).
        assert_eq!(Rrk::new(d, n).digraph(), DeBruijn::new(d, dd).digraph());
        let witness = core_iso::prop_3_3_witness(d, dd);
        assert_eq!(
            iso::check_witness(
                &ImaseItoh::new(d, n).digraph(),
                &DeBruijn::new(d, dd).digraph(),
                &witness
            ),
            Ok(())
        );
    }
}

#[test]
fn remark_3_8_debruijn_as_alphabet_digraph() {
    assert_eq!(
        AlphabetDigraph::debruijn(2, 5).digraph(),
        DeBruijn::new(2, 5).digraph()
    );
}

#[test]
fn proposition_3_9_iff_direction_positive() {
    // Cyclic f ⇒ isomorphic, over an exhaustive small sweep.
    let b = DeBruijn::new(2, 4).digraph();
    for f in cyclic_permutations(4) {
        for j in 0..4 {
            let a = AlphabetDigraph::new(2, 4, f.clone(), Perm::complement(2), j);
            assert!(a.is_debruijn_isomorphic());
            let witness = core_iso::prop_3_9_witness(&a).unwrap();
            assert_eq!(iso::check_witness(&a.digraph(), &b, &witness), Ok(()));
        }
    }
}

#[test]
fn proposition_3_9_iff_direction_negative() {
    // Non-cyclic f with σ = Id ⇒ disconnected ⇒ not isomorphic.
    for f in all_permutations(4).filter(|f| !f.is_cyclic()) {
        let a = AlphabetDigraph::new(2, 4, f.clone(), Perm::identity(2), 0);
        assert!(!a.is_debruijn_isomorphic());
        let g = a.digraph();
        assert!(
            !connectivity::is_weakly_connected(&g),
            "σ = Id and non-cyclic f = {f} must disconnect"
        );
        assert!(!iso::are_isomorphic(&g, &DeBruijn::new(2, 4).digraph()));
    }
}

#[test]
fn remark_3_10_components_are_circuit_conjunctions() {
    // The full structural verification lives in otis-core; spot-check
    // a mixed cycle structure end to end here.
    let f = Perm::from_cycles(5, &[vec![0, 1, 2], vec![3, 4]]).unwrap();
    let a = AlphabetDigraph::new(2, 5, f, Perm::identity(2), 1);
    otis::core::components::verify(&a);
}

/// Reproduction finding: Remark 3.10's sentence "if f is not cyclic,
/// A(f,σ,s) is not connected" requires σ = Id (or more precisely a
/// single-orbit-free outside action). With a non-trivial σ the outside
/// states can form one orbit and the digraph is weakly connected while
/// still NOT being isomorphic to B(d,D). Documented in EXPERIMENTS.md.
#[test]
fn remark_3_10_connectivity_caveat() {
    // f = Id on Z_2 (not cyclic), σ = 3-cycle, d = 3, j = 0:
    let a = AlphabetDigraph::new(3, 2, Perm::identity(2), Perm::rotation(3, 1), 0);
    assert!(!a.is_debruijn_isomorphic());
    let g = a.digraph();
    assert!(
        connectivity::is_weakly_connected(&g),
        "counterexample to the remark's literal statement"
    );
    assert!(connectivity::is_strongly_connected(&g));
    // … but, as the paper's main claim states, it is NOT B(3,2):
    assert!(!iso::are_isomorphic(&g, &DeBruijn::new(3, 2).digraph()));
    // It is C₃ ⊗ B(3,1), per the (correct) component-structure claim.
    let model = ops::conjunction(&ops::circuit(3), &DeBruijn::new(3, 1).digraph());
    assert!(iso::are_isomorphic(&g, &model));
}

#[test]
fn section_3_count_of_alternative_definitions() {
    assert_eq!(
        enumerate::alternative_definition_count(2, 8),
        factorial(2) * factorial(7)
    );
    // Exhaustive verification for a small case is in otis-core; here
    // just pin the count used in the abstract's d!(D-1)! claim.
    assert_eq!(enumerate::alternative_definitions(2, 4, 0).count(), 12);
}

#[test]
fn section_4_2_known_layouts() {
    // II(d,n) has an OTIS(d,n)-layout [14]: H(d,n,d) = II(d,n).
    for (d, n) in [(2u32, 12u64), (3, 27), (4, 10)] {
        assert_eq!(
            HDigraph::new(d as u64, n, d).digraph(),
            ImaseItoh::new(d, n).digraph()
        );
    }
    // Zane et al. [34]: OTIS(n,n) with d = n realizes K_n with loops.
    for n in [3u64, 5] {
        let h = HDigraph::new(n, n, n as u32).digraph();
        assert_eq!(h, ops::complete_with_loops(n as usize));
    }
}

#[test]
fn proposition_4_1_h_equals_alphabet_digraph() {
    for (d, pp, qq) in [(2u32, 3u32, 4u32), (3, 2, 3), (5, 1, 2)] {
        let spec = LayoutSpec::new(d, pp, qq);
        assert_eq!(
            spec.h_digraph().digraph(),
            spec.alphabet_digraph().digraph(),
            "H(d^{pp}, d^{qq}, {d})"
        );
    }
}

#[test]
fn corollary_4_2_iff_on_all_splits_of_d8() {
    let b = DeBruijn::new(2, 8).digraph();
    for pp in 1..=8u32 {
        let spec = LayoutSpec::new(2, pp, 9 - pp);
        let h = spec.h_digraph().digraph();
        if spec.is_debruijn() {
            let witness = spec.debruijn_witness().unwrap();
            assert_eq!(iso::check_witness(&h, &b, &witness), Ok(()), "split {pp}");
        } else {
            assert!(!connectivity::is_strongly_connected(&h), "split {pp}");
        }
    }
}

#[test]
fn section_4_3_all_powers_of_two_shapes_of_256_are_debruijn() {
    // "H(2,256,2), H(4,128,2) and H(16,32,2) are isomorphic to B(2,8)"
    for (pp, qq) in [(1u32, 8u32), (2, 7), (4, 5)] {
        assert!(LayoutSpec::new(2, pp, qq).is_debruijn());
    }
    // and the remaining power split (8,64): p'=3, q'=6 — check
    // against the criterion rather than assuming.
    let spec_36 = LayoutSpec::new(2, 3, 6);
    assert_eq!(spec_36.is_debruijn(), layout_permutation(3, 6).is_cyclic());
}

#[test]
fn proposition_4_3_balanced_odd_only_trivial() {
    assert!(LayoutSpec::new(3, 1, 1).is_debruijn());
    for pp in 2..=6u32 {
        assert!(!LayoutSpec::new(3, pp, pp).is_debruijn());
    }
}

#[test]
fn corollary_4_4_theta_sqrt_n_lenses() {
    for dd in [2u32, 4, 6, 8, 10, 12] {
        let spec = balanced_even_layout(2, dd);
        let n = spec.node_count();
        let sqrt_n = (n as f64).sqrt();
        let lenses = spec.lens_count() as f64;
        // p + q = 3·√n exactly for d = 2.
        assert!((lenses - 3.0 * sqrt_n).abs() < 1e-9, "D = {dd}");
        // Beats the O(n)-lens II layout strictly once D > 2 (at D = 2
        // the balanced split (1,2) *is* the II layout).
        if dd > 2 {
            assert!(lenses < ii_layout_lens_count(2, n) as f64, "D = {dd}");
        }
    }
}

#[test]
fn section_4_4_odd_cases() {
    assert!(
        LayoutSpec::new(2, 5, 7).is_debruijn(),
        "H(2⁵,2⁷,2) ≅ B(2,11)"
    );
    assert!(
        !LayoutSpec::new(2, 6, 8).is_debruijn(),
        "H(2⁶,2⁸,2) ≇ B(2,13)"
    );
    // And the witness for the positive case actually verifies
    // (n = 2048: the largest full witness check in the suite).
    let spec = LayoutSpec::new(2, 5, 7);
    let witness = spec.debruijn_witness().unwrap();
    assert_eq!(
        iso::check_witness(
            &spec.h_digraph().digraph(),
            &DeBruijn::new(2, 11).digraph(),
            &witness
        ),
        Ok(())
    );
}

#[test]
fn corollary_4_5_verification_is_linear_walk() {
    // The O(D) claim: criterion = one orbit walk, no digraph built.
    // Functional check at a size where building H would be absurd
    // (n = 2^59 nodes): the criterion still answers instantly.
    let spec = LayoutSpec::new(2, 29, 31);
    assert_eq!(spec.diameter(), 59);
    let _ = spec.is_debruijn(); // must not allocate beyond O(D)
    let spec_even = LayoutSpec::new(2, 30, 31);
    assert!(spec_even.is_debruijn(), "even D = 60 balanced split works");
}

#[test]
fn corollary_4_6_minimization() {
    for dd in [4u32, 8, 11, 13] {
        let best = minimize_lenses(2, dd).unwrap();
        assert!(best.is_debruijn());
        // Optimal is within the splits; brute-force cross-check.
        let brute = (1..=dd)
            .map(|pp| LayoutSpec::new(2, pp, dd + 1 - pp))
            .filter(LayoutSpec::is_debruijn)
            .map(|s| s.lens_count())
            .min()
            .unwrap();
        assert_eq!(best.lens_count(), brute);
    }
}

#[test]
fn section_5_conjecture_composite_degree_spot_check() {
    // For composite d the conjecture says non-power-of-d splits give
    // no de Bruijn layout. d = 4, D = 2, n = 16, m = 64:
    // splits (4,16) [= (4¹,4²)] works; (2,32) and (8,8) must not be
    // isomorphic to B(4,2).
    let b = DeBruijn::new(4, 2).digraph();
    let good = HDigraph::new(4, 16, 4).digraph();
    assert!(iso::are_isomorphic(&good, &b));
    for (p, q) in [(2u64, 32u64), (8, 8)] {
        let h = HDigraph::new(p, q, 4).digraph();
        assert!(
            !iso::are_isomorphic(&h, &b),
            "H({p},{q},4) unexpectedly isomorphic to B(4,2)"
        );
    }
}

#[test]
fn table_1_largest_is_kautz_for_each_diameter() {
    // The K(d,D) ↔ OTIS(2, n) layout exists because K ≅ II and
    // H(d,n,d) = II(d,n); diameters verified by the search tests in
    // otis-layout. Here: the three Kautz sizes the paper reports.
    assert_eq!(Kautz::new(2, 8).node_count(), 384);
    assert_eq!(Kautz::new(2, 9).node_count(), 768);
    assert_eq!(Kautz::new(2, 10).node_count(), 1536);
    for dd in [8u32, 9, 10] {
        let n = Kautz::new(2, dd).node_count();
        let h = HDigraph::new(2, n, 2).digraph();
        assert_eq!(bfs::diameter(&h), Some(dd), "K(2,{dd}) as OTIS(2,{n})");
    }
}
