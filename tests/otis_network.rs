//! End-to-end network simulation: route real traffic over simulated
//! OTIS hardware hosting de Bruijn fabrics, and compare the paper's
//! Θ(√n)-lens layout against the prior-art O(n)-lens II layout on
//! physics, not just lens counts.

use otis::core::{routing, DeBruijn, DigraphFamily};
use otis::layout::{balanced_even_layout, LayoutSpec};
use otis::optics::simulator::OtisSimulator;
use otis::optics::{geometry::Bench, HDigraph, Otis};

/// The headline fabric: B(2,6) on OTIS(8,16) — 64 nodes, 24 lenses.
fn balanced_fabric() -> (LayoutSpec, OtisSimulator) {
    let spec = balanced_even_layout(2, 6);
    assert_eq!((spec.p(), spec.q()), (8, 16));
    let sim = OtisSimulator::with_defaults(spec.h_digraph());
    (spec, sim)
}

/// The prior-art fabric for the same logical network: II layout
/// OTIS(2, 64) — 64 nodes, 66 lenses.
fn ii_fabric() -> OtisSimulator {
    OtisSimulator::with_defaults(HDigraph::new(2, 64, 2))
}

#[test]
fn balanced_fabric_routes_all_pairs_within_diameter() {
    let (_, sim) = balanced_fabric();
    let n = sim.h().node_count();
    for src in (0..n).step_by(7) {
        for dst in (0..n).step_by(5) {
            let report = sim.send_shortest(src, dst).unwrap();
            assert!(
                report.hop_count() <= 6,
                "{src}→{dst} took {} hops",
                report.hop_count()
            );
            assert!(report.delivered());
        }
    }
}

#[test]
fn debruijn_arithmetic_routing_drives_the_simulator() {
    // Route using the O(D) de Bruijn next-hop arithmetic (no BFS):
    // translate fabric nodes to B-ranks through the layout witness.
    let (spec, sim) = balanced_fabric();
    let witness = spec.debruijn_witness().unwrap();
    let inverse = otis::core::iso::invert_witness(&witness);
    let b = DeBruijn::new(2, 6);

    let mut total_hops = 0usize;
    for (src, dst) in [(0u64, 63u64), (5, 40), (62, 1), (33, 33)] {
        let report = sim
            .send(src, dst, |current, dst| {
                // Map into B(2,6), take the next hop on the canonical
                // shortest path, map back into the fabric.
                let bc = witness[current as usize] as u64;
                let bd = witness[dst as usize] as u64;
                let path = routing::shortest_path(&b, bc, bd);
                Some(inverse[path[1] as usize] as u64)
            })
            .unwrap();
        let expected = routing::distance(
            &b,
            witness[src as usize] as u64,
            witness[dst as usize] as u64,
        );
        assert_eq!(report.hop_count() as u32, expected, "{src}→{dst}");
        total_hops += report.hop_count();
    }
    assert!(total_hops > 0);
}

#[test]
fn balanced_beats_ii_on_lens_count_at_equal_nodes() {
    let (spec, _) = balanced_fabric();
    let ii = ii_fabric();
    assert_eq!(spec.node_count(), ii.h().node_count());
    assert_eq!(spec.lens_count(), 24);
    assert_eq!(ii.h().lens_count(), 66);
}

#[test]
fn balanced_bench_is_physically_smaller_and_balanced() {
    // Lens-aperture balance (the paper's p ≈ q argument) translates
    // into bench geometry: the II layout needs one lens array ~32×
    // wider than the other.
    let balanced = Bench::with_defaults(Otis::new(8, 16));
    let skewed = Bench::with_defaults(Otis::new(2, 64));
    assert!(balanced.aperture_imbalance() <= 2.0);
    assert!(skewed.aperture_imbalance() >= 16.0);
}

#[test]
fn ii_fabric_still_functions() {
    // The O(n) layout is worse hardware, not broken hardware: routing
    // over it must still deliver everywhere (II(2,64) ≅ B(2,6)).
    let sim = ii_fabric();
    let g = sim.h().digraph();
    assert_eq!(otis::digraph::bfs::diameter(&g), Some(6));
    for (src, dst) in [(0u64, 63u64), (17, 4), (63, 0)] {
        let report = sim.send_shortest(src, dst).unwrap();
        assert!(report.delivered());
        assert!(report.hop_count() <= 6);
    }
}

#[test]
fn per_hop_physics_accounted() {
    let (_, sim) = balanced_fabric();
    let report = sim.send_shortest(0, 63).unwrap();
    assert!(report.hop_count() >= 1);
    for hop in &report.hops {
        assert!(hop.path_length_mm > 0.0);
        assert!(hop.budget.margin_db > 0.0, "link must close");
        assert!(hop.budget.latency_ps > 0.0);
    }
    // Latency = Σ hop latencies + per-hop overhead.
    let raw: f64 = report.hops.iter().map(|h| h.budget.latency_ps).sum();
    assert!(
        report.latency_ps > raw,
        "store-and-forward overhead included"
    );
}

#[test]
fn broadcast_over_fabric() {
    // Multi-port broadcast from node 0 over the simulated fabric:
    // every node hears the message within D rounds.
    let (spec, sim) = balanced_fabric();
    let witness = spec.debruijn_witness().unwrap();
    let inverse = otis::core::iso::invert_witness(&witness);
    let b = DeBruijn::new(2, 6);
    let root_b = witness[0] as u64;
    let levels = routing::broadcast_levels(&b, root_b);
    assert_eq!(levels.len(), 7, "D + 1 levels");
    // Simulate the first wave physically: root → its B-children.
    for &child in &levels[1] {
        let fabric_child = inverse[child as usize] as u64;
        let report = sim.send_shortest(0, fabric_child).unwrap();
        assert_eq!(report.hop_count(), 1);
    }
}

#[test]
fn kautz_fabric_via_ii_layout() {
    // K(2,5) = 48 nodes ≅ II(2,48) = H(2,48,2): route over the Kautz
    // fabric through its OTIS layout.
    let sim = OtisSimulator::with_defaults(HDigraph::new(2, 48, 2));
    let g = sim.h().digraph();
    assert_eq!(otis::digraph::bfs::diameter(&g), Some(5));
    for (src, dst) in [(0u64, 47u64), (13, 29)] {
        let report = sim.send_shortest(src, dst).unwrap();
        assert!(report.hop_count() <= 5);
        assert!(report.delivered());
    }
}
