//! Agreement between the paper's constructive witnesses and the
//! generic VF2 baseline, on both positive and negative instances.
//!
//! This is the correctness side of the `witness_vs_vf2` bench: the
//! two methods must never disagree. VF2 is exponential in the worst
//! case, so the sweep stays small; the witness path handles the same
//! instances in linear time.

use otis::core::{iso as core_iso, AlphabetDigraph, DeBruijn, DigraphFamily};
use otis::digraph::iso;
use otis::perm::{all_permutations, Perm};

#[test]
fn agreement_on_all_f_sigma_pairs_d2_dim3() {
    // 3! index perms × 2! alphabet perms × 3 positions = 36 instances,
    // n = 8 each: VF2 verdict must equal the cyclicity criterion.
    let b = DeBruijn::new(2, 3).digraph();
    let mut positives = 0;
    let mut negatives = 0;
    for f in all_permutations(3) {
        for sigma in all_permutations(2) {
            for j in 0..3u32 {
                let a = AlphabetDigraph::new(2, 3, f.clone(), sigma.clone(), j);
                let g = a.digraph();
                let vf2 = iso::find_isomorphism(&g, &b);
                if a.is_debruijn_isomorphic() {
                    positives += 1;
                    let found = vf2.expect("VF2 must find an isomorphism");
                    assert_eq!(iso::check_witness(&g, &b, &found), Ok(()));
                    let constructed = core_iso::prop_3_9_witness(&a).unwrap();
                    assert_eq!(iso::check_witness(&g, &b, &constructed), Ok(()));
                } else {
                    negatives += 1;
                    // σ-twisted non-cyclic cases may still be connected
                    // (see remark_3_10_connectivity_caveat) but are
                    // never isomorphic to B.
                    assert!(vf2.is_none(), "f = {f}, σ = {sigma}, j = {j}");
                }
            }
        }
    }
    // 2 cyclic perms of Z_3 → 2·2·3 positives; the rest negative.
    assert_eq!(positives, 12);
    assert_eq!(negatives, 24);
}

#[test]
fn agreement_on_layout_splits() {
    // Every split of D = 4 and 5 at d = 2: layout criterion vs VF2.
    for dd in [4u32, 5] {
        let b = DeBruijn::new(2, dd).digraph();
        for pp in 1..=dd {
            let spec = otis::layout::LayoutSpec::new(2, pp, dd + 1 - pp);
            let h = spec.h_digraph().digraph();
            let vf2_says = iso::are_isomorphic(&h, &b);
            assert_eq!(
                vf2_says,
                spec.is_debruijn(),
                "split ({pp},{}) at D = {dd}",
                dd + 1 - pp
            );
        }
    }
}

#[test]
fn vf2_finds_witness_on_twisted_instances() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let b = DeBruijn::new(3, 2).digraph();
    for _ in 0..10 {
        let f = Perm::random_cyclic(2, &mut rng);
        let sigma = Perm::random(3, &mut rng);
        let a = AlphabetDigraph::new(3, 2, f, sigma, 0);
        let g = a.digraph();
        let found = iso::find_isomorphism(&g, &b).expect("cyclic instance");
        assert_eq!(iso::check_witness(&g, &b, &found), Ok(()));
    }
}

#[test]
fn witnesses_are_not_unique_but_all_verify() {
    // VF2's witness and the constructive witness can differ (B has
    // non-trivial automorphisms); both must verify.
    let a = AlphabetDigraph::new(2, 4, Perm::rotation(4, 1), Perm::complement(2), 0);
    let b = DeBruijn::new(2, 4).digraph();
    let constructed = core_iso::prop_3_9_witness(&a).unwrap();
    let searched = iso::find_isomorphism(&a.digraph(), &b).unwrap();
    assert_eq!(iso::check_witness(&a.digraph(), &b, &constructed), Ok(()));
    assert_eq!(iso::check_witness(&a.digraph(), &b, &searched), Ok(()));
}
