//! Serde round-trips for the public artifact types: downstream
//! tooling stores layouts, search rows and fault reports as JSON, so
//! the wire format is part of the API contract.

use otis::core::{AlphabetDigraph, DeBruijn, DigraphFamily};
use otis::layout::{degree_diameter_search, LayoutSpec, SearchRow};
use otis::optics::faults::{assess, FaultSet, ResilienceReport};
use otis::optics::{HDigraph, Otis};
use otis::perm::Perm;

fn round_trip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn layout_spec_round_trip() {
    let spec = LayoutSpec::new(2, 4, 5);
    assert_eq!(round_trip(&spec), spec);
}

#[test]
fn search_rows_round_trip() {
    let rows: Vec<SearchRow> = degree_diameter_search(2, 4, 14, 18);
    let back: Vec<SearchRow> = round_trip(&rows);
    assert_eq!(back, rows);
}

#[test]
fn families_round_trip() {
    let b = DeBruijn::new(3, 4);
    assert_eq!(round_trip(&b), b);
    let a = AlphabetDigraph::new(2, 4, Perm::rotation(4, 1), Perm::complement(2), 1);
    assert_eq!(round_trip(&a), a);
    // Digraphs themselves serialize too (CSR fields).
    let g = b.digraph();
    assert_eq!(round_trip(&g), g);
}

#[test]
fn hardware_types_round_trip() {
    let otis = Otis::new(16, 32);
    assert_eq!(round_trip(&otis), otis);
    let h = HDigraph::new(16, 32, 2);
    assert_eq!(round_trip(&h), h);
    let faults = FaultSet {
        dead_transmitters: vec![1, 2],
        dead_receivers: vec![],
        dead_lens1: vec![3],
        dead_lens2: vec![],
    };
    assert_eq!(round_trip(&faults), faults);
    let report: ResilienceReport = assess(&h, &faults);
    assert_eq!(round_trip(&report), report);
}

#[test]
fn perm_json_is_one_line_table() {
    // The wire format is the plain image table — stable and readable.
    let f = Perm::rotation(4, 1);
    assert_eq!(serde_json::to_string(&f).unwrap(), "[1,2,3,0]");
    // Invalid tables are rejected at the serde boundary.
    assert!(serde_json::from_str::<Perm>("[1,1,0]").is_err());
}

#[test]
fn pops_round_trip() {
    let pops = otis::optics::pops::Pops::new(4, 3);
    assert_eq!(round_trip(&pops), pops);
    let coupler = pops.route(0, 11);
    assert_eq!(round_trip(&coupler), coupler);
}
