//! Network simulation: run random traffic over `B(2,8)` hosted on the
//! paper's 48-lens OTIS(16,32) layout, and over the prior-art 258-lens
//! OTIS(2,256) II layout, and compare what the *physics* says —
//! latency, energy, bench size — on top of the lens-count headline.
//!
//! Run with: `cargo run --release --example network_simulation [packets]`

use otis::core::{routing, DeBruijn, DigraphFamily};
use otis::layout::balanced_even_layout;
use otis::optics::simulator::OtisSimulator;
use otis::optics::HDigraph;
use rand::{Rng, SeedableRng};

struct TrafficStats {
    packets: usize,
    hops: usize,
    latency_ps: f64,
    energy_pj: f64,
    worst_latency_ps: f64,
}

fn run_traffic(
    sim: &OtisSimulator,
    to_b: &[u32],
    from_b: &[u32],
    b: &DeBruijn,
    pairs: &[(u64, u64)],
) -> TrafficStats {
    let mut stats = TrafficStats {
        packets: 0,
        hops: 0,
        latency_ps: 0.0,
        energy_pj: 0.0,
        worst_latency_ps: 0.0,
    };
    for &(src, dst) in pairs {
        let report = sim
            .send(src, dst, |current, dst| {
                let path = routing::shortest_path(
                    b,
                    to_b[current as usize] as u64,
                    to_b[dst as usize] as u64,
                );
                from_b[path[1] as usize] as u64
            })
            .expect("de Bruijn arithmetic routing is loop-free");
        assert!(report.delivered(), "all links must close");
        stats.packets += 1;
        stats.hops += report.hop_count();
        stats.latency_ps += report.latency_ps;
        stats.energy_pj += report.energy_pj;
        stats.worst_latency_ps = stats.worst_latency_ps.max(report.latency_ps);
    }
    stats
}

fn print_stats(name: &str, lens_count: u64, bench_mm: f64, s: &TrafficStats) {
    println!("{name}");
    println!("  lenses            : {lens_count}");
    println!("  bench length      : {bench_mm:.0} mm");
    println!("  packets delivered : {}", s.packets);
    println!("  mean hops         : {:.2}", s.hops as f64 / s.packets as f64);
    println!("  mean latency      : {:.0} ps", s.latency_ps / s.packets as f64);
    println!("  worst latency     : {:.0} ps", s.worst_latency_ps);
    println!("  mean energy       : {:.1} pJ", s.energy_pj / s.packets as f64);
}

fn main() {
    let packets: usize = std::env::args()
        .nth(1)
        .map_or(2000, |s| s.parse().expect("packet count"));

    let b = DeBruijn::new(2, 8);
    let n = b.node_count();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x0715_2000);
    let pairs: Vec<(u64, u64)> = (0..packets)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect();

    println!("traffic: {packets} random (src, dst) pairs over {} ({} nodes)\n", b.name(), n);

    // ---- the paper's layout: OTIS(16,32), 48 lenses ---------------------
    let spec = balanced_even_layout(2, 8);
    let sim = OtisSimulator::with_defaults(spec.h_digraph());
    let witness = spec.debruijn_witness().expect("cyclic");
    let inverse = otis::core::iso::invert_witness(&witness);
    let stats = run_traffic(&sim, &witness, &inverse, &b, &pairs);
    print_stats(
        &format!("Θ(√n) layout — OTIS({}, {})", spec.p(), spec.q()),
        spec.lens_count(),
        sim.bench().bench_length(),
        &stats,
    );

    // ---- prior art: OTIS(2,256) = II layout, 258 lenses ------------------
    // H(2,256,2) ≅ B(2,8) as well (split p' = 1), so the same logical
    // traffic runs over it; only the hardware differs.
    let ii_spec = otis::layout::LayoutSpec::new(2, 1, 8);
    let ii_sim = OtisSimulator::with_defaults(HDigraph::new(2, 256, 2));
    let ii_witness = ii_spec.debruijn_witness().expect("II split is cyclic");
    let ii_inverse = otis::core::iso::invert_witness(&ii_witness);
    let ii_stats = run_traffic(&ii_sim, &ii_witness, &ii_inverse, &b, &pairs);
    println!();
    print_stats(
        "O(n) layout — OTIS(2, 256) [Imase-Itoh]",
        ii_spec.lens_count(),
        ii_sim.bench().bench_length(),
        &ii_stats,
    );

    // ---- the comparison the paper argues for ------------------------------
    println!("\nsummary:");
    println!(
        "  same logical network, same mean hops ({:.2} vs {:.2})",
        stats.hops as f64 / stats.packets as f64,
        ii_stats.hops as f64 / ii_stats.packets as f64
    );
    println!(
        "  lens count         : {} vs {}  ({:.1}× fewer)",
        spec.lens_count(),
        ii_spec.lens_count(),
        ii_spec.lens_count() as f64 / spec.lens_count() as f64
    );
    println!(
        "  bench length       : {:.0} mm vs {:.0} mm  ({:.1}× shorter)",
        sim.bench().bench_length(),
        ii_sim.bench().bench_length(),
        ii_sim.bench().bench_length() / sim.bench().bench_length()
    );
    println!(
        "  mean latency       : {:.0} ps vs {:.0} ps",
        stats.latency_ps / stats.packets as f64,
        ii_stats.latency_ps / ii_stats.packets as f64
    );
}
