//! Network simulation: run batched traffic over `B(2,8)` hosted on the
//! paper's 48-lens OTIS(16,32) layout, and over the prior-art 258-lens
//! OTIS(2,256) II layout, and compare what the *physics* says —
//! latency, energy, congestion, bench size — on top of the lens-count
//! headline.
//!
//! The same logical workload (generated in de Bruijn rank space, then
//! translated through each layout's isomorphism witness) runs over
//! both fabrics via precomputed table routers and the batched traffic
//! engine, so the hop statistics are *identical by construction* and
//! every remaining difference is hardware.
//!
//! Run with: `cargo run --release --example network_simulation [packets] [pattern]`

use otis::core::{DeBruijn, DigraphFamily, Router, RoutingTable};
use otis::layout::LayoutSpec;
use otis::optics::simulator::OtisSimulator;
use otis::optics::traffic::{generate_workload, TrafficEngine, TrafficPattern, TrafficReport};

struct Fabric {
    name: String,
    spec: LayoutSpec,
    sim: OtisSimulator,
    /// `witness[h_node]` = de Bruijn rank (iso witness from H to B).
    inverse: Vec<u32>,
}

impl Fabric {
    fn new(name: &str, spec: LayoutSpec) -> Self {
        let sim = OtisSimulator::with_defaults(spec.h_digraph());
        let witness = spec.debruijn_witness().expect("cyclic split");
        let inverse = otis::core::iso::invert_witness(&witness);
        Fabric {
            name: name.into(),
            spec,
            sim,
            inverse,
        }
    }

    /// Translate a workload from de Bruijn rank space into this
    /// fabric's node ids through the isomorphism witness.
    fn translate(&self, workload_b: &[(u64, u64)]) -> Vec<(u64, u64)> {
        workload_b
            .iter()
            .map(|&(src, dst)| {
                (
                    self.inverse[src as usize] as u64,
                    self.inverse[dst as usize] as u64,
                )
            })
            .collect()
    }

    /// Run the B-space workload on this fabric through any router.
    fn run_with(&self, router: &dyn Router, workload_b: &[(u64, u64)]) -> TrafficReport {
        let engine = TrafficEngine::new(&self.sim);
        engine.run(router, &self.translate(workload_b))
    }

    /// Run the B-space workload through a precomputed table router.
    fn run(&self, workload_b: &[(u64, u64)]) -> TrafficReport {
        self.run_with(&RoutingTable::from_family(self.sim.h()), workload_b)
    }
}

fn print_report(fabric: &Fabric, report: &TrafficReport) {
    println!("{}", fabric.name);
    println!("  router            : {}", report.router);
    println!("  lenses            : {}", fabric.spec.lens_count());
    println!(
        "  bench length      : {:.0} mm",
        fabric.sim.bench().bench_length()
    );
    println!(
        "  packets delivered : {} / {} ({:.1}%)",
        report.delivered,
        report.packets,
        report.delivery_rate() * 100.0
    );
    println!("  mean hops         : {:.2}", report.mean_hops());
    println!(
        "  link congestion   : max {} (forwarding index), mean {:.1}",
        report.max_link_load,
        report.mean_link_load()
    );
    println!(
        "  latency           : mean {:.0} ps, p99 {:.0} ps, worst {:.0} ps",
        report.latency_mean_ps, report.latency_p99_ps, report.latency_max_ps
    );
    println!(
        "  mean energy       : {:.1} pJ/packet",
        report.mean_energy_pj()
    );
}

fn main() {
    let packets: usize = std::env::args()
        .nth(1)
        .map_or(20_000, |raw| raw.parse().expect("packet count"));
    let pattern: TrafficPattern = std::env::args()
        .nth(2)
        .map_or(TrafficPattern::Uniform, |raw| raw.parse().expect("pattern"));

    let b = DeBruijn::new(2, 8);
    let workload_b = generate_workload(pattern, b.node_count(), 2, packets, 0x0715_2000);
    println!(
        "traffic: {packets} {pattern} packets over {} ({} nodes)\n",
        b.name(),
        b.node_count()
    );

    // ---- the paper's layout: OTIS(16,32), 48 lenses ---------------------
    let balanced = Fabric::new(
        "Θ(√n) layout — OTIS(16, 32)",
        otis::layout::balanced_even_layout(2, 8),
    );
    let report = balanced.run(&workload_b);
    print_report(&balanced, &report);
    assert!(report.all_budgets_close, "all links must close");

    // ---- prior art: OTIS(2,256) = II layout, 258 lenses ------------------
    // H(2,256,2) ≅ B(2,8) as well (split p' = 1), so the same logical
    // traffic runs over it; only the hardware differs.
    let ii = Fabric::new(
        "O(n) layout — OTIS(2, 256) [Imase-Itoh]",
        LayoutSpec::new(2, 1, 8),
    );
    let ii_report = ii.run(&workload_b);
    println!();
    print_report(&ii, &ii_report);

    // ---- the comparison the paper argues for ------------------------------
    assert_eq!(
        report.total_hops, ii_report.total_hops,
        "same logical pairs through isomorphic fabrics take identical hops"
    );
    println!("\nsummary:");
    println!(
        "  identical logical traffic: {:.2} mean hops on both (same witness-mapped pairs)",
        report.mean_hops()
    );
    println!(
        "  lens count         : {} vs {}  ({:.1}× fewer)",
        balanced.spec.lens_count(),
        ii.spec.lens_count(),
        ii.spec.lens_count() as f64 / balanced.spec.lens_count() as f64
    );
    println!(
        "  bench length       : {:.0} mm vs {:.0} mm  ({:.1}× shorter)",
        balanced.sim.bench().bench_length(),
        ii.sim.bench().bench_length(),
        ii.sim.bench().bench_length() / balanced.sim.bench().bench_length()
    );
    println!(
        "  mean latency       : {:.0} ps vs {:.0} ps",
        report.latency_mean_ps, ii_report.latency_mean_ps
    );
    println!(
        "  mean energy        : {:.1} pJ vs {:.1} pJ",
        report.mean_energy_pj(),
        ii_report.mean_energy_pj()
    );

    // ---- fault injection through the same engine --------------------------
    // Kill a transmitter and re-run on the degraded balanced fabric:
    // the fault-aware router recomputes and still delivers everything.
    let faults = otis::optics::faults::FaultSet {
        dead_transmitters: vec![42],
        ..otis::optics::faults::FaultSet::none()
    };
    let fault_router = otis::optics::faults::FaultAwareRouter::new(balanced.sim.h(), faults);
    let degraded = balanced.run_with(&fault_router, &workload_b);
    println!(
        "\nwith one dead transmitter ({}): {:.1}% delivered, mean hops {:.2} (was {:.2})",
        Router::name(&fault_router),
        degraded.delivery_rate() * 100.0,
        degraded.mean_hops(),
        report.mean_hops()
    );
    assert_eq!(
        degraded.dropped, 0,
        "B(2,8) reroutes around a single dead beam"
    );
}
