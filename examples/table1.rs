//! Regenerate Table 1 of the paper: the largest `H(p, q, 2)` digraphs
//! of diameters 8, 9 and 10, with every OTIS shape realizing them.
//!
//! Run with: `cargo run --release --example table1 [window]`
//! `window` controls how far below the Kautz bound the scan starts
//! (default 6 rows' worth, like the paper's "⋮" cutoff).

use otis::core::{DeBruijn, DigraphFamily, Kautz};
use otis::layout::degree_diameter_search;

fn main() {
    let window: u64 = std::env::args()
        .nth(1)
        .map_or(4, |s| s.parse().expect("window must be an integer"));

    for diameter in [8u32, 9, 10] {
        let b_size = DeBruijn::new(2, diameter).node_count();
        let k_size = Kautz::new(2, diameter).node_count();
        // Scan from a little below B(2,D) up to a margin past K(2,D):
        // everything beyond the Kautz size must come up empty.
        let n_min = b_size - window;
        let n_max = k_size + 16;

        println!("== D = {diameter} ==   (B(2,{diameter}) = {b_size}, K(2,{diameter}) = {k_size})");
        println!("{:>6} {:>8} {:>8}", "n", "p", "q");
        let rows = degree_diameter_search(2, diameter, n_min, n_max);
        for row in &rows {
            let mut first = true;
            for &(p, q) in &row.pairs {
                if first {
                    print!("{:>6} {:>8} {:>8}", row.n, p, q);
                    first = false;
                } else {
                    print!("\n{:>6} {:>8} {:>8}", "", p, q);
                }
                if row.n == b_size && p != 2 {
                    // power-of-two split: ≅ B(2,D) by Corollary 4.2
                    let lens = p + q;
                    let best = otis::layout::minimize_lenses(2, diameter)
                        .expect("layout exists")
                        .lens_count();
                    if lens == best {
                        print!("   <- lens-minimal B(2,{diameter}) layout ({lens} lenses)");
                    } else {
                        print!("   ≅ B(2,{diameter}) ({lens} lenses)");
                    }
                } else if row.n == b_size && p == 2 {
                    print!("   B(2,{diameter})");
                } else if row.n == k_size {
                    print!("   K(2,{diameter})");
                }
            }
            println!();
        }
        let largest = rows.last().expect("Kautz row always present");
        assert_eq!(
            largest.n, k_size,
            "the Kautz digraph must be the largest of diameter {diameter}"
        );
        println!(
            "largest diameter-{diameter} OTIS digraph: n = {} = K(2,{diameter})  ✓ matches the paper\n",
            largest.n
        );
    }
}
