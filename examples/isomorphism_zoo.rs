//! The isomorphism zoo: walk through Figures 1–5 and every
//! Section 3 isomorphism, printing DOT drawings and verified
//! witnesses.
//!
//! Run with: `cargo run --release --example isomorphism_zoo`
//! Pipe a block into `dot -Tpng` to re-draw a paper figure.

use otis::core::{
    components, enumerate, iso, AlphabetDigraph, BSigma, DeBruijn, DigraphFamily, ImaseItoh, Kautz,
    Rrk,
};
use otis::digraph::{connectivity, dot, iso::check_witness};
use otis::perm::Perm;

fn main() {
    // ---- Figures 1-3: one digraph, three definitions --------------------
    let b = DeBruijn::new(2, 3);
    let rrk = Rrk::new(2, 8);
    let ii = ImaseItoh::new(2, 8);

    println!("=== Figures 1-3: B(2,3), RRK(2,8), II(2,8) ===");
    println!(
        "B(2,3) and RRK(2,8) are EQUAL as labeled digraphs: {}",
        b.digraph() == rrk.digraph()
    );

    let w33 = iso::prop_3_3_witness(2, 3);
    check_witness(&ii.digraph(), &b.digraph(), &w33).expect("Proposition 3.3");
    println!(
        "II(2,8) ≅ B(2,3) via W_C; e.g. II-vertex 0 is B-vertex {} ({})",
        w33[0],
        b.space().unrank(w33[0] as u64)
    );

    let space = *b.space();
    println!("\n--- DOT of Figure 1 ---");
    println!(
        "{}",
        dot::to_dot_with_labels(&b.digraph(), "fig1", |u| space.unrank(u as u64).to_string())
    );

    // ---- §3.3.1 / Figure 4: a twisted definition that works -------------
    println!("=== §3.3.1: A(f, Id, 2) with f = (0 3 2 5 1 4) on Z_6 ===");
    let f = Perm::from_images(vec![3, 4, 5, 2, 0, 1]).unwrap();
    println!("f = {f}   cyclic: {}", f.is_cyclic());
    let g_label = f.orbit_labeling(2).unwrap();
    println!("g(i) = f^i(2): {:?}  (Figure 4)", g_label.images());

    let a = AlphabetDigraph::new(2, 6, f, Perm::identity(2), 2);
    let witness = iso::prop_3_9_witness(&a).unwrap();
    check_witness(&a.digraph(), &DeBruijn::new(2, 6).digraph(), &witness).expect("Proposition 3.9");
    println!(
        "A(f, Id, 2) ≅ B(2,6): witness verified on all {} vertices\n",
        a.node_count()
    );

    // ---- §3.3.2 / Figure 5: a twisted definition that fails -------------
    println!("=== §3.3.2: A(f, Id, 1) with f = complement on Z_3 ===");
    let bad = AlphabetDigraph::new(2, 3, Perm::complement(3), Perm::identity(2), 1);
    println!("f = {}   cyclic: {}", bad.f(), bad.f().is_cyclic());
    let census = components::predict(&bad);
    println!("predicted components (Remark 3.10):");
    for (&cycle_len, &count) in &census.cycle_counts {
        println!("  {count} × C_{cycle_len} ⊗ B(2,{})", census.debruijn_dim);
    }
    let wcc = connectivity::weak_components(&bad.digraph());
    println!("actual component sizes: {:?}", wcc.size_multiset());
    components::verify(&bad);
    println!("structure verified component-by-component (VF2)\n");

    println!("--- DOT of Figure 5 ---");
    let bad_space = *bad.space();
    println!(
        "{}",
        dot::to_dot_with_labels(&bad.digraph(), "fig5", |u| bad_space
            .unrank(u as u64)
            .to_string())
    );

    // ---- the d!(D-1)! census --------------------------------------------
    println!("=== d!(D-1)! alternative definitions ===");
    for (d, dd) in [(2u32, 3u32), (2, 4), (3, 3)] {
        let count = enumerate::alternative_definition_count(d, dd);
        let mut verified = 0u64;
        for def in enumerate::alternative_definitions(d, dd, 0) {
            let w = iso::prop_3_9_witness(&def).unwrap();
            check_witness(&def.digraph(), &DeBruijn::new(d, dd).digraph(), &w).unwrap();
            verified += 1;
        }
        println!("B({d},{dd}): {count} definitions, {verified} verified isomorphic");
    }

    // ---- Kautz ≅ Imase-Itoh, constructively ------------------------------
    println!("\n=== K(d,D) ≅ II(d, d^(D-1)(d+1)) through line digraphs ===");
    for (d, dd) in [(2u32, 4u32), (3, 3)] {
        let k = Kautz::new(d, dd);
        let n = (d as u64).pow(dd - 1) * (d as u64 + 1);
        let w = otis::core::line::kautz_imase_itoh_witness(d, dd);
        check_witness(&k.digraph(), &ImaseItoh::new(d, n).digraph(), &w).unwrap();
        println!(
            "K({d},{dd}) ≅ II({d},{n}): witness verified ({} vertices)",
            k.node_count()
        );
    }

    // ---- B_σ sampler ------------------------------------------------------
    println!("\n=== B_σ(3,3) for every σ ∈ S_3 (Proposition 3.2) ===");
    for sigma in otis::perm::all_permutations(3) {
        let bs = BSigma::new(3, 3, sigma.clone());
        let w = iso::prop_3_2_witness(&bs);
        check_witness(&bs.digraph(), &DeBruijn::new(3, 3).digraph(), &w).unwrap();
        println!("σ = {sigma:<12} -> isomorphic (witness verified)");
    }
}
