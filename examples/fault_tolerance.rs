//! Fault tolerance study: inject hardware faults into a simulated
//! OTIS fabric hosting `B(2,8)` and measure what survives.
//!
//! The theory says: `λ(B(d,D)) = d-1`, so a degree-2 de Bruijn fabric
//! is guaranteed to survive **zero** adversarial beam failures (the
//! all-zeros/all-ones nodes hang by one non-loop beam) — but random
//! failures are usually absorbed, and Kautz fabrics (`λ = d`) are
//! strictly tougher. This example quantifies all three stories.
//!
//! Run with: `cargo run --release --example fault_tolerance [trials]`

use otis::core::DigraphFamily;
use otis::digraph::flow;
use otis::optics::faults::{assess, FaultSet};
use otis::optics::HDigraph;
use rand::{Rng, SeedableRng};

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .map_or(200, |s| s.parse().expect("trials"));
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xFA_17);

    // ---- the fabric and its theoretical resilience ----------------------
    let h = HDigraph::new(16, 32, 2); // ≅ B(2,8)
    let g = h.digraph();
    println!("fabric: H(16,32,2) ≅ B(2,8), 256 nodes, 512 beams");
    println!(
        "arc-connectivity λ = {} (theory: d-1 = 1)\n",
        flow::arc_connectivity(&g)
    );

    // ---- adversarial single fault ----------------------------------------
    // The λ = 1 bottleneck sits at a loop node (the image of a
    // constant word under the layout isomorphism): its only non-loop
    // out-beam is a cut arc. Locate one and cut it.
    let loop_node = (0..h.otis().link_count() / 2)
        .find(|&u| g.has_arc(u as u32, u as u32))
        .expect("B(2,8)-shaped fabric has 2 loop nodes");
    let loop_k = (0..2)
        .find(|&k| h.out_neighbor(loop_node, k) == loop_node)
        .unwrap();
    let cut_transmitter = loop_node * 2 + (1 - loop_k) as u64;
    let adversarial = FaultSet {
        dead_transmitters: vec![cut_transmitter],
        ..FaultSet::none()
    };
    let report = assess(&h, &adversarial);
    println!("adversarial single beam (loop node {loop_node}'s non-loop transmitter):");
    println!("  beams lost          : {}", report.beams_lost);
    println!(
        "  strongly connected  : {} (λ = 1 bottleneck confirmed)",
        report.strongly_connected
    );
    println!("  unreachable pairs   : {}\n", report.unreachable_pairs);
    assert!(
        !report.strongly_connected,
        "cutting a min-cut arc must disconnect"
    );

    // ---- random single faults ---------------------------------------------
    let mut survived = 0usize;
    let mut diameter_growth = Vec::new();
    for _ in 0..trials {
        let t = rng.gen_range(0..512u64);
        let faults = FaultSet {
            dead_transmitters: vec![t],
            ..FaultSet::none()
        };
        let report = assess(&h, &faults);
        if report.strongly_connected {
            survived += 1;
            diameter_growth.push(report.diameter.unwrap() - 8);
        }
    }
    println!("random single beam failure ({trials} trials):");
    println!(
        "  survived (still strongly connected): {survived}/{trials} ({:.0}%)",
        100.0 * survived as f64 / trials as f64
    );
    if !diameter_growth.is_empty() {
        let mean: f64 =
            diameter_growth.iter().map(|&g| g as f64).sum::<f64>() / diameter_growth.len() as f64;
        let max = diameter_growth.iter().max().unwrap();
        println!("  diameter growth when survived: mean +{mean:.2}, worst +{max}\n");
    }

    // ---- lens failures (catastrophic class) --------------------------------
    println!("single lens occlusion (kills a whole group of beams):");
    for lens in [0u64, 7, 15] {
        let faults = FaultSet {
            dead_lens1: vec![lens],
            ..FaultSet::none()
        };
        let report = assess(&h, &faults);
        println!(
            "  lens-1 #{lens:<2}: {} beams lost, connected: {}, unreachable pairs: {}",
            report.beams_lost, report.strongly_connected, report.unreachable_pairs
        );
    }

    // ---- Kautz comparison ----------------------------------------------------
    let kautz_fabric = HDigraph::new(2, 48, 2); // ≅ K(2,5), λ = 2
    let kg = kautz_fabric.digraph();
    println!(
        "\nKautz fabric H(2,48,2) ≅ K(2,5): λ = {}",
        flow::arc_connectivity(&kg)
    );
    let mut kautz_survived = 0usize;
    for _ in 0..trials {
        let t = rng.gen_range(0..96u64);
        let faults = FaultSet {
            dead_transmitters: vec![t],
            ..FaultSet::none()
        };
        if assess(&kautz_fabric, &faults).strongly_connected {
            kautz_survived += 1;
        }
    }
    println!(
        "  random single beam failure: survived {kautz_survived}/{trials} ({:.0}%) — λ = 2 guarantees 100%",
        100.0 * kautz_survived as f64 / trials as f64
    );
    assert_eq!(
        kautz_survived, trials,
        "λ = 2 must absorb any single arc loss"
    );
}
