//! Quickstart: build a de Bruijn network, find its optimal OTIS
//! layout, and push a packet through the simulated optics.
//!
//! Run with: `cargo run --release --example quickstart`

use otis::core::{routing, DeBruijn, DigraphFamily};
use otis::layout::{ii_layout_lens_count, minimize_lenses};
use otis::optics::simulator::OtisSimulator;

fn main() {
    // ---- 1. The logical network: B(2,4) --------------------------------
    let b = DeBruijn::new(2, 4);
    println!("network     : {}", b.name());
    println!("nodes       : {}", b.node_count());
    println!("degree      : {}", b.degree());

    let g = b.digraph();
    println!(
        "diameter    : {} (computed by all-pairs BFS)",
        otis::digraph::bfs::diameter(&g).expect("strongly connected")
    );

    // Vertices are binary words; adjacency is the left shift.
    let space = *b.space();
    let x = space.unrank(0b1011);
    println!(
        "Γ+({x})  : {}",
        b.word_neighbors(&x)
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );

    // ---- 2. The paper's contribution: a Θ(√n)-lens OTIS layout ---------
    let spec = minimize_lenses(2, 4).expect("even diameter always has a layout");
    println!(
        "\nbest layout : OTIS({}, {})  ->  {} lenses (II layout would use {})",
        spec.p(),
        spec.q(),
        spec.lens_count(),
        ii_layout_lens_count(2, b.node_count()),
    );

    // The isomorphism H(4,8,2) -> B(2,4) is constructed, not searched:
    let witness = spec.debruijn_witness().expect("f_{2,3} is cyclic");
    otis::digraph::iso::check_witness(&spec.h_digraph().digraph(), &g, &witness)
        .expect("the paper's witness verifies in O(n + m)");
    println!("witness     : verified (fabric node u is B-vertex witness[u])");

    // ---- 3. Physics: route a packet through the simulated bench --------
    let sim = OtisSimulator::with_defaults(spec.h_digraph());
    let inverse = otis::core::iso::invert_witness(&witness);
    let (src_b, dst_b) = (0b0000u64, 0b1111u64);
    let (src, dst) = (
        inverse[src_b as usize] as u64,
        inverse[dst_b as usize] as u64,
    );

    let report = sim
        .send(src, dst, |current, dst| {
            let path = routing::shortest_path(
                &b,
                witness[current as usize] as u64,
                witness[dst as usize] as u64,
            );
            Some(inverse[path[1] as usize] as u64)
        })
        .expect("routable");

    println!(
        "\npacket {:04b} -> {:04b}: {} hops, {:.1} ps, {:.1} pJ",
        src_b,
        dst_b,
        report.hop_count(),
        report.latency_ps,
        report.energy_pj
    );
    for hop in &report.hops {
        println!(
            "  node {:2} -> node {:2}  via transceiver {}  ({:.2} mm of free space, margin {:.1} dB)",
            hop.from, hop.to, hop.transceiver, hop.path_length_mm, hop.budget.margin_db
        );
    }
    assert_eq!(
        report.hop_count() as u32,
        routing::distance(&b, src_b, dst_b)
    );
    println!(
        "\nexpected {} hops (distance 0000 -> 1111 in B(2,4)) — OK",
        report.hop_count()
    );
}
