//! Optical design study: given a degree `d` and diameter `D`, design
//! the lens-minimal OTIS layout of `B(d,D)` and compare it with the
//! prior-art Imase–Itoh layout on every hardware axis the paper
//! discusses: lens count, lens-size balance, bench size, and the
//! optical power budget.
//!
//! Run with: `cargo run --release --example optical_design [d] [D]`
//! (defaults: d = 2, D = 8 — the paper's flagship B(2,8) example).

use otis::core::DigraphFamily;
use otis::layout::{ii_layout_lens_count, minimize_lenses, LayoutSpec};
use otis::optics::geometry::Bench;
use otis::optics::power::{
    break_even_length_mm, electrical_energy_pj, optical_budget, ElectricalLinkParams,
    OpticalBudget, OpticalLinkParams,
};
use otis::optics::Otis;

fn main() {
    let mut args = std::env::args().skip(1);
    let d: u32 = args
        .next()
        .map_or(2, |s| s.parse().expect("d must be an integer ≥ 2"));
    let dd: u32 = args
        .next()
        .map_or(8, |s| s.parse().expect("D must be an integer ≥ 1"));

    let best = minimize_lenses(d, dd).expect("a layout always exists");
    let n = best.node_count();

    println!("=== OTIS layout design for B({d},{dd}) — {n} nodes ===\n");

    // ---- the full split table (Corollary 4.6's search space) -----------
    println!(
        "{:>4} {:>4} {:>10} {:>10} {:>12}  B-layout?",
        "p'", "q'", "p", "q", "lenses"
    );
    for p_prime in 1..=dd {
        let spec = LayoutSpec::new(d, p_prime, dd + 1 - p_prime);
        println!(
            "{:>4} {:>4} {:>10} {:>10} {:>12}  {}",
            spec.p_prime(),
            spec.q_prime(),
            spec.p(),
            spec.q(),
            spec.lens_count(),
            if spec.is_debruijn() {
                "yes"
            } else {
                "no (f not cyclic)"
            }
        );
    }

    println!(
        "\noptimal     : OTIS({}, {}) with {} lenses",
        best.p(),
        best.q(),
        best.lens_count()
    );
    println!(
        "prior art   : OTIS({d}, {n}) [II layout] with {} lenses",
        ii_layout_lens_count(d, n)
    );
    println!(
        "improvement : {:.1}× fewer lenses (Θ(√n) vs O(n))",
        ii_layout_lens_count(d, n) as f64 / best.lens_count() as f64
    );

    // ---- bench geometry --------------------------------------------------
    let optimal_bench = Bench::with_defaults(Otis::new(best.p(), best.q()));
    let ii_bench = Bench::with_defaults(Otis::new(d as u64, n));
    println!("\n=== bench geometry (simulated hardware) ===");
    print_bench("optimal", &optimal_bench);
    print_bench("II", &ii_bench);

    // ---- power budget -----------------------------------------------------
    let link = OpticalLinkParams::default();
    let budget = optical_budget(&link, optimal_bench.worst_path_length());
    println!("\n=== optical link budget (worst-case beam, optimal bench) ===");
    print_budget(&budget);

    let electrical = ElectricalLinkParams::default();
    let break_even = break_even_length_mm(&link, &electrical).expect("exists");
    println!("\n=== optics vs electronics (Feldman et al. [16] style) ===");
    println!("break-even length     : {break_even:.1} mm (paper cites < 1 cm)");
    let bench_scale = optimal_bench.bench_length();
    println!(
        "at bench scale {bench_scale:.0} mm : optics {:.1} pJ/bit vs electrical {:.1} pJ/bit",
        budget.energy_pj,
        electrical_energy_pj(&electrical, bench_scale)
    );

    // ---- witness check -----------------------------------------------------
    if n <= 1 << 20 {
        let witness = best
            .debruijn_witness()
            .expect("optimal layout is de Bruijn");
        otis::digraph::iso::check_witness(
            &best.h_digraph().digraph(),
            &otis::core::DeBruijn::new(d, dd).digraph(),
            &witness,
        )
        .expect("constructive isomorphism verifies");
        println!(
            "\nisomorphism H({}, {}, {d}) ≅ B({d},{dd}): verified on all {n} nodes",
            best.p(),
            best.q()
        );
    } else {
        println!(
            "\nisomorphism check skipped (n too large to materialize); O(D) criterion: {}",
            best.is_debruijn()
        );
    }
}

fn print_bench(name: &str, bench: &Bench) {
    let (a1, a2) = bench.lens_apertures();
    println!(
        "{name:>8}: length {:>8.1} mm | lens apertures {:>7.2} / {:>7.2} mm | imbalance {:>6.1}×",
        bench.bench_length(),
        a1,
        a2,
        bench.aperture_imbalance()
    );
}

fn print_budget(budget: &OpticalBudget) {
    println!("received power       : {:.3} mW", budget.received_power_mw);
    println!(
        "margin               : {:.1} dB ({})",
        budget.margin_db,
        if budget.closes() {
            "link closes"
        } else {
            "LINK FAILS"
        }
    );
    println!("energy               : {:.1} pJ/bit", budget.energy_pj);
    println!("latency              : {:.1} ps", budget.latency_ps);
}
